//! The federated round loop.
//!
//! An FL method is an implementation of [`FederatedAlgorithm`]: given a
//! [`RoundContext`] it decides which parameter vectors to dispatch to which
//! clients, receives their [`LocalUpdate`]s and performs its server-side
//! aggregation. The [`Simulation`] drives the algorithm for a configured
//! number of communication rounds, evaluates the deployed global model on the
//! held-out test set and records the learning curve — i.e. it is the piece of
//! the paper's experimental apparatus that is common to FedAvg, FedProx,
//! SCAFFOLD, FedGen, CluSamp and FedCross.

use crate::adversary::{AdversaryModel, Attack};
use crate::availability::AvailabilityModel;
use crate::checkpoint::{AlgorithmState, Checkpoint, StateError, CHECKPOINT_VERSION};
use crate::client::{GradCorrection, LocalTrainConfig, LocalUpdate};
use crate::comm::CommTracker;
use crate::device::DeviceModel;
use crate::eval::EvalWorker;
use crate::faults::{FaultPlan, FaultTally, RoundPolicy};
use crate::history::{RoundRecord, TrainingHistory};
use crate::worker::ClientWorkerPool;
use fedcross_data::{Dataset, FederatedDataset, ShardPlane};
use fedcross_nn::params::ParamBlock;
use fedcross_nn::Model;
use fedcross_tensor::alloc_guard::AllocGuard;
use fedcross_tensor::SeededRng;
use rayon::prelude::*;
use std::sync::Arc;

/// Population size above which [`RoundContext::select_clients`] switches from
/// the dense O(n) sampler to the sparse O(k) Floyd sampler. Every historical
/// fingerprinted config sits far below this threshold, so their selection
/// draws stay bitwise identical; million-client federations sit far above it
/// and never allocate population-sized scratch.
pub const SPARSE_SELECTION_THRESHOLD: usize = 4096;

/// A single allocation of this many bytes or more inside a guarded
/// steady-state region (round or eval) trips the `sanitize-alloc` runtime
/// sanitizer. Matches the large-allocation threshold the runtime pin in
/// tests/tests/round_alloc.rs enforces: full-model buffers sit far above
/// it, per-round bookkeeping far below.
pub const STEADY_LARGE_BYTES: usize = 64 * 1024;

/// The client-data backend a simulation round reads shards from: either the
/// historical fully materialised [`FederatedDataset`] or a bounded
/// [`ShardPlane`] that synthesises shards on demand (see
/// `fedcross_data::source`). All shard bits are identical between the two for
/// equivalent federations — the plane only changes *when* a shard exists in
/// memory, never what it contains.
#[derive(Clone, Copy)]
pub enum DataPlane<'a> {
    /// Every client shard resident for the whole run.
    Eager(&'a FederatedDataset),
    /// Bounded LRU cache + prefetch over a lazy client data source.
    Sharded(&'a ShardPlane),
}

impl<'a> DataPlane<'a> {
    /// Total number of clients in the federation.
    pub fn num_clients(&self) -> usize {
        match self {
            DataPlane::Eager(data) => data.num_clients(),
            DataPlane::Sharded(plane) => plane.num_clients(),
        }
    }

    /// Number of classes in the task.
    pub fn num_classes(&self) -> usize {
        match self {
            DataPlane::Eager(data) => data.num_classes(),
            DataPlane::Sharded(plane) => plane.num_classes(),
        }
    }

    /// The held-out global test set (always resident on both backends).
    pub fn test_set(&self) -> &'a Dataset {
        match self {
            DataPlane::Eager(data) => data.test_set(),
            DataPlane::Sharded(plane) => plane.test_set(),
        }
    }

    /// Client `client`'s training shard. Borrowed on the eager backend;
    /// cache-served (materialising on a miss) on the sharded backend.
    pub fn shard(&self, client: usize) -> ShardRef<'a> {
        match self {
            DataPlane::Eager(data) => ShardRef::Borrowed(data.client(client)),
            DataPlane::Sharded(plane) => ShardRef::Cached(plane.shard(client)),
        }
    }
}

/// A round's handle on one client shard: a plain borrow from the eager
/// dataset, or shared ownership of a cache entry (which keeps the shard alive
/// for the duration of the training job even if the cache evicts it).
pub enum ShardRef<'a> {
    /// Borrowed from a resident [`FederatedDataset`].
    Borrowed(&'a Dataset),
    /// Checked out of a [`ShardPlane`] cache.
    Cached(Arc<Dataset>),
}

impl std::ops::Deref for ShardRef<'_> {
    type Target = Dataset;

    fn deref(&self) -> &Dataset {
        match self {
            ShardRef::Borrowed(data) => data,
            ShardRef::Cached(data) => data,
        }
    }
}

/// One client-training job: dispatch `params` to `client`, optionally with a
/// per-parameter gradient correction applied during its local SGD.
///
/// `params` is a [`ParamBlock`], so building a job from a server-side model
/// is a reference-count bump rather than an `O(d)` copy — the server's models
/// are dispatched by reference, and the client copies the parameters exactly
/// once, into its own model instance.
pub struct TrainJob {
    /// Target client index.
    pub client: usize,
    /// Parameter vector dispatched to the client (shared, copy-on-write).
    pub params: ParamBlock,
    /// Optional gradient correction (FedProx proximal term, SCAFFOLD control
    /// variates).
    pub correction: Option<GradCorrection>,
    /// Auxiliary download payload in scalars (counted on top of the model).
    pub extra_download: usize,
    /// Auxiliary upload payload in scalars.
    pub extra_upload: usize,
}

impl TrainJob {
    /// A plain job with no correction and no auxiliary payload.
    pub fn plain(client: usize, params: impl Into<ParamBlock>) -> Self {
        Self {
            client,
            params: params.into(),
            correction: None,
            extra_download: 0,
            extra_upload: 0,
        }
    }
}

/// Summary of one communication round returned by the algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundReport {
    /// Number of clients that participated.
    pub participants: usize,
    /// Mean training loss reported by the participants.
    pub mean_train_loss: f32,
    /// Total number of local samples used this round.
    pub total_samples: usize,
}

impl RoundReport {
    /// Builds a report from the round's local updates, in slice order.
    pub fn from_updates(updates: &[LocalUpdate]) -> Self {
        // alloc: bounded — cohort-sized view list, once per round
        let refs: Vec<&LocalUpdate> = updates.iter().collect();
        Self::from_ordered(&refs)
    }

    /// Builds a report from updates in a caller-chosen canonical order. The
    /// f32 loss mean sums in iteration order, so algorithms whose round
    /// result must be independent of upload arrival order (the round-derived
    /// noise plane) report from their canonical client-id/slot order too.
    pub fn from_ordered(ordered: &[&LocalUpdate]) -> Self {
        if ordered.is_empty() {
            return Self::default();
        }
        Self {
            participants: ordered.len(),
            mean_train_loss: ordered.iter().map(|u| u.train_loss).sum::<f32>()
                / ordered.len() as f32,
            total_samples: ordered.iter().map(|u| u.num_samples).sum(),
        }
    }
}

/// The worker plane a [`RoundContext`] trains on: either a pool borrowed
/// from the long-lived simulation (warm across rounds — the steady-state
/// path) or a context-owned pool (one-shot contexts built by tests and
/// benches keep their historical clone-per-round cost profile, with
/// unchanged results).
enum WorkerPlane<'a> {
    Owned(ClientWorkerPool),
    Shared(&'a mut ClientWorkerPool),
}

impl WorkerPlane<'_> {
    fn pool(&mut self) -> &mut ClientWorkerPool {
        match self {
            WorkerPlane::Owned(pool) => pool,
            WorkerPlane::Shared(pool) => pool,
        }
    }
}

/// Everything an algorithm can touch during one communication round.
pub struct RoundContext<'a> {
    data: DataPlane<'a>,
    template: &'a dyn Model,
    local: LocalTrainConfig,
    clients_per_round: usize,
    rng: SeededRng,
    comm: &'a mut CommTracker,
    availability: AvailabilityModel,
    adversary: Option<AdversaryModel>,
    policy: RoundPolicy,
    faults: Option<FaultPlan>,
    devices: Option<DeviceModel>,
    tally: FaultTally,
    round: usize,
    dropped: Vec<usize>,
    plane: WorkerPlane<'a>,
    upload_shuffle: Option<u64>,
    shuffle_calls: u64,
}

/// Reorders `updates` into dispatch order: the position of each update's
/// client in `dispatched` (the job list the algorithm submitted).
///
/// Today's engine already returns updates in dispatch order, so on an
/// unshuffled round this is a bitwise no-op — but an algorithm that sorts
/// with it before aggregating becomes invariant to upload *arrival* order,
/// which the schedule-invariance sanitizer exercises via
/// [`RoundContext::with_upload_shuffle`]. Updates whose client does not
/// appear in `dispatched` (impossible through `local_train_jobs`, possible
/// in hand-built harnesses) sort last, by client id.
pub fn canonicalize_updates(updates: &mut [LocalUpdate], dispatched: &[usize]) {
    let position = |client: usize| -> (usize, usize) {
        match dispatched.iter().position(|&c| c == client) {
            Some(p) => (p, 0),
            None => (dispatched.len(), client),
        }
    };
    updates.sort_by_key(|u| position(u.client));
}

/// What the transport does to one surviving upload under a buffered round
/// policy, derived per `(round, client)` by [`RoundContext::upload_outcomes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadOutcome {
    /// Client the outcome belongs to.
    pub client: usize,
    /// Rounds after the training round at which the upload arrives at the
    /// server (0 = within its own round). Stalled uploads and slow devices
    /// both contribute.
    pub delay: usize,
    /// Copies the transport delivers (2 for a duplicated upload). The server
    /// must dedupe by client id.
    pub copies: usize,
}

impl<'a> RoundContext<'a> {
    /// Creates a round context over a fully materialised dataset. Normally
    /// done by [`Simulation`]; exposed so tests and custom harnesses can
    /// drive algorithms round by round.
    pub fn new(
        data: &'a FederatedDataset,
        template: &'a dyn Model,
        local: LocalTrainConfig,
        clients_per_round: usize,
        rng: SeededRng,
        comm: &'a mut CommTracker,
    ) -> Self {
        Self::over_plane(
            DataPlane::Eager(data),
            template,
            local,
            clients_per_round,
            rng,
            comm,
        )
    }

    /// Creates a round context over a sharded [`ShardPlane`] backend — the
    /// million-client form of [`RoundContext::new`].
    pub fn new_sharded(
        plane: &'a ShardPlane,
        template: &'a dyn Model,
        local: LocalTrainConfig,
        clients_per_round: usize,
        rng: SeededRng,
        comm: &'a mut CommTracker,
    ) -> Self {
        Self::over_plane(
            DataPlane::Sharded(plane),
            template,
            local,
            clients_per_round,
            rng,
            comm,
        )
    }

    fn over_plane(
        data: DataPlane<'a>,
        template: &'a dyn Model,
        local: LocalTrainConfig,
        clients_per_round: usize,
        rng: SeededRng,
        comm: &'a mut CommTracker,
    ) -> Self {
        assert!(clients_per_round >= 1, "need at least one client per round");
        assert!(
            clients_per_round <= data.num_clients(),
            "clients_per_round ({clients_per_round}) exceeds the federation's {} clients",
            data.num_clients()
        );
        Self {
            data,
            template,
            local,
            clients_per_round,
            rng,
            comm,
            availability: AvailabilityModel::AlwaysOn,
            adversary: None,
            policy: RoundPolicy::Synchronous,
            faults: None,
            devices: None,
            tally: FaultTally::default(),
            round: 0,
            // alloc: bounded — empty drop-list placeholder, cohort-bounded
            dropped: Vec::new(),
            plane: WorkerPlane::Owned(ClientWorkerPool::new()),
            upload_shuffle: None,
            shuffle_calls: 0,
        }
    }

    /// Permutes the arrival order of every training batch's surviving
    /// uploads with a deterministic, `seed`-derived shuffle (default: off —
    /// uploads arrive in dispatch order).
    ///
    /// This is the schedule-invariance sanitizer's fault injector: an
    /// algorithm whose trajectory changes under it depends on upload arrival
    /// order, which a real deployment does not control. It deliberately does
    /// **not** enter [`Simulation::config_fingerprint`] — a correct
    /// algorithm produces the canonical trajectory with or without it.
    pub fn with_upload_shuffle(mut self, seed: u64) -> Self {
        self.upload_shuffle = Some(seed);
        self
    }

    /// Attaches a client-availability model for this round (the round number
    /// is needed by the deterministic straggler patterns). Defaults to
    /// [`AvailabilityModel::AlwaysOn`].
    ///
    /// The model is validated eagerly: an out-of-range dropout probability or
    /// straggler period panics here instead of silently misbehaving at
    /// training time.
    pub fn with_availability(mut self, availability: AvailabilityModel, round: usize) -> Self {
        availability.validate();
        self.availability = availability;
        self.round = round;
        self
    }

    /// Attaches an adversary model for this round: compromised clients train
    /// on poisoned data or tamper with their uploads (see
    /// [`crate::adversary`]). Orthogonal to [`RoundContext::with_availability`]
    /// — a compromised client that drops out never gets to attack. Validated
    /// eagerly, like the availability model.
    pub fn with_adversaries(mut self, adversary: AdversaryModel, round: usize) -> Self {
        adversary.validate();
        self.adversary = Some(adversary);
        self.round = round;
        self
    }

    /// Attaches the fault-tolerance service plane for this round: a
    /// round-closing `policy`, an optional [`FaultPlan`] and an optional
    /// [`DeviceModel`]. With the defaults
    /// (`RoundPolicy::Synchronous`, no faults, no devices) the round is
    /// bitwise identical to a context without this call — the service plane
    /// draws nothing and filters nothing.
    ///
    /// All three are validated eagerly, like the availability model.
    pub fn with_service_plane(
        mut self,
        policy: RoundPolicy,
        faults: Option<FaultPlan>,
        devices: Option<DeviceModel>,
        round: usize,
    ) -> Self {
        policy.validate();
        if let Some(plan) = &faults {
            plan.validate();
        }
        if let Some(model) = &devices {
            model.validate();
        }
        self.policy = policy;
        self.faults = faults;
        self.devices = devices;
        self.round = round;
        self
    }

    /// The round-closing policy this round runs under (the `Buffered*`
    /// algorithms read their buffer goal and staleness bound from here).
    pub fn round_policy(&self) -> RoundPolicy {
        self.policy
    }

    /// Fault accounting accumulated by this round's service plane.
    pub fn fault_tally(&self) -> FaultTally {
        self.tally
    }

    /// Attaches a persistent [`ClientWorkerPool`] that outlives this context,
    /// so the round trains on warm cached models instead of fresh template
    /// clones. For contexts sharing one template (the supported use — see
    /// [`ClientWorkerPool::ensure`] for the exact compatibility contract),
    /// results are bitwise identical either way (see the [`crate::worker`]
    /// module docs); only the allocation profile changes. [`Simulation`]
    /// attaches one pool for its whole run.
    pub fn with_worker_pool(mut self, pool: &'a mut ClientWorkerPool) -> Self {
        self.plane = WorkerPlane::Shared(pool);
        self
    }

    /// Clients whose training job was discarded by the availability model
    /// this round (in job order): they were selected but never responded.
    pub fn dropped_clients(&self) -> &[usize] {
        &self.dropped
    }

    /// Total number of clients in the federation.
    pub fn num_clients(&self) -> usize {
        self.data.num_clients()
    }

    /// Number of clients that participate per round (the paper's `K`).
    /// Validated against the population size at construction, so no silent
    /// per-call clamping happens here.
    pub fn clients_per_round(&self) -> usize {
        self.clients_per_round
    }

    /// The federated dataset (client training shards + global test set).
    ///
    /// # Panics
    /// Panics on a sharded context: whole-federation slice access is exactly
    /// what the sharded plane exists to avoid. Algorithms reach shards
    /// through [`RoundContext::local_train_jobs`] and friends, which work on
    /// both backends.
    pub fn data(&self) -> &FederatedDataset {
        match self.data {
            DataPlane::Eager(data) => data,
            // panic: documented API contract — whole-federation access is
            // exactly what the sharded plane exists to prevent
            DataPlane::Sharded(_) => panic!(
                "RoundContext::data() is unavailable on a sharded data plane; \
                 access shards through the training dispatch instead"
            ),
        }
    }

    /// Number of classes in the federation's task.
    pub fn num_classes(&self) -> usize {
        self.data.num_classes()
    }

    /// The architecture template used to instantiate client models.
    pub fn template(&self) -> &dyn Model {
        self.template
    }

    /// The local-training configuration every client uses.
    pub fn local_config(&self) -> LocalTrainConfig {
        self.local
    }

    /// Mutable access to the round's RNG (client selection, shuffling).
    pub fn rng_mut(&mut self) -> &mut SeededRng {
        &mut self.rng
    }

    /// Samples `clients_per_round` distinct clients uniformly at random
    /// (Algorithm 1, line 4).
    ///
    /// Populations up to [`SPARSE_SELECTION_THRESHOLD`] use the historical
    /// dense Fisher–Yates prefix sampler (bitwise-preserving every existing
    /// fingerprinted trajectory); larger populations switch to Floyd's O(k)
    /// sampler so selection never allocates population-sized scratch.
    pub fn select_clients(&mut self) -> Vec<usize> {
        let n = self.num_clients();
        let k = self.clients_per_round();
        if n > SPARSE_SELECTION_THRESHOLD {
            self.rng.sample_without_replacement_sparse(n, k)
        } else {
            self.rng.sample_without_replacement(n, k)
        }
    }

    /// Samples clients with probability proportional to `weights` (without
    /// replacement), used by the clustered-sampling baseline.
    pub fn select_clients_weighted(&mut self, weights: &[f32]) -> Vec<usize> {
        assert_eq!(weights.len(), self.num_clients(), "one weight per client");
        let k = self.clients_per_round();
        let mut remaining: Vec<usize> = (0..self.num_clients()).collect();
        let mut w: Vec<f32> = weights.to_vec();
        let mut picked = Vec::with_capacity(k);
        for _ in 0..k {
            if remaining.is_empty() {
                break;
            }
            let total: f32 = w.iter().sum();
            let idx = if total <= 0.0 {
                self.rng.below(remaining.len())
            } else {
                self.rng.weighted_index(&w)
            };
            picked.push(remaining.remove(idx));
            w.remove(idx);
        }
        picked
    }

    /// Trains one client on the dispatched parameters and returns its update,
    /// recording the communication.
    ///
    /// Accepts anything convertible into a [`ParamBlock`]: pass a cloned
    /// block (a reference-count bump) to dispatch a server model without
    /// copying it; `&[f32]` / `Vec<f32>` still work and copy once at the
    /// conversion boundary.
    pub fn local_train(&mut self, client: usize, params: impl Into<ParamBlock>) -> LocalUpdate {
        let updates = self.local_train_jobs(vec![TrainJob::plain(client, params)]);
        updates.into_iter().next().expect("one job yields one update")
    }

    /// Trains several clients (in parallel) on plain jobs.
    ///
    /// Accepts any parameter representation convertible into a [`ParamBlock`];
    /// pass `(client, ParamBlock)` pairs (cloned blocks are reference-count
    /// bumps) to dispatch server models without copying them.
    pub fn local_train_batch<P>(&mut self, jobs: &[(usize, P)]) -> Vec<LocalUpdate>
    where
        P: Clone + Into<ParamBlock>,
    {
        self.local_train_jobs(
            jobs.iter()
                // alloc: bounded — cohort-sized job list, once per round
                .map(|(client, params)| TrainJob::plain(*client, params.clone()))
                // alloc: bounded — cohort-sized job list, once per round
                .collect(),
        )
    }

    /// Trains several clients (in parallel), honouring per-job gradient
    /// corrections and auxiliary payload accounting.
    ///
    /// Jobs whose client drops out under the configured
    /// [`AvailabilityModel`] are discarded: they produce no update and no
    /// communication, and the dropped client ids are recorded in
    /// [`RoundContext::dropped_clients`]. Algorithms must therefore tolerate
    /// receiving fewer updates than jobs they submitted.
    pub fn local_train_jobs(&mut self, jobs: Vec<TrainJob>) -> Vec<LocalUpdate> {
        // Apply the availability model before any communication happens: a
        // dropped client never responds to the dispatch.
        let availability = self.availability;
        let round = self.round;
        let jobs: Vec<TrainJob> = jobs
            .into_iter()
            .filter(|job| {
                let available = availability.is_available(round, job.client, &mut self.rng);
                if !available {
                    self.dropped.push(job.client);
                }
                available
            })
            // alloc: bounded — cohort-sized job list, once per round
            .collect();

        // Record communication before training (dispatch + upload of the model,
        // plus any auxiliary payload the algorithm declared).
        for job in &jobs {
            self.comm.record_model_roundtrip(job.params.len());
            if job.extra_download > 0 {
                self.comm.record_extra_download(job.extra_download);
            }
            if job.extra_upload > 0 {
                self.comm.record_extra_upload(job.extra_upload);
            }
        }

        // Derive every job's RNG stream serially, in job order. Safety of the
        // `fork(client + 1)` derivation: `fork` reads only the round RNG's
        // *construction seed* (see `SeededRng::fork`), so two jobs for the
        // same client in the same round would collide — but a round never
        // dispatches the same client twice, and the simulation rebuilds the
        // round RNG from `master.fork(round)` every round, so the (round,
        // client) pair uniquely identifies each stream. The worker pool must
        // preserve exactly this derivation (it does: the reseeding fork below
        // never consumes the job stream).
        let local = self.local;
        let prepared: Vec<(TrainJob, SeededRng)> = jobs
            .into_iter()
            .map(|job| {
                let rng = self.rng.fork(job.client as u64 + 1); // fork: construction-seed
                (job, rng)
            })
            // alloc: bounded — cohort-sized job list, once per round
            .collect();

        // Dispatch onto the persistent worker plane: slot i takes job i,
        // reloads the dispatched parameters into its cached model and rewinds
        // stochastic layer state, which is bitwise identical to the
        // historical clone-per-round preparation — then train in parallel,
        // the paper's "parallel for" block (Algorithm 1, line 6).
        // Resolve the compromised-client mask once per round (it is a pure
        // function of the adversary seed, but there is no reason to rederive
        // it inside the parallel closure). Honest runs skip all of this.
        let adversary = self.adversary;
        let compromised: Vec<bool> = match adversary {
            Some(adv) => adv.compromised(self.data.num_clients()),
            // alloc: bounded — cohort-sized job list, once per round
            None => Vec::new(),
        };

        // Check every job's shard out of the data plane before the parallel
        // section: on the eager backend these are plain borrows; on the
        // sharded backend this is where cache hits/misses happen (serially,
        // in job order — materialisation stays deterministic and the
        // parallel workers below never touch the cache).
        let shards: Vec<ShardRef<'_>> = prepared
            .iter()
            .map(|(job, _)| self.data.shard(job.client))
            // alloc: bounded — cohort-sized job list, once per round
            .collect();

        let template = self.template;
        let workers = self.plane.pool().ensure(prepared.len(), template);
        let work: Vec<_> = prepared
            .into_iter()
            .zip(shards)
            .zip(workers.iter_mut())
            // alloc: bounded — cohort-sized job list, once per round
            .collect();
        let updates = work
            .into_par_iter()
            .map(|(((job, mut rng), shard), worker)| {
                let attacker =
                    adversary.filter(|_| compromised.get(job.client).copied().unwrap_or(false));
                // Data poisoning happens before training (the client trains
                // honestly — on flipped labels); everything else trains on the
                // honest shard and tampers with the upload afterwards. The
                // corrupted upload is a pure function of (round, client,
                // dispatched params), so upload order and restarts cannot
                // change it.
                let mut update = match attacker {
                    Some(adv) if adv.attack == Attack::LabelFlip => {
                        let poisoned = adv.flip_labels(&shard);
                        worker.train(
                            job.client,
                            &job.params,
                            &poisoned,
                            &local,
                            &mut rng,
                            job.correction.as_ref(),
                        )
                    }
                    _ => worker.train(
                        job.client,
                        &job.params,
                        &shard,
                        &local,
                        &mut rng,
                        job.correction.as_ref(),
                    ),
                };
                if let Some(adv) = attacker {
                    adv.corrupt_upload(round, &job.params, &mut update);
                }
                update
            })
            // alloc: bounded — cohort-sized job list, once per round
            .collect::<Vec<LocalUpdate>>();
        let mut updates = self.apply_service_plane(updates);
        self.shuffle_uploads(&mut updates);
        updates
    }

    /// Applies the configured upload-arrival permutation (inert by default).
    /// Each training batch within a round gets its own stream, so two
    /// batches of the same round are permuted independently.
    fn shuffle_uploads(&mut self, updates: &mut [LocalUpdate]) {
        let Some(seed) = self.upload_shuffle else {
            return;
        };
        // Domain-separate the shuffle seed from every other consumer of the
        // master seed so enabling the sanitizer cannot correlate with any
        // trajectory stream.
        const SHUFFLE_DOMAIN: u64 = 0x5AFE_5CED_u64;
        let call = self.shuffle_calls;
        self.shuffle_calls += 1;
        let mut rng = SeededRng::new(seed ^ SHUFFLE_DOMAIN)
            .fork(self.round as u64) // fork: construction-seed
            .fork(call); // fork: construction-seed
        rng.shuffle(updates);
    }

    /// Whether the fault-tolerance service plane has anything to do. With the
    /// default synchronous policy and no fault plan the plane must be
    /// completely inert — not a single extra draw or filter — so historical
    /// trajectories stay bitwise identical.
    fn service_plane_active(&self) -> bool {
        self.policy != RoundPolicy::Synchronous
            || self
                .faults
                .map(|f| f.has_client_faults() || f.server_fail_prob > 0.0)
                .unwrap_or(false)
    }

    /// The transport/server delivery step between client training and the
    /// algorithm's aggregation. Filters the round's updates down to what the
    /// server actually gets to aggregate:
    ///
    /// * crashed uploads never arrive (any policy),
    /// * a round whose server-apply retries are exhausted loses its whole
    ///   upload set (any policy),
    /// * under `Synchronous`, stalled uploads miss the round barrier and are
    ///   lost; duplicates are deduped silently (the synchronous server
    ///   processes each client's upload once),
    /// * under `Deadline`, uploads slower than the budget are additionally
    ///   discarded, except the fastest ones rescued by `min_quorum`,
    /// * under `Buffered`, stalled and slow uploads are **kept** — the
    ///   buffered algorithms fetch their delays via
    ///   [`RoundContext::upload_outcomes`] and buffer them across rounds.
    ///
    /// The surviving updates keep their original job order, so slot-mapping
    /// algorithms (FedCross) are unaffected by the filtering.
    fn apply_service_plane(&mut self, updates: Vec<LocalUpdate>) -> Vec<LocalUpdate> {
        if !self.service_plane_active() {
            return updates;
        }
        let round = self.round;

        // Transient server-apply failure: one fate per round. Exhausted
        // retries abandon the round's upload set — algorithms already
        // tolerate empty rounds via their carry-over paths.
        if let Some(plan) = self.faults {
            match plan.server_apply_attempts(round) {
                Some(attempts) => self.tally.apply_retries += attempts - 1,
                None => {
                    self.tally.rounds_lost += 1;
                    // alloc: bounded — cohort-sized service-plane staging, once per round
                    return Vec::new();
                }
            }
        }

        // Partition by per-upload transport fate, preserving job order.
        // `kept` are deliverable now; `late` missed a deadline budget but can
        // still be rescued by the quorum rule (stalled uploads cannot — their
        // bytes genuinely are not there yet).
        let buffered = matches!(self.policy, RoundPolicy::Buffered { .. });
        // alloc: bounded — cohort-sized service-plane staging, once per round
        let mut kept: Vec<(usize, LocalUpdate)> = Vec::with_capacity(updates.len());
        // alloc: bounded — cohort-sized service-plane staging, once per round
        let mut late: Vec<(f32, usize, LocalUpdate)> = Vec::new();
        for (index, update) in updates.into_iter().enumerate() {
            let fate = self
                .faults
                .map(|plan| plan.fate(round, update.client))
                .unwrap_or_default();
            if fate.crashed {
                self.tally.crashed += 1;
                continue;
            }
            if fate.duplicated {
                self.tally.duplicated += 1;
            }
            if fate.stall.is_some() {
                self.tally.stalled += 1;
                if !buffered {
                    continue;
                }
            }
            match self.policy {
                RoundPolicy::Deadline { budget, .. } => {
                    let latency = self
                        .devices
                        .map(|d| d.latency(round, update.client))
                        .unwrap_or(0.0);
                    if latency <= budget {
                        kept.push((index, update));
                    } else {
                        late.push((latency, index, update));
                    }
                }
                RoundPolicy::Synchronous | RoundPolicy::Buffered { .. } => {
                    kept.push((index, update));
                }
            }
        }

        // Quorum extension: when the deadline left fewer uploads than the
        // server insists on, wait for the fastest stragglers (deterministic
        // order: latency, then client id as the tie-break).
        if let RoundPolicy::Deadline { min_quorum, .. } = self.policy {
            if kept.len() < min_quorum && !late.is_empty() {
                late.sort_by(|a, b| {
                    a.0.total_cmp(&b.0).then_with(|| a.2.client.cmp(&b.2.client))
                });
                let rescue = (min_quorum - kept.len()).min(late.len());
                for (_, index, update) in late.drain(..rescue) {
                    self.tally.quorum_rescued += 1;
                    kept.push((index, update));
                }
                // Restore the original job order after the rescue.
                kept.sort_by_key(|(index, _)| *index);
            }
            self.tally.missed_deadline += late.len();
        }

        // alloc: bounded — cohort-sized service-plane staging, once per round
        kept.into_iter().map(|(_, update)| update).collect()
    }

    /// The transport outcome (arrival delay, delivered copies) of every
    /// update in `updates`, aligned by index. A pure function of
    /// `(round, client)` through the fault plan and device model, so the
    /// buffered algorithms that consume it stay bitwise resumable.
    ///
    /// Under the synchronous and deadline policies every surviving update was
    /// already delivered on time and deduped, so the outcome is always
    /// `{delay: 0, copies: 1}`; under `Buffered`, stalls and device latency
    /// turn into arrival delays and duplicates into `copies: 2`.
    pub fn upload_outcomes(&self, updates: &[LocalUpdate]) -> Vec<UploadOutcome> {
        let round = self.round;
        let buffered = matches!(self.policy, RoundPolicy::Buffered { .. });
        updates
            .iter()
            .map(|update| {
                if !buffered {
                    return UploadOutcome {
                        client: update.client,
                        delay: 0,
                        copies: 1,
                    };
                }
                let fate = self
                    .faults
                    .map(|plan| plan.fate(round, update.client))
                    .unwrap_or_default();
                let device_delay = self
                    .devices
                    .map(|d| d.delay_rounds(round, update.client))
                    .unwrap_or(0);
                UploadOutcome {
                    client: update.client,
                    delay: fate.stall.unwrap_or(0) + device_delay,
                    copies: 1 + usize::from(fate.duplicated),
                }
            })
            // alloc: bounded — cohort-sized outcome list, once per round
            .collect()
    }

    /// Records auxiliary server→client payload outside of a training job
    /// (e.g. a broadcast generator).
    pub fn record_extra_download(&mut self, scalars: usize) {
        self.comm.record_extra_download(scalars);
    }

    /// Records auxiliary client→server payload outside of a training job.
    pub fn record_extra_upload(&mut self, scalars: usize) {
        self.comm.record_extra_upload(scalars);
    }
}

/// A federated-learning method, pluggable into the [`Simulation`].
pub trait FederatedAlgorithm {
    /// Human-readable method name (used in tables and learning-curve labels).
    fn name(&self) -> String;

    /// Executes one communication round.
    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport;

    /// The parameter vector of the model that would be deployed right now
    /// (FedCross generates it on demand from the middleware models; FedAvg
    /// simply returns its global model).
    fn global_params(&self) -> Vec<f32>;

    /// Writes the deployed parameter vector into `out` (cleared first),
    /// reusing its capacity — the allocation-free form the simulation's
    /// evaluation loop uses every round. Must produce exactly the bytes of
    /// [`FederatedAlgorithm::global_params`]; the default falls back to the
    /// allocating form, so algorithms only override it when they can generate
    /// the global model into a caller buffer (FedCross and FedAvg do).
    fn global_params_into(&self, out: &mut Vec<f32>) {
        let params = self.global_params();
        out.clear();
        out.extend_from_slice(&params);
    }

    /// Captures the algorithm's **complete** training state for a
    /// [`Checkpoint`] — everything a fresh instance needs to continue the
    /// run bitwise identically (FedCross: the middleware list in slot order;
    /// SCAFFOLD: global model plus server and client control variates; ...).
    ///
    /// Algorithms opt in by overriding this together with
    /// [`FederatedAlgorithm::restore_state`]. The default **fails** rather
    /// than guess: silently capturing only the derived global model would
    /// produce checkpoints that save fine every round and turn out to be
    /// unrecoverable at resume time — the failure must surface when the
    /// checkpoint is taken, while the state still exists.
    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        Err(StateError::new(format!(
            "algorithm `{}` does not implement checkpoint snapshot",
            self.name()
        )))
    }

    /// Restores the state captured by [`FederatedAlgorithm::snapshot_state`]
    /// into this (freshly constructed, identically configured) instance.
    ///
    /// Implementations must validate the state's shape (model count, parameter
    /// count, table entries) and fail with a [`StateError`] on any mismatch —
    /// never restore partially. The default implementation always fails:
    /// algorithms that do not opt in to the resume plane cannot be resumed.
    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let _ = state;
        Err(StateError::new(format!(
            "algorithm `{}` does not implement checkpoint restore",
            self.name()
        )))
    }
}

/// Simulation-level configuration (everything outside a single round).
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Number of communication rounds.
    pub rounds: usize,
    /// Clients selected per round (the paper selects 10% of clients).
    pub clients_per_round: usize,
    /// Evaluate the global model every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Batch size used for test-set evaluation.
    pub eval_batch_size: usize,
    /// Client-side local training configuration.
    pub local: LocalTrainConfig,
    /// Master seed; every round derives its own stream from it.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            rounds: 20,
            clients_per_round: 10,
            eval_every: 1,
            eval_batch_size: 64,
            local: LocalTrainConfig::default(),
            seed: 42,
        }
    }
}

/// The result of a full or partial simulation run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Name of the algorithm that was run.
    pub algorithm: String,
    /// Learning curve (one record per evaluated round, absolute indices).
    pub history: TrainingHistory,
    /// Accumulated communication counters.
    pub comm: CommTracker,
    /// Number of scalar parameters of the trained model.
    pub model_params: usize,
    /// Absolute number of communication rounds completed when this result was
    /// produced (equals the configured `rounds` for a full run; less for a
    /// partial [`Simulation::run_segment`] run). This is the round a
    /// checkpoint taken from this result resumes from.
    pub rounds_completed: usize,
    /// Fault accounting for the rounds this result actually executed (all
    /// zeros without a fault plan / non-synchronous policy). Diagnostic only:
    /// the tally is not checkpointed, so a resumed run's tally covers the
    /// resumed segment, not the whole trajectory.
    pub faults: FaultTally,
}

/// Why a [`Simulation::resume`] refused a checkpoint. Every variant is a
/// configuration the resumed run could not reproduce bitwise — resuming
/// anyway would silently change the training trajectory, so the engine fails
/// loudly instead.
#[derive(Debug, Clone, PartialEq)]
pub enum ResumeError {
    /// The checkpoint was written by a different format version.
    Version {
        /// Version found in the checkpoint file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The checkpoint belongs to a different algorithm (or the same algorithm
    /// under different hyper-parameters — the name encodes them).
    AlgorithmMismatch {
        /// Algorithm name recorded in the checkpoint.
        checkpoint: String,
        /// Name of the algorithm passed to `resume`.
        resuming: String,
    },
    /// The checkpointed model size does not match the simulation's template.
    ParamCountMismatch {
        /// Parameters per model in the checkpoint.
        checkpoint: usize,
        /// Parameters of the simulation's architecture template.
        template: usize,
    },
    /// The checkpoint was produced under a different master seed.
    SeedMismatch {
        /// Seed recorded in the checkpoint.
        checkpoint: u64,
        /// Seed of the resuming simulation's configuration.
        resuming: u64,
    },
    /// The checkpoint was produced under a different simulation configuration
    /// (per-round schedule, local training hyper-parameters, availability
    /// model, template size or federation shape).
    ConfigMismatch {
        /// Fingerprint recorded in the checkpoint.
        checkpoint: String,
        /// Fingerprint of the resuming simulation.
        resuming: String,
    },
    /// The checkpoint already contains at least as many rounds as the
    /// simulation is configured to run.
    NothingToResume {
        /// Rounds completed per the checkpoint.
        rounds_completed: usize,
        /// Total rounds the simulation is configured for.
        configured_rounds: usize,
    },
    /// The algorithm rejected the checkpointed state (wrong middleware count,
    /// missing table, dimension mismatch, or restore not implemented).
    State(StateError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Version { found, expected } => {
                write!(f, "checkpoint format version {found}, this build reads {expected}")
            }
            ResumeError::AlgorithmMismatch { checkpoint, resuming } => write!(
                f,
                "checkpoint belongs to `{checkpoint}` but the resuming algorithm is `{resuming}`"
            ),
            ResumeError::ParamCountMismatch { checkpoint, template } => write!(
                f,
                "checkpoint stores {checkpoint}-parameter models, the template has {template}"
            ),
            ResumeError::SeedMismatch { checkpoint, resuming } => write!(
                f,
                "checkpoint was trained under seed {checkpoint}, the resuming simulation uses {resuming}"
            ),
            ResumeError::ConfigMismatch { checkpoint, resuming } => write!(
                f,
                "checkpoint config fingerprint {checkpoint} does not match the resuming simulation ({resuming})"
            ),
            ResumeError::NothingToResume {
                rounds_completed,
                configured_rounds,
            } => write!(
                f,
                "checkpoint already holds {rounds_completed} rounds, simulation is configured for {configured_rounds}"
            ),
            ResumeError::State(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<StateError> for ResumeError {
    fn from(err: StateError) -> Self {
        ResumeError::State(err)
    }
}

impl SimulationResult {
    /// Final-round test accuracy in percent.
    pub fn final_accuracy_pct(&self) -> f32 {
        self.history.final_accuracy() * 100.0
    }

    /// Best test accuracy in percent.
    pub fn best_accuracy_pct(&self) -> f32 {
        self.history.best_accuracy() * 100.0
    }
}

/// Drives a [`FederatedAlgorithm`] against a [`DataPlane`] — either a fully
/// materialised [`FederatedDataset`] or a sharded [`ShardPlane`].
pub struct Simulation<'a> {
    config: SimulationConfig,
    data: DataPlane<'a>,
    template: Box<dyn Model>,
    availability: AvailabilityModel,
    adversary: Option<AdversaryModel>,
    policy: RoundPolicy,
    faults: Option<FaultPlan>,
    devices: Option<DeviceModel>,
    upload_shuffle: Option<u64>,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation over a fully materialised dataset. `template`
    /// defines the architecture every client and the server-side evaluation
    /// use.
    pub fn new(config: SimulationConfig, data: &'a FederatedDataset, template: Box<dyn Model>) -> Self {
        Self::over_plane(config, DataPlane::Eager(data), template)
    }

    /// Creates a simulation over a sharded data plane: client shards are
    /// materialised lazily through `plane`'s bounded cache, and each round's
    /// predicted cohort is prefetched in the background while the previous
    /// round trains. The trajectory is bitwise identical to
    /// [`Simulation::new`] over the equivalently materialised federation
    /// (pinned by `tests/tests/scale_plane.rs`).
    pub fn new_sharded(
        config: SimulationConfig,
        plane: &'a ShardPlane,
        template: Box<dyn Model>,
    ) -> Self {
        Self::over_plane(config, DataPlane::Sharded(plane), template)
    }

    fn over_plane(config: SimulationConfig, data: DataPlane<'a>, template: Box<dyn Model>) -> Self {
        assert!(config.rounds > 0, "at least one round is required");
        assert!(config.eval_every > 0, "eval_every must be positive");
        assert!(
            config.clients_per_round >= 1,
            "need at least one client per round"
        );
        assert!(
            config.clients_per_round <= data.num_clients(),
            "clients_per_round ({}) exceeds the federation's {} clients",
            config.clients_per_round,
            data.num_clients()
        );
        Self {
            config,
            data,
            template,
            availability: AvailabilityModel::AlwaysOn,
            adversary: None,
            policy: RoundPolicy::Synchronous,
            faults: None,
            devices: None,
            upload_shuffle: None,
        }
    }

    /// Permutes upload arrival order in every round with a deterministic
    /// `seed`-derived shuffle (default: off). See
    /// [`RoundContext::with_upload_shuffle`] — this is the sanitizer's
    /// arrival-order fault injector, and it is deliberately excluded from
    /// [`Simulation::config_fingerprint`]: an algorithm that aggregates in
    /// canonical order produces the bitwise-identical trajectory with or
    /// without it.
    pub fn with_upload_shuffle(mut self, seed: u64) -> Self {
        self.upload_shuffle = Some(seed);
        self
    }

    /// Simulates unreliable clients: selected clients may drop out according
    /// to `availability` (default: every client always responds).
    ///
    /// # Panics
    /// Panics on an invalid model (dropout probability outside `[0, 1)`,
    /// straggler period below 2) — validated eagerly so a misconfiguration
    /// fails at setup instead of silently dropping every client.
    pub fn with_availability(mut self, availability: AvailabilityModel) -> Self {
        availability.validate();
        self.availability = availability;
        self
    }

    /// Simulates a compromised federation: the configured fraction of clients
    /// mounts the configured [`Attack`](crate::adversary::Attack) every round
    /// (default: every client is honest). Orthogonal to
    /// [`Simulation::with_availability`].
    ///
    /// # Panics
    /// Panics on an invalid model (fraction outside `[0, 1)`, non-finite
    /// attack parameter) — validated eagerly, like the availability model.
    pub fn with_adversaries(mut self, adversary: AdversaryModel) -> Self {
        adversary.validate();
        self.adversary = Some(adversary);
        self
    }

    /// Chooses how rounds close (default: [`RoundPolicy::Synchronous`], the
    /// bitwise-pinned historical behaviour). See [`RoundPolicy`] for the
    /// deadline and buffered semantics.
    ///
    /// # Panics
    /// Panics on an invalid policy (non-positive deadline budget, zero
    /// buffered goal) — validated eagerly, like the availability model.
    pub fn with_round_policy(mut self, policy: RoundPolicy) -> Self {
        policy.validate();
        self.policy = policy;
        self
    }

    /// Injects transport/server faults according to `faults` (default: a
    /// perfectly reliable transport). Composes with availability (a dropped
    /// client never trains, so it cannot crash mid-round) and adversaries (a
    /// corrupted upload stalls and duplicates like any other).
    ///
    /// # Panics
    /// Panics on an invalid plan (probability outside `[0, 1)`) — validated
    /// eagerly.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        faults.validate();
        self.faults = Some(faults);
        self
    }

    /// Simulates heterogeneous device speeds according to `devices` (default:
    /// a homogeneous fleet). Only observable under a deadline or buffered
    /// round policy — the synchronous server blocks on the slowest device.
    ///
    /// # Panics
    /// Panics on an invalid model (fraction outside `[0, 1]`, slowdown below
    /// 1) — validated eagerly.
    pub fn with_devices(mut self, devices: DeviceModel) -> Self {
        devices.validate();
        self.devices = Some(devices);
        self
    }

    /// The architecture template.
    pub fn template(&self) -> &dyn Model {
        self.template.as_ref()
    }

    /// Runs the configured number of rounds of `algorithm`.
    pub fn run(&self, algorithm: &mut dyn FederatedAlgorithm) -> SimulationResult {
        self.run_with_observer(algorithm, |_, _| {})
    }

    /// Runs the simulation, invoking `observer(round, &record)` after every
    /// evaluation — used by the benchmark harness to stream learning curves.
    pub fn run_with_observer(
        &self,
        algorithm: &mut dyn FederatedAlgorithm,
        observer: impl FnMut(usize, &RoundRecord),
    ) -> SimulationResult {
        self.run_segment_with_observer(
            algorithm,
            0,
            self.config.rounds,
            TrainingHistory::new(),
            CommTracker::new(),
            observer,
        )
    }

    /// Runs the **absolute** round range `[start_round, end_round)` of this
    /// configuration's trajectory and returns the (possibly partial) result.
    ///
    /// Every per-round random stream is derived from the absolute round index
    /// (`master.fork(round)`), and the `eval_every` cadence is anchored to
    /// absolute rounds too, so running `[0, R)` and then `[R, rounds)` on a
    /// faithfully restored algorithm is **bitwise identical** to one
    /// uninterrupted `[0, rounds)` run. The forced final evaluation happens
    /// only when the segment reaches the configured last round.
    pub fn run_segment(
        &self,
        algorithm: &mut dyn FederatedAlgorithm,
        start_round: usize,
        end_round: usize,
    ) -> SimulationResult {
        self.run_segment_with_observer(
            algorithm,
            start_round,
            end_round,
            TrainingHistory::new(),
            CommTracker::new(),
            |_, _| {},
        )
    }

    /// Continues a run from absolute round `start_round` to the configured
    /// end, appending to the carried-over `history` and `comm` (typically
    /// restored from a [`Checkpoint`]). See [`Simulation::run_segment`] for
    /// the absolute-round contract; most callers should use
    /// [`Simulation::resume`], which also validates and restores the
    /// checkpoint.
    pub fn run_from(
        &self,
        algorithm: &mut dyn FederatedAlgorithm,
        start_round: usize,
        history: TrainingHistory,
        comm: CommTracker,
    ) -> SimulationResult {
        self.run_segment_with_observer(
            algorithm,
            start_round,
            self.config.rounds,
            history,
            comm,
            |_, _| {},
        )
    }

    /// The full-control form backing every run entry point: absolute round
    /// range, carried-over history/comm, and a per-evaluation observer.
    pub fn run_segment_with_observer(
        &self,
        algorithm: &mut dyn FederatedAlgorithm,
        start_round: usize,
        end_round: usize,
        mut history: TrainingHistory,
        mut comm: CommTracker,
        mut observer: impl FnMut(usize, &RoundRecord),
    ) -> SimulationResult {
        assert!(
            start_round <= end_round && end_round <= self.config.rounds,
            "round segment [{start_round}, {end_round}) must lie within the configured {} rounds",
            self.config.rounds
        );
        let master = SeededRng::new(self.config.seed);
        // Warm the first round's cohort before entering the loop; every later
        // round's cohort is hinted while its predecessor trains.
        self.prefetch_cohort(start_round, end_round, &master);

        // The persistent round plane: one pool of warm client workers shared
        // by every round, one cached evaluation model, and one reusable
        // global-parameter buffer. After the first (warm-up) round a
        // steady-state round — training *and* evaluation — constructs zero
        // models and performs zero full-model heap allocations (pinned by
        // tests/tests/round_alloc.rs). A segment starting mid-trajectory
        // begins with a cold pool, which is bitwise harmless: dispatch
        // reloads parameters and rewinds stochastic state either way (the
        // warm-vs-fresh identity pinned by tests/tests/round_plane.rs).
        let mut plane = ClientWorkerPool::new();
        let mut eval_worker = EvalWorker::new(self.template.as_ref());
        // alloc: cold — eval buffer grown once before the loop; steady rounds reuse capacity
        let mut global_buf: Vec<f32> = Vec::new();
        let mut faults_total = FaultTally::default();
        let mut evals_done = 0usize;

        for round in start_round..end_round {
            // Hint next round's predicted cohort so the prefetch worker
            // materialises those shards while this round trains.
            self.prefetch_cohort(round + 1, end_round, &master);
            // Runtime half of the allocation-discipline plane: after the
            // warm-up round, no single allocation on this thread may reach
            // the large-allocation threshold that round_alloc.rs pins.
            // Thread-local by design — worker-pool allocations are covered
            // by the global counters in the runtime pins; this guard owns
            // the dispatch/aggregation path. No-op unless the
            // `sanitize-alloc` feature is enabled.
            let round_guard = (round > start_round)
                .then(|| AllocGuard::enter("steady-round", STEADY_LARGE_BYTES));
            let report = {
                let mut ctx = RoundContext::over_plane(
                    self.data,
                    self.template.as_ref(),
                    self.config.local,
                    self.config.clients_per_round,
                    master.fork(round as u64), // fork: construction-seed
                    &mut comm,
                )
                .with_availability(self.availability, round)
                .with_service_plane(self.policy, self.faults, self.devices, round)
                .with_worker_pool(&mut plane);
                if let Some(adversary) = self.adversary {
                    ctx = ctx.with_adversaries(adversary, round);
                }
                if let Some(seed) = self.upload_shuffle {
                    ctx = ctx.with_upload_shuffle(seed);
                }
                let report = algorithm.run_round(round, &mut ctx);
                faults_total.absorb(&ctx.fault_tally());
                report
            };
            comm.end_round();
            drop(round_guard);

            let is_last = round + 1 == self.config.rounds;
            if round % self.config.eval_every == 0 || is_last {
                // The first evaluation warms global_buf and the eval
                // worker's scratch; every later one must stay under the
                // large-allocation threshold (same sanitizer as the round
                // guard above).
                let eval_guard = (evals_done > 0)
                    .then(|| AllocGuard::enter("steady-eval", STEADY_LARGE_BYTES));
                algorithm.global_params_into(&mut global_buf);
                let evaluation = eval_worker.evaluate_params(
                    &global_buf,
                    self.data.test_set(),
                    self.config.eval_batch_size,
                );
                drop(eval_guard);
                evals_done += 1;
                let record = RoundRecord {
                    round,
                    accuracy: evaluation.accuracy,
                    test_loss: evaluation.loss,
                    train_loss: report.mean_train_loss,
                };
                history.push(record);
                observer(round, &record);
            }
        }

        SimulationResult {
            algorithm: algorithm.name(),
            history,
            comm,
            model_params: self.template.param_count(),
            rounds_completed: end_round,
            faults: faults_total,
        }
    }

    /// Predicts and warms round `round`'s uniform selection cohort on the
    /// sharded backend. The prediction replays exactly the first draw the
    /// round's context will make (`master.fork(round)` followed by the
    /// k-sample), so for uniformly selecting algorithms every hint becomes a
    /// cache hit. Algorithms that select differently (weighted sampling, or
    /// consuming the round RNG first) just turn the hint into a harmless
    /// extra materialisation — prefetching can never change shard contents,
    /// only when they are synthesised.
    fn prefetch_cohort(&self, round: usize, end_round: usize, master: &SeededRng) {
        let DataPlane::Sharded(plane) = self.data else {
            return;
        };
        if round >= end_round {
            return;
        }
        let mut rng = master.fork(round as u64); // fork: construction-seed
        let n = plane.num_clients();
        let k = self.config.clients_per_round;
        let cohort = if n > SPARSE_SELECTION_THRESHOLD {
            rng.sample_without_replacement_sparse(n, k)
        } else {
            rng.sample_without_replacement(n, k)
        };
        plane.prefetch(&cohort);
    }

    /// Fingerprint of everything that shapes this simulation's trajectory:
    /// the master seed, per-round schedule (`clients_per_round`,
    /// `eval_every`, `eval_batch_size`), the local training
    /// hyper-parameters, the availability model, the adversary model (a
    /// checkpoint from a compromised run must not resume into a clean one or
    /// vice versa), the round policy, fault plan and device model (a
    /// checkpoint from a faulty or deadline run must not resume under
    /// different fault/deadline settings), the template's parameter
    /// count and the federation's shape (client count, per-client shard
    /// sizes, class count, test-set size). Deliberately **excludes** the
    /// total round count, so a checkpointed run may be resumed with a larger
    /// `rounds` to train further — every completed round is still bitwise
    /// identical.
    ///
    /// The dataset enters at shape level only: two federations with
    /// identical shapes but different contents hash the same (hashing every
    /// sample on each checkpoint would be `O(N·samples)`); regenerated
    /// synthetic data is covered because its shape derives from its
    /// generation config, but a caller swapping real datasets of identical
    /// shape must keep that pairing straight themselves.
    pub fn config_fingerprint(&self) -> String {
        // FNV-1a over the trajectory-shaping fields, rendered as hex (a u64
        // survives the JSON number representation only up to 2^53, so the
        // fingerprint travels as a string).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.config.seed);
        mix(self.config.clients_per_round as u64);
        mix(self.config.eval_every as u64);
        mix(self.config.eval_batch_size as u64);
        mix(self.config.local.epochs as u64);
        mix(self.config.local.batch_size as u64);
        mix(self.config.local.lr.to_bits() as u64);
        mix(self.config.local.momentum.to_bits() as u64);
        mix(self.config.local.weight_decay.to_bits() as u64);
        match self.availability {
            AvailabilityModel::AlwaysOn => mix(1),
            AvailabilityModel::RandomDropout { prob } => {
                mix(2);
                mix(prob.to_bits() as u64);
            }
            AvailabilityModel::PeriodicStraggler { period } => {
                mix(3);
                mix(period as u64);
            }
        }
        match self.adversary {
            None => mix(4),
            Some(adv) => {
                mix(5);
                mix(adv.seed);
                mix(adv.fraction.to_bits() as u64);
                match adv.attack {
                    Attack::LabelFlip => mix(6),
                    Attack::SignFlip { scale } => {
                        mix(7);
                        mix(scale.to_bits() as u64);
                    }
                    Attack::ScaledUpdate { factor } => {
                        mix(8);
                        mix(factor.to_bits() as u64);
                    }
                    Attack::Colluding { magnitude } => {
                        mix(9);
                        mix(magnitude.to_bits() as u64);
                    }
                }
            }
        }
        match self.policy {
            RoundPolicy::Synchronous => mix(10),
            RoundPolicy::Deadline { budget, min_quorum } => {
                mix(11);
                mix(budget.to_bits() as u64);
                mix(min_quorum as u64);
            }
            RoundPolicy::Buffered {
                goal_k,
                max_staleness,
            } => {
                mix(12);
                mix(goal_k as u64);
                mix(max_staleness as u64);
            }
        }
        match self.faults {
            None => mix(13),
            Some(plan) => {
                mix(14);
                mix(plan.seed);
                mix(plan.crash_prob.to_bits() as u64);
                mix(plan.stall_prob.to_bits() as u64);
                mix(plan.max_stall as u64);
                mix(plan.duplicate_prob.to_bits() as u64);
                mix(plan.server_fail_prob.to_bits() as u64);
                mix(plan.max_retries as u64);
            }
        }
        match self.devices {
            None => mix(15),
            Some(model) => {
                mix(16);
                mix(model.seed);
                mix(model.straggler_fraction.to_bits() as u64);
                mix(model.slowdown.to_bits() as u64);
                mix(model.jitter.to_bits() as u64);
            }
        }
        mix(self.template.param_count() as u64);
        // Data-plane kind + population shape (tags 17/18, after the service
        // plane's 10–16): a checkpoint must not resume under a different
        // backend or population shape. The eager backend hashes per-client
        // shard sizes (O(n), populations are small by definition); the
        // sharded backend hashes the source's own fingerprint tokens, which
        // cover population size, per-client sample count and every knob that
        // shapes shard contents in O(1).
        match self.data {
            DataPlane::Eager(data) => {
                mix(17);
                mix(data.num_clients() as u64);
                mix(data.num_classes() as u64);
                mix(data.test_set().len() as u64);
                for size in data.client_sizes() {
                    mix(size as u64);
                }
            }
            DataPlane::Sharded(plane) => {
                mix(18);
                for token in plane.source().fingerprint_tokens() {
                    mix(token);
                }
            }
        }
        format!("fnv1a:{hash:016x}")
    }

    /// Captures a [`Checkpoint`] of `algorithm` after the partial (or full)
    /// run that produced `result`, stamping it with this simulation's seed
    /// and configuration fingerprint so [`Simulation::resume`] can verify the
    /// resumed run reproduces the same trajectory.
    ///
    /// # Errors
    /// Fails with the algorithm's [`StateError`] when it does not implement
    /// [`FederatedAlgorithm::snapshot_state`] — at checkpoint time, not
    /// after the crash that would have needed the checkpoint.
    pub fn checkpoint(
        &self,
        algorithm: &dyn FederatedAlgorithm,
        result: &SimulationResult,
    ) -> Result<Checkpoint, StateError> {
        Ok(Checkpoint::new(
            algorithm.name(),
            result.rounds_completed,
            self.config.seed,
            self.config_fingerprint(),
            algorithm.snapshot_state()?,
            result.history.clone(),
            result.comm.clone(),
        ))
    }

    /// Resumes a checkpointed run: validates the checkpoint against this
    /// simulation and the (freshly constructed, identically configured)
    /// `algorithm`, restores the algorithm's training state, and runs the
    /// remaining rounds `[checkpoint.rounds_completed, config.rounds)`.
    ///
    /// The returned result is **bitwise identical** to what the original
    /// uninterrupted run would have produced — same global parameters, same
    /// history records at the same absolute rounds, same communication
    /// totals (pinned by `tests/tests/resume_plane.rs`).
    ///
    /// # Errors
    /// Fails without running anything — and without touching `algorithm` —
    /// when the checkpoint's format version, algorithm name, parameter
    /// count or configuration fingerprint does not match, when there are no
    /// rounds left to run, or when the algorithm rejects the state (e.g. a
    /// FedCross middleware-count mismatch).
    pub fn resume(
        &self,
        checkpoint: &Checkpoint,
        algorithm: &mut dyn FederatedAlgorithm,
    ) -> Result<SimulationResult, ResumeError> {
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(ResumeError::Version {
                found: checkpoint.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        let resuming = algorithm.name();
        if checkpoint.algorithm != resuming {
            return Err(ResumeError::AlgorithmMismatch {
                checkpoint: checkpoint.algorithm.clone(),
                resuming,
            });
        }
        let template_params = self.template.param_count();
        if checkpoint.param_count() != template_params {
            return Err(ResumeError::ParamCountMismatch {
                checkpoint: checkpoint.param_count(),
                template: template_params,
            });
        }
        if checkpoint.seed != self.config.seed {
            return Err(ResumeError::SeedMismatch {
                checkpoint: checkpoint.seed,
                resuming: self.config.seed,
            });
        }
        let fingerprint = self.config_fingerprint();
        if checkpoint.config_fingerprint != fingerprint {
            return Err(ResumeError::ConfigMismatch {
                checkpoint: checkpoint.config_fingerprint.clone(),
                resuming: fingerprint,
            });
        }
        if checkpoint.rounds_completed >= self.config.rounds {
            return Err(ResumeError::NothingToResume {
                rounds_completed: checkpoint.rounds_completed,
                configured_rounds: self.config.rounds,
            });
        }
        algorithm.restore_state(&checkpoint.state)?;
        Ok(self.run_from(
            algorithm,
            checkpoint.rounds_completed,
            checkpoint.history.clone(),
            checkpoint.comm.clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_params;
    use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
    use fedcross_data::Heterogeneity;
    use fedcross_nn::models::CnnConfig;
    use fedcross_nn::params::average;

    /// The minimal FedAvg used to exercise the engine from inside this crate.
    struct EngineFedAvg {
        global: ParamBlock,
    }

    impl FederatedAlgorithm for EngineFedAvg {
        fn name(&self) -> String {
            "engine-fedavg".to_string()
        }

        fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
            let selected = ctx.select_clients();
            // Zero-copy dispatch: each job shares the global block.
            let jobs: Vec<(usize, ParamBlock)> = selected
                .iter()
                .map(|&c| (c, self.global.clone()))
                .collect();
            let updates = ctx.local_train_batch(&jobs);
            let params: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
            self.global = ParamBlock::from(average(&params));
            RoundReport::from_updates(&updates)
        }

        fn global_params(&self) -> Vec<f32> {
            self.global.to_vec()
        }

        fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
            Ok(AlgorithmState::single_model(self.global.clone()))
        }

        fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
            self.global = state.expect_single_model(self.global.len())?.clone();
            Ok(())
        }
    }

    fn tiny_setup(seed: u64) -> (FederatedDataset, Box<dyn Model>) {
        let mut rng = SeededRng::new(seed);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: 6,
                samples_per_client: 20,
                test_samples: 60,
                ..Default::default()
            },
            Heterogeneity::Iid,
            &mut rng,
        );
        let template = fedcross_nn::models::cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (4, 8),
                fc_hidden: 16,
                kernel: 3,
            },
            &mut rng,
        );
        (data, template)
    }

    #[test]
    fn simulation_runs_and_records_history() {
        let (data, template) = tiny_setup(0);
        let mut algo = EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        };
        let config = SimulationConfig {
            rounds: 3,
            clients_per_round: 3,
            eval_every: 1,
            eval_batch_size: 32,
            local: LocalTrainConfig::fast(),
            seed: 1,
        };
        let sim = Simulation::new(config, &data, template);
        let result = sim.run(&mut algo);
        assert_eq!(result.history.len(), 3);
        assert_eq!(result.algorithm, "engine-fedavg");
        assert!(result.model_params > 0);
        // 3 rounds x 3 clients = 9 model round trips.
        assert_eq!(result.comm.client_contacts, 9);
        assert_eq!(result.comm.rounds, 3);
        assert!(result.final_accuracy_pct() >= 0.0);
    }

    #[test]
    fn eval_every_reduces_history_length_but_keeps_last_round() {
        let (data, template) = tiny_setup(1);
        let mut algo = EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        };
        let config = SimulationConfig {
            rounds: 5,
            clients_per_round: 2,
            eval_every: 3,
            eval_batch_size: 32,
            local: LocalTrainConfig::fast(),
            seed: 2,
        };
        let sim = Simulation::new(config, &data, template);
        let result = sim.run(&mut algo);
        // Evaluated at rounds 0, 3 and the final round 4.
        let rounds: Vec<usize> = result.history.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![0, 3, 4]);
    }

    #[test]
    fn federated_training_improves_over_initialisation() {
        let mut rng = SeededRng::new(2);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: 6,
                samples_per_client: 50,
                test_samples: 100,
                ..Default::default()
            },
            Heterogeneity::Iid,
            &mut rng,
        );
        let template = fedcross_nn::models::cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (6, 12),
                fc_hidden: 32,
                kernel: 3,
            },
            &mut rng,
        );
        let init_params = template.params_flat();
        let init_eval = evaluate_params(template.as_ref(), &init_params, data.test_set(), 64);

        let mut algo = EngineFedAvg {
            global: ParamBlock::from(init_params.clone()),
        };
        let config = SimulationConfig {
            rounds: 12,
            clients_per_round: 4,
            eval_every: 3,
            eval_batch_size: 64,
            local: LocalTrainConfig {
                epochs: 3,
                batch_size: 10,
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            seed: 3,
        };
        let sim = Simulation::new(config, &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_eval.accuracy + 0.1
                && result.history.best_accuracy() > 0.2,
            "federated training should beat random init ({} vs {})",
            result.history.best_accuracy(),
            init_eval.accuracy
        );
    }

    #[test]
    fn observer_sees_every_evaluation() {
        let (data, template) = tiny_setup(3);
        let mut algo = EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        };
        let config = SimulationConfig {
            rounds: 4,
            clients_per_round: 2,
            eval_every: 2,
            eval_batch_size: 32,
            local: LocalTrainConfig::fast(),
            seed: 4,
        };
        let sim = Simulation::new(config, &data, template);
        let mut seen = Vec::new();
        let _ = sim.run_with_observer(&mut algo, |round, record| {
            assert_eq!(round, record.round);
            seen.push(round);
        });
        assert_eq!(seen, vec![0, 2, 3]);
    }

    #[test]
    fn select_clients_respects_k_and_uniqueness() {
        let (data, template) = tiny_setup(4);
        let mut comm = CommTracker::new();
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            LocalTrainConfig::fast(),
            4,
            SeededRng::new(5),
            &mut comm,
        );
        let picked = ctx.select_clients();
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(picked.iter().all(|&c| c < ctx.num_clients()));
    }

    #[test]
    fn weighted_selection_prefers_heavy_clients() {
        let (data, template) = tiny_setup(5);
        let mut counts = vec![0usize; data.num_clients()];
        for trial in 0..40 {
            let mut comm = CommTracker::new();
            let mut ctx = RoundContext::new(
                &data,
                template.as_ref(),
                LocalTrainConfig::fast(),
                1,
                SeededRng::new(trial),
                &mut comm,
            );
            let mut weights = vec![0.01f32; data.num_clients()];
            weights[2] = 10.0;
            let picked = ctx.select_clients_weighted(&weights);
            counts[picked[0]] += 1;
        }
        assert!(counts[2] > 25, "client 2 picked only {} / 40 times", counts[2]);
    }

    #[test]
    fn train_jobs_record_extra_payload() {
        let (data, template) = tiny_setup(6);
        let mut comm = CommTracker::new();
        {
            let mut ctx = RoundContext::new(
                &data,
                template.as_ref(),
                LocalTrainConfig::fast(),
                2,
                SeededRng::new(7),
                &mut comm,
            );
            let params = template.params_flat();
            let jobs = vec![
                TrainJob {
                    client: 0,
                    params: params.clone().into(),
                    correction: None,
                    extra_download: 100,
                    extra_upload: 50,
                },
                TrainJob::plain(1, params),
            ];
            let updates = ctx.local_train_jobs(jobs);
            assert_eq!(updates.len(), 2);
        }
        assert_eq!(comm.extra_download, 100);
        assert_eq!(comm.extra_upload, 50);
        assert_eq!(comm.client_contacts, 2);
    }

    #[test]
    fn parallel_batch_matches_expected_client_ids() {
        let (data, template) = tiny_setup(7);
        let mut comm = CommTracker::new();
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            LocalTrainConfig::fast(),
            3,
            SeededRng::new(8),
            &mut comm,
        );
        let params = template.params_flat();
        let jobs: Vec<(usize, Vec<f32>)> = vec![(0, params.clone()), (3, params.clone()), (5, params)];
        let updates = ctx.local_train_batch(&jobs);
        let ids: Vec<usize> = updates.iter().map(|u| u.client).collect();
        assert_eq!(ids, vec![0, 3, 5]);
        assert!(updates.iter().all(|u| u.num_samples > 0));
    }

    #[test]
    fn dropout_discards_jobs_and_their_communication() {
        use crate::availability::AvailabilityModel;
        let (data, template) = tiny_setup(9);
        let mut comm = CommTracker::new();
        let updates_len;
        let dropped_len;
        {
            let mut ctx = RoundContext::new(
                &data,
                template.as_ref(),
                LocalTrainConfig::fast(),
                4,
                SeededRng::new(11),
                &mut comm,
            )
            .with_availability(AvailabilityModel::PeriodicStraggler { period: 2 }, 0);
            let params = template.params_flat();
            let jobs: Vec<(usize, Vec<f32>)> =
                (0..4).map(|client| (client, params.clone())).collect();
            let updates = ctx.local_train_batch(&jobs);
            updates_len = updates.len();
            dropped_len = ctx.dropped_clients().len();
            // Period-2 straggler in round 0 drops the even-numbered clients.
            assert_eq!(ctx.dropped_clients(), &[0, 2]);
            assert!(updates.iter().all(|u| u.client % 2 == 1));
        }
        assert_eq!(updates_len, 2);
        assert_eq!(dropped_len, 2);
        // Only the surviving clients were contacted.
        assert_eq!(comm.client_contacts, 2);
    }

    fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn split_segments_reproduce_the_uninterrupted_run_bitwise() {
        let (data, template) = tiny_setup(20);
        let config = SimulationConfig {
            rounds: 6,
            clients_per_round: 3,
            eval_every: 2,
            eval_batch_size: 32,
            local: LocalTrainConfig::fast(),
            seed: 21,
        };

        let mut whole = EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        };
        let sim = Simulation::new(config, &data, template.clone_model());
        let uninterrupted = sim.run(&mut whole);
        assert_eq!(uninterrupted.rounds_completed, 6);

        // Same trajectory, executed as [0, 3) + [3, 6) with the state handed
        // across the boundary through snapshot/restore.
        let mut first_half = EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        };
        let sim2 = Simulation::new(config, &data, template);
        let partial = sim2.run_segment(&mut first_half, 0, 3);
        assert_eq!(partial.rounds_completed, 3);
        // Evals at absolute rounds 0 and 2 only — no forced eval mid-run.
        let partial_rounds: Vec<usize> =
            partial.history.records().iter().map(|r| r.round).collect();
        assert_eq!(partial_rounds, vec![0, 2]);

        let mut second_half = EngineFedAvg {
            global: ParamBlock::from(vec![0.0; first_half.global.len()]),
        };
        second_half
            .restore_state(&first_half.snapshot_state().expect("snapshot supported"))
            .expect("state restores");
        let resumed = sim2.run_from(&mut second_half, 3, partial.history, partial.comm);

        assert!(bitwise_eq(&whole.global_params(), &second_half.global_params()));
        assert_eq!(resumed.history, uninterrupted.history);
        assert_eq!(resumed.comm, uninterrupted.comm);
        assert_eq!(resumed.rounds_completed, 6);
    }

    #[test]
    fn resume_validates_and_continues_a_checkpoint() {
        let (data, template) = tiny_setup(22);
        let config = SimulationConfig {
            rounds: 5,
            clients_per_round: 2,
            eval_every: 2,
            eval_batch_size: 32,
            local: LocalTrainConfig::fast(),
            seed: 23,
        };
        let sim = Simulation::new(config, &data, template.clone_model());

        let mut algo = EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        };
        let partial = sim.run_segment(&mut algo, 0, 2);
        let checkpoint = sim.checkpoint(&algo, &partial).expect("snapshot supported");
        assert_eq!(checkpoint.version, CHECKPOINT_VERSION);
        assert_eq!(checkpoint.rounds_completed, 2);
        assert_eq!(checkpoint.seed, 23);

        // A good resume runs the remaining rounds.
        let mut fresh = EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        };
        let resumed = sim.resume(&checkpoint, &mut fresh).expect("resume succeeds");
        assert_eq!(resumed.rounds_completed, 5);

        // Version mismatch fails loudly.
        let mut stale = checkpoint.clone();
        stale.version = 1;
        assert!(matches!(
            sim.resume(&stale, &mut fresh),
            Err(ResumeError::Version { found: 1, .. })
        ));

        // Algorithm-name mismatch fails loudly.
        let mut renamed = checkpoint.clone();
        renamed.algorithm = "someone-else".to_string();
        assert!(matches!(
            sim.resume(&renamed, &mut fresh),
            Err(ResumeError::AlgorithmMismatch { .. })
        ));

        // A different master seed is rejected (checked before the broader
        // fingerprint so the error names the actual culprit).
        let mut other_config = config;
        other_config.seed = 99;
        let other_sim = Simulation::new(other_config, &data, template.clone_model());
        assert!(matches!(
            other_sim.resume(&checkpoint, &mut fresh),
            Err(ResumeError::SeedMismatch { checkpoint: 23, resuming: 99 })
        ));

        // Any other configuration drift surfaces as a fingerprint mismatch.
        let mut tampered = checkpoint.clone();
        tampered.config_fingerprint = "fnv1a:0000000000000000".to_string();
        assert!(matches!(
            sim.resume(&tampered, &mut fresh),
            Err(ResumeError::ConfigMismatch { .. })
        ));

        // A fully finished checkpoint has nothing left to run.
        let full = sim.run(&mut EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        });
        let done = sim
            .checkpoint(
                &EngineFedAvg {
                    global: ParamBlock::from(template.params_flat()),
                },
                &full,
            )
            .expect("snapshot supported");
        assert!(matches!(
            sim.resume(&done, &mut fresh),
            Err(ResumeError::NothingToResume { .. })
        ));
    }

    #[test]
    fn default_resume_hooks_fail_loudly() {
        /// An algorithm that never opted in to the resume plane.
        struct NoRestore;
        impl FederatedAlgorithm for NoRestore {
            fn name(&self) -> String {
                "no-restore".to_string()
            }
            fn run_round(&mut self, _round: usize, _ctx: &mut RoundContext<'_>) -> RoundReport {
                RoundReport::default()
            }
            fn global_params(&self) -> Vec<f32> {
                vec![0.0]
            }
        }
        let mut algo = NoRestore;
        // Snapshotting refuses at checkpoint time — a checkpoint that cannot
        // be restored must not be writable in the first place...
        let err = algo.snapshot_state().expect_err("default snapshot must fail");
        assert!(err.to_string().contains("no-restore"));
        // ...and restoring refuses rather than silently losing state.
        let err = algo
            .restore_state(&AlgorithmState::single_model(ParamBlock::from(vec![0.0])))
            .expect_err("default restore must fail");
        assert!(err.to_string().contains("no-restore"));
    }

    #[test]
    fn simulation_with_dropout_still_completes_all_rounds() {
        use crate::availability::AvailabilityModel;
        let (data, template) = tiny_setup(10);
        let mut algo = EngineFedAvg {
            global: ParamBlock::from(template.params_flat()),
        };
        let config = SimulationConfig {
            rounds: 4,
            clients_per_round: 3,
            eval_every: 1,
            eval_batch_size: 32,
            local: LocalTrainConfig::fast(),
            seed: 12,
        };
        let sim = Simulation::new(config, &data, template)
            .with_availability(AvailabilityModel::RandomDropout { prob: 0.4 });
        let result = sim.run(&mut algo);
        assert_eq!(result.history.len(), 4);
        assert!(result.comm.client_contacts <= 12);
        assert!(algo.global_params().iter().all(|p| p.is_finite()));
    }
}
