//! ResNet-20 family (He et al. 2016), the second model of the paper's Table II.

use crate::layers::{BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Relu, ResidualBlock};
use crate::models::ImageShape;
use crate::{Model, Sequential};
use fedcross_tensor::SeededRng;

/// Configuration of the residual network.
#[derive(Debug, Clone, Copy)]
pub struct ResNetConfig {
    /// Channel width of the first stage (stages double it twice).
    pub base_width: usize,
    /// Number of residual blocks per stage (ResNet-20 uses 3).
    pub blocks_per_stage: usize,
}

impl Default for ResNetConfig {
    fn default() -> Self {
        Self {
            base_width: 8,
            blocks_per_stage: 1,
        }
    }
}

impl ResNetConfig {
    /// The genuine ResNet-20 configuration (16/32/64 channels, 3 blocks per
    /// stage).
    pub fn resnet20() -> Self {
        Self {
            base_width: 16,
            blocks_per_stage: 3,
        }
    }
}

/// Builds a CIFAR-style residual network:
/// `conv3x3 - bn - relu - stage1 - stage2(stride 2) - stage3(stride 2) - GAP - fc`.
pub fn resnet(
    input: ImageShape,
    classes: usize,
    config: ResNetConfig,
    rng: &mut SeededRng,
) -> Box<dyn Model> {
    let (c, _h, _w) = input;
    let w1 = config.base_width;
    let w2 = 2 * w1;
    let w3 = 4 * w1;

    let mut model = Sequential::new("resnet20")
        .push(Conv2d::new(c, w1, 3, 1, 1, rng))
        .push(BatchNorm2d::new(w1))
        .push(Relu::new());

    let stages = [(w1, w1, 1usize), (w1, w2, 2), (w2, w3, 2)];
    for &(in_c, out_c, stride) in &stages {
        for b in 0..config.blocks_per_stage {
            let (bi, bs) = if b == 0 { (in_c, stride) } else { (out_c, 1) };
            model = model.push(ResidualBlock::new(bi, out_c, bs, rng));
        }
    }

    model
        .push(GlobalAvgPool2d::new())
        .push(Linear::new(w3, classes, rng))
        .boxed()
}

/// The genuine ResNet-20 (16/32/64 channels, 3 blocks per stage).
pub fn resnet20(input: ImageShape, classes: usize, rng: &mut SeededRng) -> Box<dyn Model> {
    resnet(input, classes, ResNetConfig::resnet20(), rng)
}

/// A CPU-scaled ResNet-20 variant (8/16/32 channels, 1 block per stage) that
/// keeps the architecture family — residual blocks, batch norm, projection
/// shortcuts, global average pooling — at simulation-friendly cost.
pub fn resnet20_lite(input: ImageShape, classes: usize, rng: &mut SeededRng) -> Box<dyn Model> {
    resnet(input, classes, ResNetConfig::default(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Sgd;
    use fedcross_tensor::{init, Tensor};

    #[test]
    fn lite_forward_shape() {
        let mut rng = SeededRng::new(0);
        let mut model = resnet20_lite((3, 16, 16), 10, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = model.forward(&x, false);
        assert_eq!(y.dims(), &[2, 10]);
        assert_eq!(model.arch_name(), "resnet20");
    }

    #[test]
    fn full_resnet20_has_expected_depth_and_size() {
        let mut rng = SeededRng::new(1);
        let lite = resnet20_lite((3, 16, 16), 10, &mut rng);
        let full = resnet20((3, 16, 16), 10, &mut rng);
        assert!(full.param_count() > lite.param_count() * 4);
    }

    #[test]
    fn backward_produces_finite_gradients() {
        let mut rng = SeededRng::new(2);
        let mut model = resnet20_lite((3, 8, 8), 4, &mut rng);
        let x = init::normal(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        model.zero_grads();
        let logits = model.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        model.backward(&grad);
        let grads = model.grads_flat();
        assert_eq!(grads.len(), model.param_count());
        assert!(grads.iter().all(|g| g.is_finite()));
        assert!(grads.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn resnet_can_fit_a_tiny_batch() {
        let mut rng = SeededRng::new(3);
        let mut model = resnet(
            (1, 8, 8),
            2,
            ResNetConfig {
                base_width: 4,
                blocks_per_stage: 1,
            },
            &mut rng,
        );
        let mut x = Tensor::zeros(&[6, 1, 8, 8]);
        let mut labels = Vec::new();
        for s in 0..6 {
            let label = s % 2;
            labels.push(label);
            for yy in 0..8 {
                for xx in 0..8 {
                    let bright = if label == 0 { xx < 4 } else { xx >= 4 };
                    x.set(&[s, 0, yy, xx], if bright { 1.0 } else { -1.0 });
                }
            }
        }
        let mut sgd = Sgd::new(0.05, 0.9, 0.0);
        let mut last_loss = f32::INFINITY;
        for _ in 0..50 {
            model.zero_grads();
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            sgd.step(model.as_mut());
            last_loss = loss;
        }
        assert!(last_loss < 0.3, "ResNet failed to fit toy data, loss {last_loss}");
    }
}
