//! Command-line front end for the determinism + allocation-discipline linter.
//!
//! ```text
//! fedcross-lint [--deny-all] [--deny-waivers] [--json] [--annotations]
//!               [--reach NAME] [--root PATH] [--quiet]
//! ```
//!
//! Walks `<root>/crates/*/src`, prints every finding (waived ones are
//! labelled, not hidden) and a per-rule summary. Exit status is 0 unless
//! `--deny-all` is given and un-waived violations remain, or
//! `--deny-waivers` is given and waiver counts exceed the checked-in budget
//! (`lint-waivers.budget` at the workspace root) — those are the CI gates.
//!
//! * `--json` emits the report as a single JSON object on stdout
//!   (machine-readable; suppresses the text listing).
//! * `--annotations` emits GitHub Actions `::error` workflow commands so CI
//!   findings surface as inline PR annotations.
//! * `--reach NAME` prints the hot-path call chain the A001 reachability
//!   analysis found for every function named `NAME` (diagnostic for "why is
//!   this flagged?").

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fedcross_lint::callgraph::CallGraph;
use fedcross_lint::{lint_files, read_tree, Report, RuleId};

/// Name of the per-rule waiver budget file at the workspace root.
const BUDGET_FILE: &str = "lint-waivers.budget";

fn usage() -> ! {
    eprintln!(
        "usage: fedcross-lint [--deny-all] [--deny-waivers] [--json] [--annotations] [--reach NAME] [--root PATH] [--quiet]"
    );
    std::process::exit(2);
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn print_json(report: &Report) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str("  \"waiver_counts\": {");
    let counts = report.waiver_counts();
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_str(rule.code()), n));
    }
    out.push_str("},\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"waived\": {}, \"waiver\": {}}}{}\n",
            json_str(f.rule.code()),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            f.waiver.is_some(),
            f.waiver.as_deref().map_or("null".to_string(), json_str),
            if i + 1 < report.findings.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}");
    println!("{out}");
}

/// GitHub Actions workflow commands: one `::error` per un-waived violation,
/// `::notice` per waived finding.
fn print_annotations(report: &Report) {
    for f in &report.findings {
        let level = if f.waiver.is_some() { "notice" } else { "error" };
        // Newlines in workflow-command messages must be %0A-encoded.
        let msg = f.message.replace('%', "%25").replace('\n', "%0A");
        println!(
            "::{level} file={},line={},title={} {}::{}",
            f.file,
            f.line,
            f.rule.code(),
            f.rule.summary(),
            msg
        );
    }
}

/// Parses `lint-waivers.budget`: `RULE COUNT` lines, `#` comments. A rule
/// absent from the file has budget 0.
fn read_budget(root: &Path) -> Result<Vec<(RuleId, usize)>, String> {
    let path = root.join(BUDGET_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut budget = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(code), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("{}:{}: expected `RULE COUNT`", path.display(), lineno + 1));
        };
        let Some(rule) = RuleId::parse(code) else {
            return Err(format!("{}:{}: unknown rule `{code}`", path.display(), lineno + 1));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{}:{}: bad count `{count}`", path.display(), lineno + 1))?;
        budget.push((rule, count));
    }
    Ok(budget)
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut deny_waivers = false;
    let mut json = false;
    let mut annotations = false;
    let mut quiet = false;
    let mut reach: Option<String> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--deny-waivers" => deny_waivers = true,
            "--json" => json = true,
            "--annotations" => annotations = true,
            "--quiet" => quiet = true,
            "--reach" => match args.next() {
                Some(name) => reach = Some(name),
                None => usage(),
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => usage(),
            },
            "--help" | "-h" => {
                println!(
                    "fedcross-lint: static determinism + allocation-discipline checker"
                );
                println!();
                println!(
                    "usage: fedcross-lint [--deny-all] [--deny-waivers] [--json] [--annotations] [--reach NAME] [--root PATH] [--quiet]"
                );
                println!();
                for rule in RuleId::ALL {
                    println!("  {}  {}", rule.code(), rule.summary());
                }
                println!();
                println!("Waiver syntax:  // lint: allow(D00x) — reason");
                println!("Marker syntax:  // alloc: pooled|cold|bounded — reason");
                println!("                // panic: reason");
                println!("See docs/LINTS.md for the full catalogue.");
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }

    // Resolve a usable root: accept either the workspace root or a CWD
    // somewhere inside it (walk up until a `crates/` directory appears).
    let mut probe = root.clone();
    let root = loop {
        if probe.join("crates").is_dir() {
            break probe;
        }
        match probe.parent() {
            Some(p) => probe = p.to_path_buf(),
            None => {
                eprintln!(
                    "fedcross-lint: no crates/ directory at or above {}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        }
    };

    let files = match read_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fedcross-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(name) = reach {
        // Diagnostic mode: explain the reachability analysis for one name.
        let indexed = CallGraph::index_files(&files);
        let graph = CallGraph::build(&indexed);
        let nodes = graph.nodes_named(&name);
        if nodes.is_empty() {
            println!("fedcross-lint: no function named `{name}` in the workspace");
            return ExitCode::SUCCESS;
        }
        for &node in nodes {
            let label = graph.label(&indexed, node);
            match (graph.root_kind[node], graph.reachable[node]) {
                (Some(kind), _) => println!("{label}: hot-path root ({kind})"),
                (None, true) => {
                    println!("{label}: reachable via {}", graph.chain_label(&indexed, node));
                }
                (None, false) => println!("{label}: not reachable from any hot-path root"),
            }
        }
        return ExitCode::SUCCESS;
    }

    let report = lint_files(&files);
    let violations = report.violations();
    let waived = report.waived();
    if json {
        print_json(&report);
    } else if !quiet {
        for f in &report.findings {
            println!("{f}");
        }
        let per_rule: Vec<String> = report
            .waiver_counts()
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(rule, n)| format!("{} {n}", rule.code()))
            .collect();
        println!(
            "fedcross-lint: {} files scanned, {} violation(s), {} waived{}",
            report.files_scanned,
            violations.len(),
            waived.len(),
            if per_rule.is_empty() {
                String::new()
            } else {
                format!(" ({})", per_rule.join(", "))
            }
        );
    }
    if annotations {
        print_annotations(&report);
    }

    let mut failed = false;
    if deny_all && !violations.is_empty() {
        eprintln!(
            "fedcross-lint: --deny-all: {} un-waived violation(s)",
            violations.len()
        );
        failed = true;
    }
    if deny_waivers {
        match read_budget(&root) {
            Ok(budget) => {
                for (rule, count) in report.waiver_counts() {
                    let allowed = budget
                        .iter()
                        .find(|(r, _)| *r == rule)
                        .map_or(0, |&(_, n)| n);
                    if count > allowed {
                        eprintln!(
                            "fedcross-lint: --deny-waivers: {} has {count} waiver(s), budget allows {allowed} (see {BUDGET_FILE})",
                            rule.code()
                        );
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("fedcross-lint: --deny-waivers: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
