//! LSTM text classifiers for the Shakespeare and Sent140 tasks.

use crate::layers::{Embedding, Linear, Lstm};
use crate::{Model, Sequential};
use fedcross_tensor::SeededRng;

/// Configuration of the LSTM classifier.
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    /// Vocabulary size (characters for Shakespeare, words for Sent140).
    pub vocab: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// LSTM hidden dimension.
    pub hidden_dim: usize,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            vocab: 64,
            embed_dim: 16,
            hidden_dim: 32,
        }
    }
}

/// Builds the LSTM classifier: `embedding → LSTM → linear`.
///
/// The input is a `[batch, seq_len]` tensor of token ids; the output is a
/// `[batch, classes]` logit matrix computed from the LSTM's final hidden
/// state — the same head used by the LEAF reference models for Shakespeare
/// (next-character prediction, `classes == vocab`) and Sent140 (binary
/// sentiment, `classes == 2`).
pub fn lstm_classifier(
    config: LstmConfig,
    classes: usize,
    rng: &mut SeededRng,
) -> Box<dyn Model> {
    Sequential::new("lstm")
        .push(Embedding::new(config.vocab, config.embed_dim, rng))
        .push(Lstm::new(config.embed_dim, config.hidden_dim, rng))
        .push(Linear::new(config.hidden_dim, classes, rng))
        .boxed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Sgd;
    use fedcross_tensor::Tensor;

    #[test]
    fn forward_shape_matches_class_count() {
        let mut rng = SeededRng::new(0);
        let mut model = lstm_classifier(LstmConfig::default(), 5, &mut rng);
        let ids = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = model.forward(&ids, true);
        assert_eq!(y.dims(), &[2, 5]);
        assert_eq!(model.arch_name(), "lstm");
    }

    #[test]
    fn lstm_learns_first_token_rule() {
        // Classify sequences by their first token — requires information to
        // survive the whole recurrence.
        let mut rng = SeededRng::new(1);
        let config = LstmConfig {
            vocab: 8,
            embed_dim: 8,
            hidden_dim: 16,
        };
        let mut model = lstm_classifier(config, 2, &mut rng);
        let mut sgd = Sgd::new(0.2, 0.9, 0.0);

        let make_batch = |rng: &mut SeededRng| {
            let batch = 16;
            let steps = 5;
            let mut data = Vec::with_capacity(batch * steps);
            let mut labels = Vec::with_capacity(batch);
            for _ in 0..batch {
                let label = rng.below(2);
                labels.push(label);
                // First token encodes the class; the rest is noise.
                data.push(if label == 0 { 1.0 } else { 2.0 });
                for _ in 1..steps {
                    data.push(3.0 + rng.below(5) as f32);
                }
            }
            (Tensor::from_vec(data, &[batch, steps]), labels)
        };

        let mut last_acc = 0.0;
        for _ in 0..80 {
            let (x, labels) = make_batch(&mut rng);
            model.zero_grads();
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            sgd.step(model.as_mut());
            last_acc = crate::loss::accuracy(&logits, &labels);
        }
        assert!(last_acc > 0.85, "LSTM failed to learn the rule, acc {last_acc}");
    }

    #[test]
    fn param_count_sums_components() {
        let mut rng = SeededRng::new(2);
        let config = LstmConfig {
            vocab: 10,
            embed_dim: 4,
            hidden_dim: 6,
        };
        let model = lstm_classifier(config, 3, &mut rng);
        let expected = 10 * 4 + (4 * 24 + 6 * 24 + 24) + (6 * 3 + 3);
        assert_eq!(model.param_count(), expected);
    }
}
