//! Differentially-private federated training: run DP-FedAvg and DP-FedCross
//! on the same skewed federation and watch the privacy budget accumulate.
//!
//! The paper's Section IV-F1 claims FedCross composes with FedAvg-style
//! privacy mechanisms because the client-side pipeline is unchanged; this
//! example exercises exactly that composition, printing the accuracy and the
//! (ε, δ = 1e-5) guarantee after every few rounds.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin dp_federated_training
//! ```

use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{FederatedAlgorithm, LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_privacy::algorithms::{DpFedAvg, DpFedCross, DpFedCrossConfig};
use fedcross_privacy::mechanism::{DpConfig, NoisePlacement};
use fedcross_tensor::SeededRng;

const DELTA: f64 = 1e-5;

fn main() {
    // A 20-client federation with strong label skew (Dirichlet beta = 0.3).
    let mut rng = SeededRng::new(21);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 20,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.3),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );
    println!(
        "federation: {} clients, model: {} parameters",
        data.num_clients(),
        template.param_count()
    );

    // Clip every client delta to L2 norm 5 and add central Gaussian noise with
    // multiplier 0.1 — a mild setting that should cost little accuracy.
    let dp = DpConfig {
        clip_norm: 5.0,
        noise_multiplier: 0.1,
        placement: NoisePlacement::Central,
    };
    println!(
        "privacy mechanism: clip C={}, noise multiplier z={}, {} placement\n",
        dp.clip_norm, dp.noise_multiplier, dp.placement
    );

    let sim_config = SimulationConfig {
        rounds: 24,
        clients_per_round: 4,
        eval_every: 4,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 5,
    };

    // DP-FedAvg.
    let mut dp_fedavg = DpFedAvg::new(template.params_flat(), dp, 101);
    let result = Simulation::new(sim_config, &data, template.clone_model())
        .run_with_observer(&mut dp_fedavg, |round, record| {
            println!(
                "  [DP-FedAvg  ] round {:>3}: accuracy {:>5.1}%",
                round,
                record.accuracy * 100.0
            );
        });
    println!(
        "DP-FedAvg   : best accuracy {:.1}%, spent epsilon = {:.2} at delta = {DELTA}\n",
        result.best_accuracy_pct(),
        dp_fedavg.epsilon(DELTA).unwrap_or(f64::INFINITY)
    );

    // DP-FedCross with the same mechanism on every middleware upload.
    let mut dp_fedcross = DpFedCross::new(
        DpFedCrossConfig {
            alpha: 0.9,
            dp,
            ..Default::default()
        },
        template.params_flat(),
        sim_config.clients_per_round,
        103,
    );
    let result = Simulation::new(sim_config, &data, template.clone_model())
        .run_with_observer(&mut dp_fedcross, |round, record| {
            println!(
                "  [DP-FedCross] round {:>3}: accuracy {:>5.1}%",
                round,
                record.accuracy * 100.0
            );
        });
    println!(
        "DP-FedCross : best accuracy {:.1}%, spent epsilon = {:.2} at delta = {DELTA}",
        result.best_accuracy_pct(),
        dp_fedcross.epsilon(DELTA).unwrap_or(f64::INFINITY)
    );
    println!("(name of the second algorithm: {})", dp_fedcross.name());
    println!("\nExpected: both methods learn under the mild mechanism and report the same");
    println!("epsilon, because they share the clipping/noising schedule and sampling rate.");
}
