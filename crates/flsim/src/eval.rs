//! Centralised model evaluation on the global test set.

use fedcross_data::{Batch, Dataset};
use fedcross_nn::loss::{accuracy, softmax_cross_entropy, softmax_cross_entropy_into};
use fedcross_nn::Model;
use fedcross_tensor::TensorPool;

/// Result of evaluating a model on a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Top-1 classification accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Number of evaluated samples.
    pub samples: usize,
}

impl Evaluation {
    /// Accuracy as a percentage, the unit the paper's tables use.
    pub fn accuracy_pct(&self) -> f32 {
        self.accuracy * 100.0
    }
}

/// Evaluates `model` (in inference mode) on `data` in mini-batches.
///
/// The model is used mutably only because forward passes cache activations;
/// parameters are not modified.
pub fn evaluate(model: &mut dyn Model, data: &Dataset, batch_size: usize) -> Evaluation {
    if data.is_empty() {
        return Evaluation {
            accuracy: 0.0,
            loss: 0.0,
            samples: 0,
        };
    }
    let mut weighted_acc = 0f64;
    let mut weighted_loss = 0f64;
    let mut samples = 0usize;
    for batch in data.minibatches(batch_size, None) {
        let logits = model.forward(&batch.features, false);
        let (loss, _) = softmax_cross_entropy(&logits, &batch.labels);
        let acc = accuracy(&logits, &batch.labels);
        weighted_acc += acc as f64 * batch.len() as f64;
        weighted_loss += loss as f64 * batch.len() as f64;
        samples += batch.len();
    }
    Evaluation {
        accuracy: (weighted_acc / samples as f64) as f32,
        loss: (weighted_loss / samples as f64) as f32,
        samples,
    }
}

/// Evaluates a flat parameter vector by loading it into a clone of
/// `template`. This is how one-shot callers (fairness sweeps, tests)
/// evaluate a model without disturbing any client state; the simulation's
/// round loop instead reuses an [`EvalWorker`] so the per-evaluation clone
/// disappears. Results are bitwise identical either way.
pub fn evaluate_params(
    template: &dyn Model,
    params: &[f32],
    data: &Dataset,
    batch_size: usize,
) -> Evaluation {
    EvalWorker::new(template).evaluate_params(params, data, batch_size)
}

/// A persistent evaluation worker: one cached model instance plus the scratch
/// arena and gather buffers every evaluation reuses.
///
/// [`evaluate_params`] clones the template and materialises every mini-batch
/// on each call; an `EvalWorker` pays that cost once and then evaluates with
/// zero model constructions and zero full-activation allocations — the
/// evaluation half of the persistent round plane. Produces bit-for-bit the
/// numbers [`evaluate`] produces (the pooled forward/loss forms are pinned
/// bitwise-identical to the allocating ones).
pub struct EvalWorker {
    model: Box<dyn Model>,
    pool: TensorPool,
    order: Vec<usize>,
    batch: Batch,
}

impl EvalWorker {
    /// Creates a worker for the given architecture (clones the template
    /// once).
    pub fn new(template: &dyn Model) -> Self {
        Self {
            model: template.clone_model(),
            pool: TensorPool::new(),
            order: Vec::new(),
            batch: Batch::reusable(),
        }
    }

    /// Loads `params` into the cached model without evaluating — useful when
    /// the same parameters are then evaluated against several datasets (e.g.
    /// a per-client fairness sweep).
    pub fn load_params(&mut self, params: &[f32]) {
        self.model.set_params_flat(params);
    }

    /// Loads `params` into the cached model and evaluates it on `data`.
    ///
    /// Evaluation runs in inference mode, so no stochastic layer state is
    /// consumed and no reseeding is needed between calls.
    pub fn evaluate_params(
        &mut self,
        params: &[f32],
        data: &Dataset,
        batch_size: usize,
    ) -> Evaluation {
        self.model.set_params_flat(params);
        self.evaluate_current(data, batch_size)
    }

    /// Fresh-buffer count of the worker's scratch arena; stops growing once
    /// every batch shape has been evaluated once (the warm-up evaluation).
    pub fn arena_fresh_allocations(&self) -> usize {
        self.pool.fresh_allocations()
    }

    /// Evaluates whatever parameters the cached model currently holds.
    pub fn evaluate_current(&mut self, data: &Dataset, batch_size: usize) -> Evaluation {
        assert!(batch_size > 0, "batch size must be positive");
        if data.is_empty() {
            return Evaluation {
                accuracy: 0.0,
                loss: 0.0,
                samples: 0,
            };
        }
        let mut weighted_acc = 0f64;
        let mut weighted_loss = 0f64;
        let mut samples = 0usize;
        // Deterministic order + reused gather buffers reproduce exactly the
        // batches `Dataset::minibatches(batch_size, None)` would build.
        data.epoch_order(None, &mut self.order);
        for chunk in self.order.chunks(batch_size) {
            data.gather_batch(chunk, &mut self.batch);
            let logits = self
                .model
                .forward_into(&self.batch.features, false, &mut self.pool);
            let (loss, grad) =
                softmax_cross_entropy_into(&logits, &self.batch.labels, &mut self.pool);
            self.pool.recycle(grad);
            let acc = accuracy(&logits, &self.batch.labels);
            self.pool.recycle(logits);
            weighted_acc += acc as f64 * chunk.len() as f64;
            weighted_loss += loss as f64 * chunk.len() as f64;
            samples += chunk.len();
        }
        Evaluation {
            accuracy: (weighted_acc / samples as f64) as f32,
            loss: (weighted_loss / samples as f64) as f32,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_data::Dataset;
    use fedcross_nn::models::mlp;
    use fedcross_tensor::{SeededRng, Tensor};

    fn separable_dataset(n: usize) -> Dataset {
        // Class 0 clusters around (+1, 0.5, -0.2, 1.2), class 1 around
        // (-0.4, -1.0, 0.8, -0.6) — separable but not antisymmetric.
        const CENTERS: [[f32; 4]; 2] = [[1.0, 0.5, -0.2, 1.2], [-0.4, -1.0, 0.8, -0.6]];
        let mut features = Vec::with_capacity(n * 4);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            labels.push(label);
            let jitter = 0.05 * ((i / 2) % 5) as f32;
            for &center in &CENTERS[label] {
                features.push(center + jitter);
            }
        }
        Dataset::new(Tensor::from_vec(features, &[n, 4]), labels, 2)
    }

    #[test]
    fn evaluation_of_empty_dataset_is_zero() {
        let mut rng = SeededRng::new(0);
        let mut model = mlp(4, &[8], 2, &mut rng);
        let empty = Dataset::empty(&[4], 2);
        let eval = evaluate(model.as_mut(), &empty, 16);
        assert_eq!(eval.samples, 0);
        assert_eq!(eval.accuracy, 0.0);
    }

    #[test]
    fn random_model_has_high_loss_on_balanced_data() {
        let mut rng = SeededRng::new(1);
        let mut model = mlp(4, &[8], 2, &mut rng);
        let data = separable_dataset(200);
        let eval = evaluate(model.as_mut(), &data, 32);
        assert_eq!(eval.samples, 200);
        assert!((0.0..=1.0).contains(&eval.accuracy));
        // A randomly initialised model cannot have confident correct predictions,
        // so its loss stays well above a trained model's.
        assert!(eval.loss > 0.2, "loss {}", eval.loss);
    }

    #[test]
    fn trained_model_scores_high_accuracy() {
        use fedcross_nn::loss::softmax_cross_entropy;
        use fedcross_nn::optim::Sgd;
        let mut rng = SeededRng::new(2);
        let mut model = mlp(4, &[16], 2, &mut rng);
        let data = separable_dataset(64);
        let mut sgd = Sgd::new(0.3, 0.9, 0.0);
        for _ in 0..100 {
            for batch in data.minibatches(16, Some(&mut rng)) {
                model.zero_grads();
                let logits = model.forward(&batch.features, true);
                let (_, grad) = softmax_cross_entropy(&logits, &batch.labels);
                model.backward(&grad);
                sgd.step(model.as_mut());
            }
        }
        let eval = evaluate(model.as_mut(), &data, 16);
        assert!(eval.accuracy > 0.95, "accuracy {}", eval.accuracy);
        assert!(eval.accuracy_pct() > 95.0);
    }

    #[test]
    fn evaluate_params_loads_the_given_vector() {
        let mut rng = SeededRng::new(3);
        let template = mlp(4, &[8], 2, &mut rng);
        let data = separable_dataset(50);
        // Evaluating the template's own params must match direct evaluation.
        let direct = evaluate(template.clone_model().as_mut(), &data, 16);
        let via_params = evaluate_params(template.as_ref(), &template.params_flat(), &data, 16);
        assert!((direct.accuracy - via_params.accuracy).abs() < 1e-6);
        assert!((direct.loss - via_params.loss).abs() < 1e-6);
    }

    #[test]
    fn batch_size_does_not_change_the_result() {
        let mut rng = SeededRng::new(4);
        let template = mlp(4, &[8], 2, &mut rng);
        let data = separable_dataset(60);
        let a = evaluate_params(template.as_ref(), &template.params_flat(), &data, 7);
        let b = evaluate_params(template.as_ref(), &template.params_flat(), &data, 60);
        assert!((a.accuracy - b.accuracy).abs() < 1e-6);
        assert!((a.loss - b.loss).abs() < 1e-5);
    }
}
