//! Client partitioning: IID and Dirichlet label-skew splits.
//!
//! The paper controls heterogeneity on CIFAR-10/100 with a Dirichlet prior
//! `Dir(β)` over per-client class proportions (Section IV-A1, Figure 3):
//! smaller β ⇒ more skewed clients. [`dirichlet_partition`] reproduces that
//! construction; [`class_count_matrix`] regenerates the Figure 3 dot plots.

use fedcross_tensor::SeededRng;

/// How client data heterogeneity is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Heterogeneity {
    /// Independent and identically distributed: samples are shuffled and dealt
    /// evenly to clients.
    Iid,
    /// Label-skewed split driven by a symmetric Dirichlet prior with the given
    /// concentration β (the paper uses 0.1, 0.5 and 1.0).
    Dirichlet(f32),
}

impl Heterogeneity {
    /// A short label used in experiment tables ("IID" or "beta=0.1").
    pub fn label(&self) -> String {
        match self {
            // alloc: cold — reporting label, not on the round path
            Heterogeneity::Iid => "IID".to_string(),
            // alloc: cold — reporting label, not on the round path
            Heterogeneity::Dirichlet(beta) => format!("beta={beta}"),
        }
    }
}

/// Splits `n_samples` indices into `n_clients` IID shards of (near-)equal
/// size.
///
/// # Panics
/// Panics if `n_clients` is zero.
pub fn iid_partition(
    n_samples: usize,
    n_clients: usize,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    let mut order: Vec<usize> = (0..n_samples).collect();
    rng.shuffle(&mut order);
    let mut shards = vec![Vec::new(); n_clients];
    for (i, idx) in order.into_iter().enumerate() {
        shards[i % n_clients].push(idx);
    }
    shards
}

/// Splits samples into label-skewed shards using a Dirichlet prior.
///
/// For each class, the class's sample indices are distributed across clients
/// according to proportions drawn from `Dir(β)` (Hsu et al. 2019). Every
/// sample is assigned to exactly one client; clients can end up with very few
/// samples when β is small, exactly as in the paper's Figure 3(a).
///
/// # Panics
/// Panics if `n_clients == 0`, `beta <= 0`, or a label is `>= num_classes`.
pub fn dirichlet_partition(
    labels: &[usize],
    num_classes: usize,
    n_clients: usize,
    beta: f32,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    assert!(n_clients > 0, "need at least one client");
    assert!(beta > 0.0, "beta must be positive");
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < num_classes, "label {l} out of range");
        by_class[l].push(i);
    }

    let mut shards = vec![Vec::new(); n_clients];
    for class_indices in by_class.iter_mut() {
        if class_indices.is_empty() {
            continue;
        }
        rng.shuffle(class_indices);
        let proportions = rng.dirichlet(n_clients, beta);
        // Convert proportions into cumulative cut points over the class's samples.
        let n = class_indices.len();
        let mut cut_points = Vec::with_capacity(n_clients);
        let mut acc = 0f32;
        for &p in &proportions {
            acc += p;
            cut_points.push(((acc * n as f32).round() as usize).min(n));
        }
        // Ensure the last cut covers every sample despite rounding.
        if let Some(last) = cut_points.last_mut() {
            *last = n;
        }
        let mut start = 0usize;
        for (client, &end) in cut_points.iter().enumerate() {
            let end = end.max(start);
            shards[client].extend_from_slice(&class_indices[start..end]);
            start = end;
        }
    }
    shards
}

/// Applies a [`Heterogeneity`] setting to produce client shards.
pub fn partition(
    labels: &[usize],
    num_classes: usize,
    n_clients: usize,
    heterogeneity: Heterogeneity,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    match heterogeneity {
        Heterogeneity::Iid => iid_partition(labels.len(), n_clients, rng),
        Heterogeneity::Dirichlet(beta) => {
            dirichlet_partition(labels, num_classes, n_clients, beta, rng)
        }
    }
}

/// Per-client class-count matrix: `counts[client][class]` = number of samples
/// of `class` held by `client`. This is the data behind the paper's Figure 3
/// dot plots.
pub fn class_count_matrix(
    labels: &[usize],
    shards: &[Vec<usize>],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    shards
        .iter()
        .map(|shard| {
            let mut counts = vec![0usize; num_classes];
            for &idx in shard {
                counts[labels[idx]] += 1;
            }
            counts
        })
        .collect()
}

/// A scalar summary of label skew: the mean (over clients) of the fraction of
/// a client's samples belonging to its single most common class. 1/num_classes
/// for perfectly balanced clients, → 1.0 as clients become single-class.
pub fn skew_score(counts: &[Vec<usize>]) -> f32 {
    let mut total = 0f32;
    let mut clients = 0usize;
    for client in counts {
        let n: usize = client.iter().sum();
        if n == 0 {
            continue;
        }
        let max = *client.iter().max().unwrap_or(&0);
        total += max as f32 / n as f32;
        clients += 1;
    }
    if clients == 0 {
        0.0
    } else {
        total / clients as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced_labels(per_class: usize, classes: usize) -> Vec<usize> {
        (0..per_class * classes).map(|i| i % classes).collect()
    }

    #[test]
    fn iid_partition_covers_every_sample_once() {
        let mut rng = SeededRng::new(0);
        let shards = iid_partition(103, 10, &mut rng);
        assert_eq!(shards.len(), 10);
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Balanced within one sample.
        let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn dirichlet_partition_covers_every_sample_once() {
        let mut rng = SeededRng::new(1);
        let labels = balanced_labels(50, 10);
        let shards = dirichlet_partition(&labels, 10, 20, 0.5, &mut rng);
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn small_beta_is_more_skewed_than_large_beta() {
        let mut rng = SeededRng::new(2);
        let labels = balanced_labels(100, 10);
        let sharp = dirichlet_partition(&labels, 10, 20, 0.1, &mut rng);
        let mild = dirichlet_partition(&labels, 10, 20, 10.0, &mut rng);
        let sharp_skew = skew_score(&class_count_matrix(&labels, &sharp, 10));
        let mild_skew = skew_score(&class_count_matrix(&labels, &mild, 10));
        assert!(
            sharp_skew > mild_skew + 0.1,
            "Dir(0.1) skew {sharp_skew} should exceed Dir(10) skew {mild_skew}"
        );
    }

    #[test]
    fn iid_partition_is_close_to_uniform_class_mix() {
        let mut rng = SeededRng::new(3);
        let labels = balanced_labels(100, 10);
        let shards = iid_partition(labels.len(), 10, &mut rng);
        let counts = class_count_matrix(&labels, &shards, 10);
        let skew = skew_score(&counts);
        assert!(skew < 0.2, "IID skew {skew} should be near 0.1");
    }

    #[test]
    fn heterogeneity_labels() {
        assert_eq!(Heterogeneity::Iid.label(), "IID");
        assert_eq!(Heterogeneity::Dirichlet(0.5).label(), "beta=0.5");
    }

    #[test]
    fn partition_dispatches_on_heterogeneity() {
        let mut rng = SeededRng::new(4);
        let labels = balanced_labels(20, 4);
        let iid = partition(&labels, 4, 5, Heterogeneity::Iid, &mut rng);
        let dir = partition(&labels, 4, 5, Heterogeneity::Dirichlet(0.1), &mut rng);
        assert_eq!(iid.iter().map(Vec::len).sum::<usize>(), 80);
        assert_eq!(dir.iter().map(Vec::len).sum::<usize>(), 80);
    }

    #[test]
    fn class_count_matrix_shape_and_totals() {
        let mut rng = SeededRng::new(5);
        let labels = balanced_labels(10, 5);
        let shards = iid_partition(labels.len(), 4, &mut rng);
        let counts = class_count_matrix(&labels, &shards, 5);
        assert_eq!(counts.len(), 4);
        assert!(counts.iter().all(|c| c.len() == 5));
        let total: usize = counts.iter().flatten().sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn skew_score_of_single_class_clients_is_one() {
        let counts = vec![vec![10, 0], vec![0, 7]];
        assert!((skew_score(&counts) - 1.0).abs() < 1e-6);
        assert_eq!(skew_score(&[]), 0.0);
    }

    #[test]
    fn dirichlet_partition_is_deterministic_for_a_seed() {
        let labels = balanced_labels(30, 5);
        let a = dirichlet_partition(&labels, 5, 7, 0.3, &mut SeededRng::new(9));
        let b = dirichlet_partition(&labels, 5, 7, 0.3, &mut SeededRng::new(9));
        assert_eq!(a, b);
    }
}
