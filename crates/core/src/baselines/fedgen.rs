//! FedGen (Zhu et al. 2021), simplified: data-free knowledge distillation
//! with a server-side generator.
//!
//! The original FedGen trains a lightweight generator on the server from the
//! clients' label statistics and ships it to clients, which use generated
//! feature samples to regularise local training towards the global ensemble.
//! Re-implementing the exact feature-space generator requires hooks into each
//! model's penultimate layer, which the flat-parameter [`fedcross_nn::Model`]
//! interface deliberately does not expose; this reproduction therefore keeps
//! FedGen's two *behavioural* ingredients (documented in DESIGN.md):
//!
//! 1. an ensemble-knowledge regulariser: every client's gradients are pulled
//!    towards the previous round's ensemble model (the distillation target
//!    that FedGen's generated samples would otherwise provide), and
//! 2. the extra generator payload dispatched to every client each round,
//!    sized as a configurable fraction of the model, which reproduces the
//!    paper's "Medium" communication-overhead classification in Table I.

use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::engine::{
    canonicalize_updates, FederatedAlgorithm, RoundContext, RoundReport, TrainJob,
};
use fedcross_nn::params::{weighted_average_into, ParamBlock};

/// Configuration of the simplified FedGen baseline.
#[derive(Debug, Clone, Copy)]
pub struct FedGenConfig {
    /// Strength of the distillation pull towards the previous ensemble.
    pub distill_weight: f32,
    /// Generator size as a fraction of the model size (controls the extra
    /// dispatched payload; the original generator is much smaller than the
    /// classifier).
    pub generator_fraction: f32,
}

impl Default for FedGenConfig {
    fn default() -> Self {
        Self {
            distill_weight: 0.05,
            generator_fraction: 0.1,
        }
    }
}

/// The simplified FedGen baseline.
pub struct FedGen {
    global: ParamBlock,
    /// The previous round's ensemble model — the distillation teacher (shares
    /// the global model's buffer between rounds, copy-on-write).
    teacher: ParamBlock,
    config: FedGenConfig,
}

impl FedGen {
    /// Creates FedGen from the initial global model parameters.
    pub fn new(init_params: Vec<f32>, config: FedGenConfig) -> Self {
        assert!(!init_params.is_empty(), "initial parameters must not be empty");
        assert!(config.distill_weight >= 0.0);
        assert!((0.0..=1.0).contains(&config.generator_fraction));
        let global = ParamBlock::from(init_params);
        Self {
            teacher: global.clone(),
            global,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FedGenConfig {
        &self.config
    }
}

impl FederatedAlgorithm for FedGen {
    fn name(&self) -> String {
        // The hyper-parameters are part of the name so a checkpoint taken
        // under one distillation configuration cannot silently resume under
        // another (resume validates the name, and neither value is covered
        // by the simulation's config fingerprint).
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!(
            "fedgen(distill={}, gen={})",
            self.config.distill_weight, self.config.generator_fraction
        )
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let generator_scalars =
            (self.global.len() as f32 * self.config.generator_fraction) as usize;
        let lambda = self.config.distill_weight;

        let jobs: Vec<TrainJob> = selected
            .iter()
            .map(|&client| {
                // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                let teacher = self.teacher.clone();
                TrainJob {
                    client,
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    params: self.global.clone(),
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    correction: Some(Box::new(move |i, w, g| g + lambda * (w - teacher[i]))),
                    // The generator is broadcast alongside the model (download only).
                    extra_download: generator_scalars,
                    extra_upload: 0,
                }
            })
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let mut updates = ctx.local_train_jobs(jobs);
        // Aggregate in dispatch order regardless of upload arrival order
        // (bitwise no-op on an unshuffled round).
        canonicalize_updates(&mut updates, &selected);
        if updates.is_empty() {
            // Every selected client dropped out this round (possible under an
            // availability model); the global model simply carries over.
            return RoundReport::default();
        }

        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        let params: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
        let weights: Vec<f32> = updates
            .iter()
            .map(|u| u.num_samples.max(1) as f32)
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        // Release the teacher's reference to last round's buffer first, so
        // `make_mut` reuses the retired global allocation instead of copying
        // a buffer that is about to be overwritten anyway.
        self.teacher = ParamBlock::default();
        weighted_average_into(self.global.make_mut(), &params, &weights);
        // The new ensemble is both the next global model and the next
        // teacher (shared buffer, reference bump).
        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        self.teacher = self.global.clone();
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        // The distillation teacher (last round's ensemble — the state the
        // generator would be trained from) must survive a restart, or the
        // first resumed round would distill towards the wrong target.
        Ok(AlgorithmState::single_model(self.global.clone())
            .with_aux("teacher", self.teacher.to_vec()))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let dim = self.global.len();
        let global = state.expect_single_model(dim)?;
        let teacher = state.expect_aux("teacher", dim)?;
        self.global = global.clone();
        self.teacher = ParamBlock::from(teacher);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{quick_config, tiny_image_setup};
    use fedcross_flsim::Simulation;

    #[test]
    fn fedgen_runs_with_medium_comm_overhead() {
        let (data, template) = tiny_image_setup(0, 6);
        let model_params = template.param_count();
        let mut algo = FedGen::new(template.params_flat(), FedGenConfig::default());
        let sim = Simulation::new(quick_config(3, 3), &data, template);
        let result = sim.run(&mut algo);
        assert_eq!(result.history.len(), 3);
        // Generator ≈ 10% of the model, download only ⇒ Medium per Table I.
        assert_eq!(
            result.comm.overhead_class(model_params),
            fedcross_flsim::CommOverheadClass::Medium
        );
        assert!(result.comm.extra_download > 0);
        assert_eq!(result.comm.extra_upload, 0);
    }

    #[test]
    fn fedgen_learns_above_chance() {
        let (data, template) = tiny_image_setup(1, 6);
        let mut algo = FedGen::new(template.params_flat(), FedGenConfig::default());
        let mut config = quick_config(10, 3);
        config.local.epochs = 2;
        config.local.lr = 0.1;
        let sim = Simulation::new(config, &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > 0.2,
            "best accuracy {}",
            result.history.best_accuracy()
        );
    }

    #[test]
    fn zero_generator_fraction_degrades_to_low_overhead() {
        let (data, template) = tiny_image_setup(2, 5);
        let model_params = template.param_count();
        let config = FedGenConfig {
            generator_fraction: 0.0,
            ..Default::default()
        };
        let mut algo = FedGen::new(template.params_flat(), config);
        let sim = Simulation::new(quick_config(2, 2), &data, template);
        let result = sim.run(&mut algo);
        assert_eq!(
            result.comm.overhead_class(model_params),
            fedcross_flsim::CommOverheadClass::Low
        );
    }

    #[test]
    #[should_panic]
    fn generator_fraction_above_one_is_rejected() {
        let _ = FedGen::new(
            vec![0.0],
            FedGenConfig {
                generator_fraction: 1.5,
                ..Default::default()
            },
        );
    }
}
