//! Determinism pins for the Byzantine-robust aggregation kernels.
//!
//! The robustness plane's contract (docs/ROBUSTNESS.md) is that robust
//! aggregation is a pure function of the *set* of uploads in canonical
//! client order: permuting upload arrival order must not change a single
//! bit of the aggregate, and every tie is broken deterministically (lowest
//! canonical index first). These tests pin that contract directly at the
//! kernel level — the algorithm-level order-independence tests in
//! `resume_plane.rs` and `crates/core/src/robust.rs` build on it.

use fedcross::aggregation::{
    coordinate_median, krum_select, multi_krum_select, norm_bounded_mean, trim_count,
    trimmed_mean,
};
use fedcross::RobustRule;
use fedcross_nn::params::{l2_norm, squared_distance};
use fedcross_tensor::SeededRng;
use proptest::prelude::*;

/// `n` random upload vectors of `dim` coordinates in `[-3, 3)`.
fn random_uploads(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.uniform_range(-3.0, 3.0)).collect())
        .collect()
}

/// A seeded permutation of `0..n` together with the uploads reordered by it:
/// `shuffled[k] = uploads[perm[k]]`.
fn permuted(uploads: &[Vec<f32>], seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
    let mut perm: Vec<usize> = (0..uploads.len()).collect();
    SeededRng::new(seed).shuffle(&mut perm);
    let shuffled = perm.iter().map(|&i| uploads[i].clone()).collect();
    (shuffled, perm)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Reproduces the kernel's Krum score arithmetic exactly (same distance
/// order, same ascending sort, same summation order), so the test can tell
/// structural score ties — where set-invariance is not promised — from the
/// tie-free cases where it is.
fn krum_scores(uploads: &[Vec<f32>], f: usize) -> Vec<f32> {
    let n = uploads.len();
    let neighbours = n.saturating_sub(f + 2).clamp(1, n - 1);
    (0..n)
        .map(|i| {
            let mut distances: Vec<f32> = (0..n)
                .filter(|&j| j != i)
                .map(|j| squared_distance(&uploads[i], &uploads[j]))
                .collect();
            distances.sort_unstable_by(f32::total_cmp);
            distances[..neighbours].iter().sum()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coordinate-wise median is **bitwise** invariant to upload order: each
    /// column is sorted with `f32::total_cmp` before the middle is read, so
    /// the arrival permutation is erased entirely.
    #[test]
    fn median_is_bitwise_invariant_to_upload_order(
        n in 1usize..9,
        dim in 1usize..40,
        seed in 0u64..500,
    ) {
        let uploads = random_uploads(n, dim, seed);
        let (shuffled, _) = permuted(&uploads, seed ^ 0x5EED);
        prop_assert_eq!(
            bits(&coordinate_median(&uploads)),
            bits(&coordinate_median(&shuffled))
        );
    }

    /// Trimmed mean is bitwise invariant to upload order for every valid
    /// trim fraction: the kept slice is summed in ascending sorted order, a
    /// pure function of the column multiset.
    #[test]
    fn trimmed_mean_is_bitwise_invariant_to_upload_order(
        n in 1usize..9,
        dim in 1usize..40,
        trim in 0.0f32..0.49,
        seed in 0u64..500,
    ) {
        let uploads = random_uploads(n, dim, seed);
        let (shuffled, _) = permuted(&uploads, seed ^ 0xC0FFEE);
        // floor(trim·n) < n/2 for trim < 0.5, so the kernel's precondition
        // 2·cut < n holds for every generated case.
        prop_assert!(2 * trim_count(n, trim) < n);
        prop_assert_eq!(
            bits(&trimmed_mean(&uploads, trim)),
            bits(&trimmed_mean(&shuffled, trim))
        );
    }

    /// Multi-Krum's selected *set* is invariant to upload order (scores are
    /// pure functions of the pairwise-distance multiset), and the returned
    /// indices are always in ascending canonical order.
    #[test]
    fn multi_krum_selection_set_is_invariant_to_upload_order(
        n in 2usize..9,
        dim in 1usize..24,
        f in 0usize..3,
        m_raw in 1usize..9,
        seed in 0u64..500,
    ) {
        let m = ((m_raw - 1) % n) + 1;
        let uploads = random_uploads(n, dim, seed);
        let (shuffled, perm) = permuted(&uploads, seed ^ 0xACE5);

        let canonical = multi_krum_select(&uploads, f, m);
        prop_assert!(canonical.windows(2).all(|w| w[0] < w[1]));

        // Map the shuffled selection back to original upload identities.
        let mut mapped: Vec<usize> = multi_krum_select(&shuffled, f, m)
            .iter()
            .map(|&k| perm[k])
            .collect();
        mapped.sort_unstable();

        let scores = krum_scores(&uploads, f);
        let mut distinct = scores.clone();
        distinct.sort_unstable_by(f32::total_cmp);
        distinct.dedup_by(|a, b| a.to_bits() == b.to_bits());
        if distinct.len() == scores.len() {
            // No exact score ties: the selected set is permutation-invariant.
            prop_assert_eq!(canonical, mapped);
        } else {
            // Structural ties (e.g. n = 2, or mutually-nearest pairs): only
            // the multiset of selected *scores* is promised to be invariant.
            let score_bits = |sel: &[usize]| {
                let mut s: Vec<u32> = sel.iter().map(|&i| scores[i].to_bits()).collect();
                s.sort_unstable();
                s
            };
            prop_assert_eq!(score_bits(&canonical), score_bits(&mapped));
        }
    }
}

#[test]
fn krum_breaks_ties_by_lowest_canonical_index() {
    // Four identical uploads: every Krum score ties at exactly 0.0, so the
    // deterministic tie-break must hand back the lowest canonical indices.
    let uploads = vec![vec![0.5f32, -0.25]; 4];
    assert_eq!(krum_select(&uploads, 1), 0);
    assert_eq!(multi_krum_select(&uploads, 1, 1), vec![0]);
    assert_eq!(multi_krum_select(&uploads, 1, 3), vec![0, 1, 2]);

    // Two mirrored pairs: scores tie pairwise; selection must still prefer
    // the lower index within each tied pair.
    let mirrored = vec![
        vec![1.0f32, 0.0],
        vec![1.0, 0.0],
        vec![-1.0, 0.0],
        vec![-1.0, 0.0],
    ];
    assert_eq!(multi_krum_select(&mirrored, 0, 2), vec![0, 1]);
}

#[test]
fn median_and_trimmed_mean_use_canonical_sorted_order_for_even_columns() {
    // Even column: the median averages the two middle values of the sorted
    // column, regardless of arrival order.
    let uploads = vec![vec![4.0f32], vec![1.0], vec![3.0], vec![2.0]];
    assert_eq!(coordinate_median(&uploads), vec![2.5]);
    // trim = 0.25 on n = 4 drops exactly one value per end: keeps {2, 3}.
    assert_eq!(trim_count(4, 0.25), 1);
    assert_eq!(trimmed_mean(&uploads, 0.25), vec![2.5]);
}

/// Norm bounding clips **exactly** at the threshold: a delta of norm `> C`
/// is scaled by exactly `C / ‖δ‖`, a delta of norm `≤ C` (including exactly
/// `C`) passes through bitwise untouched.
#[test]
fn norm_bounding_pins_the_clip_threshold_exactly() {
    let anchor = vec![1.0f32, -2.0];
    let max_norm = 2.0f32;

    // Delta (3, 4): norm exactly 5 > C, so the clip factor is exactly
    // C / 5 = 2/5 — reproduce the kernel's arithmetic and compare bitwise.
    let over = vec![anchor[0] + 3.0, anchor[1] + 4.0];
    let delta = [3.0f32, 4.0];
    assert_eq!(l2_norm(&delta), 5.0);
    let scale = max_norm / 5.0f32;
    let expected = [
        anchor[0] + scale * delta[0],
        anchor[1] + scale * delta[1],
    ];
    let clipped = norm_bounded_mean(&anchor, &[over], max_norm);
    assert_eq!(bits(&clipped), bits(&expected));
    assert!((l2_norm(&[clipped[0] - anchor[0], clipped[1] - anchor[1]]) - max_norm).abs() < 1e-6);

    // Delta (2, 0): norm exactly C. The condition is a strict `>`, so the
    // delta is NOT rescaled — the upload passes through bitwise.
    let at = vec![anchor[0] + 2.0, anchor[1]];
    assert_eq!(l2_norm(&[2.0f32, 0.0]), max_norm);
    let passthrough = norm_bounded_mean(&anchor, std::slice::from_ref(&at), max_norm);
    assert_eq!(bits(&passthrough), bits(&at));

    // Delta well under C: untouched too.
    let under = vec![anchor[0] + 0.3, anchor[1] - 0.4];
    assert_eq!(
        bits(&norm_bounded_mean(&anchor, std::slice::from_ref(&under), max_norm)),
        bits(&under)
    );
}

#[test]
fn breakdown_points_match_the_documented_rules() {
    assert_eq!(RobustRule::Median.max_byzantine(7), 3);
    assert_eq!(RobustRule::Median.max_byzantine(8), 3);
    assert_eq!(RobustRule::TrimmedMean { trim: 0.25 }.max_byzantine(8), 2);
    assert_eq!(RobustRule::Krum { f: 2, m: 1 }.max_byzantine(9), 2);
    assert_eq!(RobustRule::NormBound { max_norm: 1.0 }.max_byzantine(9), 0);
}
