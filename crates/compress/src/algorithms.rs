//! FL algorithms with compressed uploads.

use crate::codec::Compressor;
use crate::feedback::ErrorFeedback;
use fedcross_flsim::checkpoint::{decode_u64, encode_u64, AlgorithmState, StateError};
use fedcross_flsim::client::LocalUpdate;
use fedcross_flsim::engine::{FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_flsim::streams::{RoundStreams, StreamDomain};
use fedcross_nn::params::{add_scaled, average, difference, ParamBlock};
use serde::{Deserialize, Serialize};

/// Name of the [`AlgorithmState`] record holding the [`UploadStats`]
/// counters: `[raw_scalars, compressed_scalars, uploads]` as decimal strings
/// (the JSON shim's numbers are f64-backed, so numeric u64 would truncate
/// above 2^53).
const UPLOAD_STATS_RECORD: &str = "upload_stats";

/// Name of the [`AlgorithmState`] client table holding the per-client
/// error-feedback residuals.
const RESIDUALS_TABLE: &str = "ef_residuals";

/// Accumulated upload-volume accounting of a compressed run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UploadStats {
    /// Scalars the clients would have uploaded without compression.
    pub raw_scalars: u64,
    /// Scalars actually occupied by the compressed encodings.
    pub compressed_scalars: u64,
    /// Number of compressed uploads recorded.
    pub uploads: u64,
}

impl UploadStats {
    /// Overall compression ratio (raw / compressed); 1.0 when nothing was
    /// recorded.
    pub fn ratio(&self) -> f64 {
        if self.compressed_scalars == 0 {
            1.0
        } else {
            self.raw_scalars as f64 / self.compressed_scalars as f64
        }
    }

    /// Upload volume saved, in mebibytes at 4 bytes per scalar.
    pub fn saved_mib(&self) -> f64 {
        (self.raw_scalars.saturating_sub(self.compressed_scalars)) as f64 * 4.0
            / (1024.0 * 1024.0)
    }
}

/// FedAvg whose clients upload compressed parameter deltas.
///
/// Each round: dispatch the global model, train, compress every client's delta
/// with the configured [`Compressor`] (optionally through per-client
/// [`ErrorFeedback`]), decode on the server, average the decoded deltas and
/// apply them to the global model. The exact raw-vs-compressed upload volume is
/// tracked in [`UploadStats`].
///
/// **Resumable.** Stochastic-compression randomness (dithered quantization,
/// random-`k`) derives from a [`RoundStreams`] keyed by
/// `(CompressionDither, seed, absolute round, client id)` — client-side
/// randomness, so client identity is the natural key and the encoding a
/// client produces does not depend on which uploads the server happened to
/// process first. The cross-round state — global model, [`UploadStats`]
/// counters and the per-client error-feedback residuals — is captured by
/// [`FederatedAlgorithm::snapshot_state`].
pub struct CompressedFedAvg {
    global: ParamBlock,
    compressor: Box<dyn Compressor>,
    feedback: Option<ErrorFeedback>,
    stats: UploadStats,
    dither: RoundStreams,
}

impl CompressedFedAvg {
    /// Creates compressed FedAvg. `error_feedback` should be enabled for
    /// biased compressors (top-`k`); `seed` roots the round-derived
    /// stochastic-compression streams.
    pub fn new(
        init_params: Vec<f32>,
        compressor: Box<dyn Compressor>,
        error_feedback: bool,
        seed: u64,
    ) -> Self {
        Self {
            global: ParamBlock::from(init_params),
            compressor,
            feedback: if error_feedback {
                Some(ErrorFeedback::new())
            } else {
                None
            },
            stats: UploadStats::default(),
            dither: RoundStreams::new(StreamDomain::CompressionDither, seed),
        }
    }

    /// The accumulated upload accounting.
    pub fn upload_stats(&self) -> UploadStats {
        self.stats
    }

    /// Whether error feedback is enabled.
    pub fn uses_error_feedback(&self) -> bool {
        self.feedback.is_some()
    }

    /// The server half of one round: compress/decode every upload's delta
    /// (clients would do the compression in a real deployment — the
    /// simulation runs both ends), average the decoded deltas and apply them
    /// to the global model.
    ///
    /// Public so the order-independence contract is testable: updates are
    /// processed in canonical client-id order and each client's compression
    /// stream is keyed by `(round, client)`, so any permutation of `updates`
    /// produces a bitwise-identical model, residual memory and counters.
    pub fn apply_updates(&mut self, round: usize, updates: &[LocalUpdate]) -> RoundReport {
        if updates.is_empty() {
            return RoundReport::default();
        }
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let mut ordered: Vec<&LocalUpdate> = updates.iter().collect();
        ordered.sort_by_key(|update| update.client);

        let round_dither = self.dither.round(round);
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let mut decoded_deltas = Vec::with_capacity(ordered.len());
        for update in &ordered {
            let delta = difference(&update.params, &self.global);
            let mut rng = round_dither.stream(update.client);
            let compressed = match self.feedback.as_mut() {
                Some(feedback) => feedback.compress_with_feedback(
                    update.client,
                    &delta,
                    self.compressor.as_ref(),
                    &mut rng,
                ),
                None => self.compressor.compress(&delta, &mut rng),
            };
            self.stats.raw_scalars += delta.len() as u64;
            self.stats.compressed_scalars += compressed.payload_scalars() as u64;
            self.stats.uploads += 1;
            decoded_deltas.push(compressed.decode());
        }

        let aggregate = average(&decoded_deltas);
        add_scaled(self.global.make_mut(), &aggregate, 1.0);
        RoundReport::from_ordered(&ordered)
    }
}

impl FederatedAlgorithm for CompressedFedAvg {
    fn name(&self) -> String {
        // The dither seed is part of the name: stochastic compressors make
        // the trajectory a function of the seed, so a resume under a
        // different seed would silently splice two dither sequences — the
        // name check rejects it. (Deterministic compressors don't consume
        // the streams, but the generic path cannot tell them apart.)
        let ef = if self.feedback.is_some() { ", EF" } else { "" };
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!(
            "fedavg+{}, seed={}{}",
            self.compressor.label(),
            self.dither.base_seed(),
            ef
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|&client| (client, self.global.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        self.apply_updates(round, &updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        let mut state = AlgorithmState::single_model(self.global.clone()).with_record(
            UPLOAD_STATS_RECORD,
            vec![
                encode_u64(self.stats.raw_scalars),
                encode_u64(self.stats.compressed_scalars),
                encode_u64(self.stats.uploads),
            ],
        );
        if let Some(feedback) = &self.feedback {
            state = state.with_client_table(RESIDUALS_TABLE, feedback.snapshot_residuals());
        }
        Ok(state)
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let dim = self.global.len();
        let global = state.expect_single_model(dim)?.clone();
        let record = state.expect_record(UPLOAD_STATS_RECORD, 3)?;
        let stats = UploadStats {
            raw_scalars: decode_u64(&record[0])?,
            compressed_scalars: decode_u64(&record[1])?,
            uploads: decode_u64(&record[2])?,
        };
        // The residual table exists iff error feedback is on: the algorithm
        // name encodes the EF flag, so the engine's name check already rules
        // out a cross-configuration restore — but validate anyway so a
        // hand-edited checkpoint fails loudly. Residual dimensions match the
        // model (the residual of a full-model delta); client ids are bounded
        // by usize::MAX here because the federation size is not known at
        // restore time — the ids only key the memory, they are never indexed.
        let residuals = match &self.feedback {
            Some(_) => Some(state.expect_client_table(RESIDUALS_TABLE, usize::MAX, dim)?),
            None => None,
        };
        self.global = global;
        self.stats = stats;
        if let (Some(feedback), Some(table)) = (self.feedback.as_mut(), residuals) {
            feedback.restore_residuals(table);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Identity;
    use crate::quantize::UniformQuantizer;
    use crate::sparsify::TopK;
    use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
    use fedcross_data::Heterogeneity;
    use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
    use fedcross_nn::models::{cnn, CnnConfig};
    use fedcross_nn::Model;
    use fedcross_tensor::SeededRng;

    fn tiny_setup(seed: u64) -> (FederatedDataset, Box<dyn Model>) {
        let mut rng = SeededRng::new(seed);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: 6,
                samples_per_client: 30,
                test_samples: 60,
                ..Default::default()
            },
            Heterogeneity::Iid,
            &mut rng,
        );
        let template = cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (4, 8),
                fc_hidden: 16,
                kernel: 3,
            },
            &mut rng,
        );
        (data, template)
    }

    fn quick_config(rounds: usize) -> SimulationConfig {
        SimulationConfig {
            rounds,
            clients_per_round: 3,
            eval_every: rounds.max(1),
            eval_batch_size: 64,
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 10,
                lr: 0.1,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            seed: 9,
        }
    }

    #[test]
    fn identity_compression_matches_plain_fedavg_updates() {
        let (data, template) = tiny_setup(0);
        let mut algo = CompressedFedAvg::new(template.params_flat(), Box::new(Identity), false, 1);
        let result = Simulation::new(quick_config(3), &data, template).run(&mut algo);
        // Evaluated at round 0 and at the final round.
        assert_eq!(result.history.len(), 2);
        let stats = algo.upload_stats();
        assert_eq!(stats.raw_scalars, stats.compressed_scalars);
        assert!((stats.ratio() - 1.0).abs() < 1e-9);
        assert_eq!(stats.uploads, 9);
        assert!(!algo.uses_error_feedback());
    }

    #[test]
    fn quantized_uploads_learn_and_shrink_the_payload() {
        let (data, template) = tiny_setup(1);
        let init_acc = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &template.params_flat(),
            data.test_set(),
            64,
        )
        .accuracy;
        let mut algo = CompressedFedAvg::new(
            template.params_flat(),
            Box::new(UniformQuantizer::new(8, true)),
            false,
            2,
        );
        let result = Simulation::new(quick_config(10), &data, template).run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1,
            "8-bit quantized FedAvg should learn ({} vs {})",
            result.history.best_accuracy(),
            init_acc
        );
        let stats = algo.upload_stats();
        assert!(stats.ratio() > 3.0, "ratio {}", stats.ratio());
        assert!(stats.saved_mib() > 0.0);
        assert!(algo.name().contains("quant-8bit"));
    }

    #[test]
    fn topk_with_error_feedback_learns() {
        let (data, template) = tiny_setup(2);
        let init_acc = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &template.params_flat(),
            data.test_set(),
            64,
        )
        .accuracy;
        let mut algo = CompressedFedAvg::new(
            template.params_flat(),
            Box::new(TopK::new(0.25)),
            true,
            3,
        );
        let result = Simulation::new(quick_config(12), &data, template).run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1,
            "top-k + EF FedAvg should learn ({} vs {})",
            result.history.best_accuracy(),
            init_acc
        );
        assert!(algo.upload_stats().ratio() > 1.8);
        assert!(algo.uses_error_feedback());
        assert!(algo.name().ends_with(", EF"));
    }

    #[test]
    fn empty_stats_have_unit_ratio() {
        let stats = UploadStats::default();
        assert_eq!(stats.ratio(), 1.0);
        assert_eq!(stats.saved_mib(), 0.0);
    }
}
