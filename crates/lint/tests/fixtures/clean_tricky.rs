// Fixture: tokenizer stress test. Every forbidden pattern below appears only
// inside string literals, char literals, raw strings or comments — a correct
// tokenizer produces ZERO findings from this file even when linted as crate
// "core" with file name "aggregation.rs" (the strictest scope).

/* Block comment mentioning Instant::now() and thread_rng() — not code.
   /* Nested block comment with mul_add and .fork( — Rust nests these. */
   Still inside the outer comment: unsafe { *ptr } */

pub fn tricky() -> String {
    // String literals containing pattern text must be blanked.
    let a = "HashMap.iter() over the wire";
    let b = "Instant::now() is mentioned in this log message";
    let c = "calling rng.fork(7) without a marker — in prose only";
    let d = "unsafe { transmute } as documentation text";
    let e = "x.mul_add(y, z) in a help string";

    // Escaped quotes must not terminate the literal early.
    let f = "she said \"use SystemTime\" and left";

    // Raw strings, with and without hashes.
    let g = r"rand::random() in a raw string";
    let h = r#"par_iter().sum() with "inner quotes" kept"#;
    let i = r##"thread_rng() behind two hashes "#" tricky"##;

    // Byte strings and byte chars.
    let j = b"SystemTime::now in bytes";
    let k = br#"HashSet.values() raw bytes"#;
    let l = b'x';

    // Char literals vs lifetimes: the tokenizer must not treat `'a` as an
    // unterminated char literal and swallow the rest of the line.
    let m: &'static str = "static lifetime, not a char";
    let quote = '"';
    let newline = '\n';
    let tick = '\'';

    // An identifier ending in `r` followed by a string is NOT a raw string
    // prefix.
    let four = number("4");

    format!("{a}{b}{c}{d}{e}{f}{g}{h}{i}{:?}{:?}{l}{m}{quote}{newline}{tick}{four}", j, k)
}

fn number(s: &str) -> usize {
    s.len()
}

// A for loop whose iterable is an ordered Vec named suggestively — the
// suspect tracker must not flag names it never saw bound to HashMap/HashSet.
pub fn ordered(hash_like_names: Vec<usize>) -> usize {
    let mut total = 0;
    for v in &hash_like_names {
        total += v;
    }
    total
}
