//! Communication accounting.
//!
//! Section IV-C3 of the paper compares methods by per-round payload: FedAvg,
//! FedProx, CluSamp and FedCross exchange `2K` models per round, SCAFFOLD
//! adds `2K` control variates of model size, FedGen adds `K` generator
//! downloads. [`CommTracker`] counts those scalars as they happen so the
//! Table I column can be *measured* rather than asserted.

use serde::{Deserialize, Serialize};

/// Qualitative communication-overhead class used in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommOverheadClass {
    /// Only model parameters are exchanged (FedAvg-equivalent payload).
    Low,
    /// Auxiliary payload below one model-equivalent per client per round.
    Medium,
    /// Auxiliary payload of one model-equivalent or more per client per round.
    High,
}

impl std::fmt::Display for CommOverheadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CommOverheadClass::Low => "Low",
            CommOverheadClass::Medium => "Medium",
            CommOverheadClass::High => "High",
        };
        write!(f, "{s}")
    }
}

/// Counts scalars (f32 parameters) moved between the cloud server and clients.
///
/// Serialisation note: the counters travel as **decimal strings**, not JSON
/// numbers — the serde shim's number representation is f64-backed, which
/// would silently truncate counts above 2^53 and break the resume plane's
/// "identical communication totals" guarantee on very long large-model runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommTracker {
    /// Scalars sent server → client as model parameters.
    pub model_download: u64,
    /// Scalars sent client → server as model parameters.
    pub model_upload: u64,
    /// Auxiliary scalars sent server → client (control variates, generators…).
    pub extra_download: u64,
    /// Auxiliary scalars sent client → server.
    pub extra_upload: u64,
    /// Number of rounds recorded.
    pub rounds: u64,
    /// Number of client contacts (one per dispatched model).
    pub client_contacts: u64,
}

impl Serialize for CommTracker {
    fn to_value(&self) -> serde::Value {
        let counter = |n: u64| serde::Value::Str(n.to_string());
        serde::Value::Object(vec![
            ("model_download".to_string(), counter(self.model_download)),
            ("model_upload".to_string(), counter(self.model_upload)),
            ("extra_download".to_string(), counter(self.extra_download)),
            ("extra_upload".to_string(), counter(self.extra_upload)),
            ("rounds".to_string(), counter(self.rounds)),
            ("client_contacts".to_string(), counter(self.client_contacts)),
        ])
    }
}

impl Deserialize for CommTracker {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value.as_object().ok_or_else(|| {
            serde::Error::custom(format!("expected object, found {}", value.kind()))
        })?;
        let counter = |name: &str| -> Result<u64, serde::Error> {
            let text: String = serde::derive_support::field(entries, name)?;
            text.parse::<u64>().map_err(|_| {
                serde::Error::custom(format!("field `{name}`: invalid u64 `{text}`"))
            })
        };
        Ok(Self {
            model_download: counter("model_download")?,
            model_upload: counter("model_upload")?,
            extra_download: counter("extra_download")?,
            extra_upload: counter("extra_upload")?,
            rounds: counter("rounds")?,
            client_contacts: counter("client_contacts")?,
        })
    }
}

impl CommTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the dispatch of a model of `params` scalars to one client and
    /// the upload of the trained version.
    pub fn record_model_roundtrip(&mut self, params: usize) {
        self.model_download += params as u64;
        self.model_upload += params as u64;
        self.client_contacts += 1;
    }

    /// Records auxiliary download payload (per client).
    pub fn record_extra_download(&mut self, scalars: usize) {
        self.extra_download += scalars as u64;
    }

    /// Records auxiliary upload payload (per client).
    pub fn record_extra_upload(&mut self, scalars: usize) {
        self.extra_upload += scalars as u64;
    }

    /// Marks the end of one communication round.
    pub fn end_round(&mut self) {
        self.rounds += 1;
    }

    /// Total scalars moved in either direction.
    pub fn total_scalars(&self) -> u64 {
        self.model_download + self.model_upload + self.extra_download + self.extra_upload
    }

    /// Total payload in mebibytes assuming 4-byte scalars.
    pub fn total_mib(&self) -> f64 {
        self.total_scalars() as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// Average auxiliary payload per client contact, measured in units of one
    /// model of `model_params` scalars.
    pub fn extra_models_per_contact(&self, model_params: usize) -> f64 {
        if self.client_contacts == 0 || model_params == 0 {
            return 0.0;
        }
        (self.extra_download + self.extra_upload) as f64
            / (self.client_contacts as f64 * model_params as f64)
    }

    /// Classifies the overhead the way Table I does.
    pub fn overhead_class(&self, model_params: usize) -> CommOverheadClass {
        let extra = self.extra_models_per_contact(model_params);
        if extra < 1e-9 {
            CommOverheadClass::Low
        } else if extra < 1.0 {
            CommOverheadClass::Medium
        } else {
            CommOverheadClass::High
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_roundtrips_accumulate() {
        let mut t = CommTracker::new();
        t.record_model_roundtrip(100);
        t.record_model_roundtrip(100);
        t.end_round();
        assert_eq!(t.model_download, 200);
        assert_eq!(t.model_upload, 200);
        assert_eq!(t.client_contacts, 2);
        assert_eq!(t.rounds, 1);
        assert_eq!(t.total_scalars(), 400);
    }

    #[test]
    fn pure_model_exchange_is_low_overhead() {
        let mut t = CommTracker::new();
        for _ in 0..10 {
            t.record_model_roundtrip(1000);
        }
        assert_eq!(t.overhead_class(1000), CommOverheadClass::Low);
    }

    #[test]
    fn control_variates_make_it_high_overhead() {
        // SCAFFOLD: one extra model-sized payload both ways per contact.
        let mut t = CommTracker::new();
        for _ in 0..5 {
            t.record_model_roundtrip(1000);
            t.record_extra_download(1000);
            t.record_extra_upload(1000);
        }
        assert_eq!(t.overhead_class(1000), CommOverheadClass::High);
        assert!(t.extra_models_per_contact(1000) >= 1.9);
    }

    #[test]
    fn small_generator_is_medium_overhead() {
        // FedGen: a generator ~10% of the model, download only.
        let mut t = CommTracker::new();
        for _ in 0..5 {
            t.record_model_roundtrip(1000);
            t.record_extra_download(100);
        }
        assert_eq!(t.overhead_class(1000), CommOverheadClass::Medium);
    }

    #[test]
    fn total_mib_uses_four_byte_scalars() {
        let mut t = CommTracker::new();
        t.record_model_roundtrip(1024 * 1024 / 8);
        // download + upload = 2 * 128Ki scalars = 1 MiB at 4 bytes each.
        assert!((t.total_mib() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tracker_is_low_class_and_zero() {
        let t = CommTracker::new();
        assert_eq!(t.total_scalars(), 0);
        assert_eq!(t.overhead_class(100), CommOverheadClass::Low);
        assert_eq!(t.extra_models_per_contact(0), 0.0);
    }

    #[test]
    fn display_of_classes() {
        assert_eq!(CommOverheadClass::Low.to_string(), "Low");
        assert_eq!(CommOverheadClass::Medium.to_string(), "Medium");
        assert_eq!(CommOverheadClass::High.to_string(), "High");
    }
}
