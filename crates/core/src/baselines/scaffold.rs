//! SCAFFOLD (Karimireddy et al. 2020): stochastic controlled averaging with
//! server and client control variates.

use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::engine::{
    canonicalize_updates, FederatedAlgorithm, RoundContext, RoundReport, TrainJob,
};
use fedcross_nn::params::{add_scaled, average, average_into, difference, ParamBlock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// SCAFFOLD corrects the "client drift" of local SGD by adding `c - c_i` to
/// every local gradient, where `c` is a server control variate and `c_i` the
/// client's own. Both have the size of the model and travel with it each
/// round, which is why Table I classifies SCAFFOLD as high communication
/// overhead.
pub struct Scaffold {
    global: ParamBlock,
    server_control: Vec<f32>,
    // BTreeMap, not HashMap: snapshot_state iterates this table, and D001
    // requires every iterated map on a trajectory path to have a fixed order.
    client_controls: BTreeMap<usize, Vec<f32>>,
    total_clients: usize,
}

impl Scaffold {
    /// Creates SCAFFOLD from the initial global model. `total_clients` is the
    /// federation size `N`, used in the server control-variate update.
    pub fn new(init_params: Vec<f32>, total_clients: usize) -> Self {
        assert!(!init_params.is_empty(), "initial parameters must not be empty");
        assert!(total_clients > 0, "need at least one client");
        let dim = init_params.len();
        Self {
            global: ParamBlock::from(init_params),
            server_control: vec![0.0; dim],
            client_controls: BTreeMap::new(),
            total_clients,
        }
    }

    /// The server control variate `c`.
    pub fn server_control(&self) -> &[f32] {
        &self.server_control
    }

    /// The control variate of a specific client, if it has participated.
    pub fn client_control(&self, client: usize) -> Option<&Vec<f32>> {
        self.client_controls.get(&client)
    }
}

impl FederatedAlgorithm for Scaffold {
    fn name(&self) -> String {
        // alloc: cold — identity string for reporting, built outside the per-round loop
        "scaffold".to_string()
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let dim = self.global.len();
        let local = ctx.local_config();

        // Build one job per client with the correction g - c_i + c.
        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        let server_c = Arc::new(self.server_control.clone());
        let jobs: Vec<TrainJob> = selected
            .iter()
            .map(|&client| {
                // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                let c_i = Arc::new(
                    self.client_controls
                        .get(&client)
                        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                        .cloned()
                        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                        .unwrap_or_else(|| vec![0.0; dim]),
                );
                let c = Arc::clone(&server_c);
                TrainJob {
                    client,
                    // Reference bump, not an O(d) copy.
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    params: self.global.clone(),
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    correction: Some(Box::new(move |i, _w, g| g - c_i[i] + c[i])),
                    // The control variate travels both ways alongside the model.
                    extra_download: dim,
                    extra_upload: dim,
                }
            })
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let mut updates = ctx.local_train_jobs(jobs);
        // Aggregate (and update control variates) in dispatch order
        // regardless of upload arrival order (bitwise no-op on an unshuffled
        // round).
        canonicalize_updates(&mut updates, &selected);

        // Client control-variate update (option II of the paper):
        // c_i⁺ = c_i - c + (x - y_i) / (K·η_l), then Δc_i = c_i⁺ - c_i.
        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        let mut control_deltas: Vec<Vec<f32>> = Vec::with_capacity(updates.len());
        for update in &updates {
            let old_c_i = self
                .client_controls
                .get(&update.client)
                // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                .cloned()
                // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                .unwrap_or_else(|| vec![0.0; dim]);
            let steps = update.steps.max(1) as f32;
            let scale = 1.0 / (steps * local.lr);
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            let mut new_c_i = old_c_i.clone();
            // new_c_i = old_c_i - c + (x - y_i) * scale
            add_scaled(&mut new_c_i, &self.server_control, -1.0);
            let drift = difference(&self.global, &update.params);
            add_scaled(&mut new_c_i, &drift, scale);
            control_deltas.push(difference(&new_c_i, &old_c_i));
            self.client_controls.insert(update.client, new_c_i);
        }

        // Server updates: x ← x + (1/|S|) Σ (y_i - x);  c ← c + (|S|/N)·avg(Δc_i).
        if !updates.is_empty() {
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            let uploaded: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
            average_into(self.global.make_mut(), &uploaded);
            let mean_delta = average(&control_deltas);
            let fraction = updates.len() as f32 / self.total_clients as f32;
            add_scaled(&mut self.server_control, &mean_delta, fraction);
        }
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        // A lossy restart would zero every control variate and silently
        // change the drift correction of all future rounds, so both the
        // server control and the full per-client table are part of the state
        // (BTreeMap iteration yields the table sorted by client id, so the
        // snapshot file is deterministic).
        Ok(AlgorithmState::single_model(self.global.clone())
            .with_aux("server_control", self.server_control.clone())
            .with_client_table(
                "client_controls",
                self.client_controls
                    .iter()
                    .map(|(&client, control)| (client, control.clone()))
                    .collect(),
            ))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let dim = self.global.len();
        let global = state.expect_single_model(dim)?;
        let server_control = state.expect_aux("server_control", dim)?;
        let table = state.expect_client_table("client_controls", self.total_clients, dim)?;
        self.global = global.clone();
        self.server_control = server_control.to_vec();
        self.client_controls = table
            .iter()
            .map(|(client, control)| (*client, control.clone()))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{quick_config, tiny_image_setup};
    use fedcross_flsim::Simulation;

    #[test]
    fn scaffold_runs_and_has_high_comm_overhead() {
        let (data, template) = tiny_image_setup(0, 6);
        let model_params = template.param_count();
        let mut algo = Scaffold::new(template.params_flat(), data.num_clients());
        let sim = Simulation::new(quick_config(3, 3), &data, template);
        let result = sim.run(&mut algo);
        assert_eq!(result.history.len(), 3);
        // Table I: SCAFFOLD ships 2K control variates on top of 2K models.
        assert_eq!(
            result.comm.overhead_class(model_params),
            fedcross_flsim::CommOverheadClass::High
        );
        assert!(result.comm.extra_download > 0 && result.comm.extra_upload > 0);
    }

    #[test]
    fn control_variates_become_nonzero_after_participation() {
        let (data, template) = tiny_image_setup(1, 5);
        let mut algo = Scaffold::new(template.params_flat(), data.num_clients());
        let sim = Simulation::new(quick_config(4, 3), &data, template);
        let _ = sim.run(&mut algo);
        // At least one client control variate exists and is non-zero.
        assert!(!algo.client_controls.is_empty());
        let some_nonzero = algo
            .client_controls
            .values()
            .any(|c| c.iter().any(|&v| v.abs() > 1e-12));
        assert!(some_nonzero, "client control variates never moved");
        // The server control variate also moved.
        assert!(algo.server_control().iter().any(|&v| v.abs() > 1e-12));
    }

    #[test]
    fn scaffold_learns_above_chance() {
        let (data, template) = tiny_image_setup(2, 6);
        let mut algo = Scaffold::new(template.params_flat(), data.num_clients());
        let mut config = quick_config(10, 3);
        config.local.epochs = 2;
        config.local.lr = 0.1;
        let sim = Simulation::new(config, &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > 0.2,
            "best accuracy {}",
            result.history.best_accuracy()
        );
    }

    #[test]
    fn unseen_client_has_no_control_variate() {
        let algo = Scaffold::new(vec![0.0; 4], 10);
        assert!(algo.client_control(3).is_none());
        assert_eq!(algo.server_control(), &[0.0; 4]);
    }

    #[test]
    #[should_panic]
    fn zero_clients_is_rejected() {
        let _ = Scaffold::new(vec![0.0], 0);
    }
}
