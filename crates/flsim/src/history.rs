//! Learning-curve recording and summary statistics.
//!
//! Figures 5–9 of the paper are accuracy-vs-communication-round curves and
//! Table II/III report "mean ± std" accuracies; [`TrainingHistory`] captures
//! the raw series and provides those summaries.

use serde::{Deserialize, Serialize};

/// One evaluated communication round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Communication round index (0-based).
    pub round: usize,
    /// Global-model test accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Global-model test loss.
    pub test_loss: f32,
    /// Mean client training loss reported this round.
    pub train_loss: f32,
}

/// The accuracy/loss series of one training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingHistory {
    records: Vec<RoundRecord>,
}

impl TrainingHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one evaluated round.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All recorded rounds in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The accuracy series as `(round, accuracy%)` pairs — the format of the
    /// paper's learning-curve figures.
    pub fn accuracy_curve(&self) -> Vec<(usize, f32)> {
        self.records
            .iter()
            .map(|r| (r.round, r.accuracy * 100.0))
            .collect()
    }

    /// Highest test accuracy observed, in `[0, 1]`.
    pub fn best_accuracy(&self) -> f32 {
        self.records
            .iter()
            .map(|r| r.accuracy)
            .fold(0.0, f32::max)
    }

    /// Test accuracy of the last evaluated round, in `[0, 1]`.
    pub fn final_accuracy(&self) -> f32 {
        self.records.last().map(|r| r.accuracy).unwrap_or(0.0)
    }

    /// The first round at which accuracy reached `target` (in `[0, 1]`), or
    /// `None` if it never did. Used for the paper's "rounds to reach the best
    /// baseline accuracy" comparison (Section IV-C3).
    pub fn rounds_to_reach(&self, target: f32) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.accuracy >= target)
            .map(|r| r.round)
    }

    /// Mean and sample standard deviation of accuracy (in percent) over the
    /// last `k` evaluations — the "x ± y" format of Tables II and III.
    pub fn mean_std_last(&self, k: usize) -> (f32, f32) {
        if self.records.is_empty() || k == 0 {
            return (0.0, 0.0);
        }
        let start = self.records.len().saturating_sub(k);
        let values: Vec<f32> = self.records[start..]
            .iter()
            .map(|r| r.accuracy * 100.0)
            .collect();
        let mean = values.iter().sum::<f32>() / values.len() as f32;
        let std = if values.len() < 2 {
            0.0
        } else {
            (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>()
                / (values.len() - 1) as f32)
                .sqrt()
        };
        (mean, std)
    }

    /// Largest absolute accuracy change between consecutive evaluations over
    /// the last `k` records — a simple fluctuation measure backing the
    /// paper's "FedCross converges with much smaller fluctuations" claim.
    pub fn max_fluctuation_last(&self, k: usize) -> f32 {
        if self.records.len() < 2 {
            return 0.0;
        }
        let start = self.records.len().saturating_sub(k.max(2));
        self.records[start..]
            .windows(2)
            .map(|w| (w[1].accuracy - w[0].accuracy).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, acc: f32) -> RoundRecord {
        RoundRecord {
            round,
            accuracy: acc,
            test_loss: 1.0 - acc,
            train_loss: 1.0 - acc,
        }
    }

    fn rising_history() -> TrainingHistory {
        let mut h = TrainingHistory::new();
        for (i, acc) in [0.1, 0.3, 0.45, 0.5, 0.52].iter().enumerate() {
            h.push(record(i, *acc));
        }
        h
    }

    #[test]
    fn basic_accessors() {
        let h = rising_history();
        assert_eq!(h.len(), 5);
        assert!(!h.is_empty());
        assert_eq!(h.records()[2].round, 2);
    }

    #[test]
    fn best_and_final_accuracy() {
        let mut h = rising_history();
        h.push(record(5, 0.40)); // dip at the end
        assert!((h.best_accuracy() - 0.52).abs() < 1e-6);
        assert!((h.final_accuracy() - 0.40).abs() < 1e-6);
    }

    #[test]
    fn empty_history_defaults() {
        let h = TrainingHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.best_accuracy(), 0.0);
        assert_eq!(h.final_accuracy(), 0.0);
        assert_eq!(h.rounds_to_reach(0.1), None);
        assert_eq!(h.mean_std_last(3), (0.0, 0.0));
        assert_eq!(h.max_fluctuation_last(3), 0.0);
    }

    #[test]
    fn rounds_to_reach_finds_first_crossing() {
        let h = rising_history();
        assert_eq!(h.rounds_to_reach(0.45), Some(2));
        assert_eq!(h.rounds_to_reach(0.30), Some(1));
        assert_eq!(h.rounds_to_reach(0.9), None);
    }

    #[test]
    fn accuracy_curve_is_in_percent() {
        let h = rising_history();
        let curve = h.accuracy_curve();
        assert_eq!(curve[0], (0, 10.0));
        assert_eq!(curve[4], (4, 52.0));
    }

    #[test]
    fn mean_std_last_matches_manual_computation() {
        let h = rising_history();
        let (mean, std) = h.mean_std_last(3);
        // Last three accuracies: 45%, 50%, 52%.
        assert!((mean - 49.0).abs() < 1e-4);
        assert!((std - 3.6055).abs() < 1e-2);
        // k larger than the history uses everything.
        let (mean_all, _) = h.mean_std_last(100);
        assert!((mean_all - 37.4).abs() < 1e-3);
    }

    #[test]
    fn fluctuation_measures_largest_jump() {
        let mut h = TrainingHistory::new();
        for (i, acc) in [0.2, 0.5, 0.45, 0.48].iter().enumerate() {
            h.push(record(i, *acc));
        }
        assert!((h.max_fluctuation_last(10) - 0.3).abs() < 1e-6);
        assert!((h.max_fluctuation_last(2) - 0.03).abs() < 1e-6);
    }
}
