//! Noise mechanisms applied to clipped parameter deltas.
//!
//! Two placements are supported, matching the two families the paper's
//! discussion cites:
//!
//! * **Central DP** (DP-FedAvg / "FL with DP", Wei et al.): clients upload
//!   clipped deltas in the clear (or under secure aggregation) and the *server*
//!   adds one Gaussian perturbation to the aggregate, calibrated to
//!   `C · z / K` per coordinate where `C` is the clip norm, `z` the noise
//!   multiplier and `K` the number of participants.
//! * **Local DP** (LDP-FL, Sun et al.): every *client* perturbs its own
//!   clipped delta with noise calibrated to `C · z` before uploading, so the
//!   server never observes an exact update.
//!
//! The mechanisms take the RNG they draw from as a parameter and consume
//! nothing else; callers on the resume plane must hand them a **round-derived**
//! stream (`fedcross_flsim::streams::RoundStreams` keyed by the absolute
//! round and the client/slot identity, as [`DpFedAvg`] and [`DpFedCross`]
//! do), never a long-lived RNG shared across rounds or across clients — a
//! shared stream makes the injected noise depend on upload arrival order and
//! is unrecoverable after a restart.
//!
//! [`DpFedAvg`]: crate::algorithms::DpFedAvg
//! [`DpFedCross`]: crate::algorithms::DpFedCross

use crate::clipping::clip_to_norm;
use fedcross_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Where the privacy noise is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoisePlacement {
    /// The server noises the aggregated delta (central / distributed DP).
    Central,
    /// Each client noises its own delta before upload (local DP).
    Local,
}

impl std::fmt::Display for NoisePlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NoisePlacement::Central => write!(f, "central"),
            NoisePlacement::Local => write!(f, "local"),
        }
    }
}

/// Configuration of a differentially-private FL run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Maximum L2 norm of a client delta (the sensitivity bound `C`).
    pub clip_norm: f32,
    /// Noise multiplier `z`: the Gaussian standard deviation is `z · C`
    /// (local placement) or `z · C / K` (central placement).
    pub noise_multiplier: f32,
    /// Where the noise is injected.
    pub placement: NoisePlacement,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            placement: NoisePlacement::Central,
        }
    }
}

impl DpConfig {
    /// A configuration that disables noise (clipping only), useful for
    /// isolating the utility cost of clipping in ablations.
    pub fn clip_only(clip_norm: f32) -> Self {
        Self {
            clip_norm,
            noise_multiplier: 0.0,
            placement: NoisePlacement::Central,
        }
    }

    /// The per-coordinate Gaussian standard deviation applied at the point of
    /// injection, given `participants` clients in the round.
    pub fn noise_std(&self, participants: usize) -> f32 {
        match self.placement {
            NoisePlacement::Local => self.noise_multiplier * self.clip_norm,
            NoisePlacement::Central => {
                self.noise_multiplier * self.clip_norm / participants.max(1) as f32
            }
        }
    }
}

/// Adds i.i.d. Gaussian noise of standard deviation `std` to every coordinate.
pub fn add_gaussian_noise(values: &mut [f32], std: f32, rng: &mut SeededRng) {
    if std <= 0.0 {
        return;
    }
    for value in values.iter_mut() {
        *value += rng.normal_with(0.0, std);
    }
}

/// Adds i.i.d. Laplace noise of scale `b` to every coordinate (pure-ε DP for
/// L1 sensitivity; provided for completeness and for the LDP-FL comparison).
pub fn add_laplace_noise(values: &mut [f32], scale: f32, rng: &mut SeededRng) {
    if scale <= 0.0 {
        return;
    }
    for value in values.iter_mut() {
        // Inverse-CDF sampling: u ∈ (-0.5, 0.5), x = -b·sign(u)·ln(1-2|u|).
        let u = rng.uniform() - 0.5;
        let magnitude = -(1.0 - 2.0 * u.abs()).max(f32::MIN_POSITIVE).ln() * scale;
        *value += if u < 0.0 { -magnitude } else { magnitude };
    }
}

/// Clips `delta` to `config.clip_norm` and, for the local placement, perturbs
/// it with Gaussian noise of standard deviation `z · C`.
///
/// Central-placement noise is *not* added here — the server adds it once per
/// round to the aggregate via [`privatize_aggregate`].
pub fn privatize_client_delta(delta: &mut [f32], config: &DpConfig, rng: &mut SeededRng) {
    clip_to_norm(delta, config.clip_norm);
    if config.placement == NoisePlacement::Local {
        add_gaussian_noise(delta, config.noise_std(1), rng);
    }
}

/// Adds the server-side Gaussian perturbation of central DP to an already
/// averaged delta. No-op for the local placement (clients already noised).
pub fn privatize_aggregate(
    aggregate: &mut [f32],
    config: &DpConfig,
    participants: usize,
    rng: &mut SeededRng,
) {
    if config.placement == NoisePlacement::Central {
        add_gaussian_noise(aggregate, config.noise_std(participants), rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_nn::params::l2_norm;
    use fedcross_tensor::stats::{mean_of, std_dev_of};

    #[test]
    fn noise_std_scales_with_placement_and_participants() {
        let config = DpConfig {
            clip_norm: 2.0,
            noise_multiplier: 1.5,
            placement: NoisePlacement::Central,
        };
        assert!((config.noise_std(10) - 0.3).abs() < 1e-6);
        let local = DpConfig {
            placement: NoisePlacement::Local,
            ..config
        };
        assert!((local.noise_std(10) - 3.0).abs() < 1e-6);
        // Central with zero participants degrades gracefully to one.
        assert!((config.noise_std(0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn gaussian_noise_matches_requested_moments() {
        let mut rng = SeededRng::new(7);
        let mut values = vec![0.0f32; 20_000];
        add_gaussian_noise(&mut values, 0.5, &mut rng);
        assert!(mean_of(&values).abs() < 0.02);
        assert!((std_dev_of(&values) - 0.5).abs() < 0.02);
    }

    #[test]
    fn laplace_noise_matches_requested_scale() {
        let mut rng = SeededRng::new(8);
        let mut values = vec![0.0f32; 20_000];
        add_laplace_noise(&mut values, 0.5, &mut rng);
        assert!(mean_of(&values).abs() < 0.02);
        // Laplace(b) has standard deviation sqrt(2)·b ≈ 0.707.
        assert!((std_dev_of(&values) - 0.707).abs() < 0.05);
    }

    #[test]
    fn zero_std_noise_is_a_no_op() {
        let mut values = vec![1.0, -2.0, 3.0];
        let mut rng = SeededRng::new(9);
        add_gaussian_noise(&mut values, 0.0, &mut rng);
        add_laplace_noise(&mut values, 0.0, &mut rng);
        assert_eq!(values, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn local_placement_noises_the_client_delta() {
        let config = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            placement: NoisePlacement::Local,
        };
        let mut delta = vec![0.0f32; 64];
        let mut rng = SeededRng::new(10);
        privatize_client_delta(&mut delta, &config, &mut rng);
        assert!(l2_norm(&delta) > 0.0, "local DP must perturb the delta");
    }

    #[test]
    fn central_placement_only_clips_the_client_delta() {
        let config = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            placement: NoisePlacement::Central,
        };
        let mut delta = vec![3.0f32, 4.0];
        let mut rng = SeededRng::new(11);
        privatize_client_delta(&mut delta, &config, &mut rng);
        assert!((l2_norm(&delta) - 1.0).abs() < 1e-5);
        // Deterministic: no randomness consumed for the central placement.
        assert!((delta[0] - 0.6).abs() < 1e-5 && (delta[1] - 0.8).abs() < 1e-5);

        let mut aggregate = delta.clone();
        privatize_aggregate(&mut aggregate, &config, 4, &mut rng);
        assert_ne!(aggregate, delta, "server-side noise must be added");
    }

    #[test]
    fn clip_only_config_never_adds_noise() {
        let config = DpConfig::clip_only(0.5);
        let mut delta = vec![1.0f32, 0.0];
        let mut rng = SeededRng::new(12);
        privatize_client_delta(&mut delta, &config, &mut rng);
        let before = delta.clone();
        privatize_aggregate(&mut delta, &config, 4, &mut rng);
        assert_eq!(delta, before);
        assert!((l2_norm(&delta) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn placement_display_labels() {
        assert_eq!(NoisePlacement::Central.to_string(), "central");
        assert_eq!(NoisePlacement::Local.to_string(), "local");
    }
}
