//! Training checkpoints: save and resume federated runs.
//!
//! The paper's experiments run for thousands of communication rounds; a
//! production deployment of FedCross needs to survive server restarts without
//! losing the middleware models (which, unlike FedAvg's single global model,
//! are the *only* training state). A [`Checkpoint`] captures everything needed
//! to resume: the deployable global parameters, the optional middleware model
//! list, the round counter and the learning-curve history, serialised as JSON
//! next to the experiment results.

use crate::history::TrainingHistory;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// A resumable snapshot of a federated training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Name of the algorithm that produced the snapshot.
    pub algorithm: String,
    /// Number of communication rounds completed.
    pub rounds_completed: usize,
    /// The deployable global model parameters.
    pub global_params: Vec<f32>,
    /// FedCross middleware models (absent for single-model methods).
    pub middleware: Option<Vec<Vec<f32>>>,
    /// Learning curve recorded so far.
    pub history: TrainingHistory,
}

impl Checkpoint {
    /// Creates a snapshot for a single-model method (FedAvg-style).
    pub fn single_model(
        algorithm: impl Into<String>,
        rounds_completed: usize,
        global_params: Vec<f32>,
        history: TrainingHistory,
    ) -> Self {
        Self {
            algorithm: algorithm.into(),
            rounds_completed,
            global_params,
            middleware: None,
            history,
        }
    }

    /// Creates a snapshot for a multi-model method (FedCross), storing the
    /// middleware list alongside the derived global model.
    ///
    /// # Panics
    /// Panics if the middleware list is empty or its models have inconsistent
    /// lengths.
    pub fn multi_model(
        algorithm: impl Into<String>,
        rounds_completed: usize,
        global_params: Vec<f32>,
        middleware: Vec<Vec<f32>>,
        history: TrainingHistory,
    ) -> Self {
        assert!(!middleware.is_empty(), "middleware list must not be empty");
        let dim = middleware[0].len();
        assert!(
            middleware.iter().all(|m| m.len() == dim),
            "middleware models must have identical lengths"
        );
        Self {
            algorithm: algorithm.into(),
            rounds_completed,
            global_params,
            middleware: Some(middleware),
            history,
        }
    }

    /// Number of scalar parameters of the checkpointed model.
    pub fn param_count(&self) -> usize {
        self.global_params.len()
    }

    /// Serialises the checkpoint as pretty JSON to `path`, creating parent
    /// directories as needed.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let json = serde_json::to_string_pretty(self)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;
        fs::write(path, json)
    }

    /// Loads a checkpoint previously written by [`Checkpoint::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RoundRecord;

    fn sample_history() -> TrainingHistory {
        let mut history = TrainingHistory::new();
        history.push(RoundRecord {
            round: 0,
            accuracy: 0.2,
            test_loss: 2.1,
            train_loss: 2.3,
        });
        history.push(RoundRecord {
            round: 5,
            accuracy: 0.5,
            test_loss: 1.4,
            train_loss: 1.2,
        });
        history
    }

    #[test]
    fn single_model_checkpoint_round_trips_through_json() {
        let checkpoint = Checkpoint::single_model("fedavg", 6, vec![0.5, -1.0, 2.0], sample_history());
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-single");
        let path = dir.join("ckpt.json");
        checkpoint.save(&path).expect("save succeeds");
        let restored = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(restored, checkpoint);
        assert_eq!(restored.param_count(), 3);
        assert!(restored.middleware.is_none());
        assert_eq!(restored.history.len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn multi_model_checkpoint_preserves_the_middleware_list() {
        let middleware = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let checkpoint = Checkpoint::multi_model(
            "fedcross",
            10,
            vec![3.0, 4.0],
            middleware.clone(),
            TrainingHistory::new(),
        );
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-multi");
        let path = dir.join("ckpt.json");
        checkpoint.save(&path).expect("save succeeds");
        let restored = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(restored.middleware.as_deref(), Some(middleware.as_slice()));
        assert_eq!(restored.rounds_completed, 10);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic]
    fn empty_middleware_list_is_rejected() {
        let _ = Checkpoint::multi_model("fedcross", 0, vec![], vec![], TrainingHistory::new());
    }

    #[test]
    #[should_panic]
    fn ragged_middleware_list_is_rejected() {
        let _ = Checkpoint::multi_model(
            "fedcross",
            0,
            vec![0.0],
            vec![vec![1.0], vec![1.0, 2.0]],
            TrainingHistory::new(),
        );
    }

    #[test]
    fn loading_a_missing_file_is_an_error() {
        let missing = std::env::temp_dir().join("fedcross-checkpoint-does-not-exist.json");
        assert!(Checkpoint::load(missing).is_err());
    }

    #[test]
    fn loading_corrupt_json_is_an_invalid_data_error() {
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = Checkpoint::load(&path).expect_err("corrupt file must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(dir);
    }
}
