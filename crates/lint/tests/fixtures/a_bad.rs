// A001 fixture: allocations reachable from a hot-path root through
// MULTIPLE call hops must be flagged; a properly classified + reasoned
// site must stay silent. Linted as crate "tensor", file "aggregation.rs"
// (a kernel file, so `pub fn weighted_sum_into` is a hot-path root).

/// Hot-path root: pub `*_into` in a kernel file.
pub fn weighted_sum_into(out: &mut [f32], parts: &[&[f32]]) {
    accumulate(out, parts);
}

/// One hop from the root: the `.to_vec()` here is flagged.
fn accumulate(out: &mut [f32], parts: &[&[f32]]) {
    let staged = parts[0].to_vec();
    finalize(out, &staged);
}

/// Two hops from the root: still flagged (transitive reachability).
fn finalize(out: &mut [f32], staged: &[f32]) {
    let mut scratch = Vec::with_capacity(out.len());
    // alloc: bounded — per-call residual list capped at the lane count
    let residuals: Vec<f32> = staged.iter().map(|x| x * 0.5).collect();
    scratch.extend_from_slice(&residuals);
    out.copy_from_slice(&scratch[..out.len()]);
}

/// Allocating counterpart mandated by D006. Not a root and not reachable
/// from one, so its allocation is NOT an A001 finding.
pub fn weighted_sum(parts: &[&[f32]]) -> Vec<f32> {
    let mut out = vec![0.0f32; parts[0].len()];
    weighted_sum_into(&mut out, parts);
    out
}
