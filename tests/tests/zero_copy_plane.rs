//! Equivalence and allocation-behaviour tests for the zero-copy parameter
//! plane: the `ParamBlock` dispatch path and the in-place fused kernels must
//! be *bitwise* indistinguishable from the historical allocating pipeline,
//! and the steady-state round loop must actually reuse buffers instead of
//! cloning models.

use fedcross::aggregation::{
    cross_aggregate, cross_aggregate_all, cross_aggregate_all_into, cross_aggregate_into,
    cross_aggregate_propellers, cross_aggregate_propellers_into, global_model, global_model_into,
};
use fedcross::{FedCross, FedCrossConfig, SelectionStrategy, SimilarityMeasure};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::engine::RoundContext;
use fedcross_flsim::{CommTracker, FederatedAlgorithm, LocalTrainConfig};
use fedcross_nn::params::ParamBlock;
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn random_models(k: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    (0..k)
        .map(|_| (0..dim).map(|_| rng.uniform_range(-1.5, 1.5)).collect())
        .collect()
}

#[test]
fn in_place_kernels_match_allocating_kernels_bitwise() {
    for &(k, dim) in &[(2usize, 1usize), (4, 7), (6, 64), (10, 1000)] {
        let models = random_models(k, dim, 42 + dim as u64);
        let collaborators: Vec<usize> = (0..k).map(|i| (i + 1) % k).collect();
        for &alpha in &[0.5f32, 0.8, 0.99] {
            // Pairwise kernel.
            let allocating = cross_aggregate(&models[0], &models[1], alpha);
            let mut in_place = vec![f32::NAN; dim];
            cross_aggregate_into(&mut in_place, &models[0], &models[1], alpha);
            assert_eq!(bits(&allocating), bits(&in_place));

            // Whole-list kernel.
            let allocating_all = cross_aggregate_all(&models, &collaborators, alpha);
            let mut buffers = vec![vec![f32::NAN; dim]; k];
            {
                let mut targets: Vec<&mut [f32]> =
                    buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
                cross_aggregate_all_into(&mut targets, &models, &collaborators, alpha);
            }
            for (a, b) in allocating_all.iter().zip(&buffers) {
                assert_eq!(bits(a), bits(b));
            }

            // Propeller kernel.
            let refs: Vec<&[f32]> = models[1..].iter().map(|m| m.as_slice()).collect();
            let allocating_prop = cross_aggregate_propellers(&models[0], &refs, alpha);
            let mut prop_buffer = vec![f32::NAN; dim];
            cross_aggregate_propellers_into(&mut prop_buffer, &models[0], &refs, alpha);
            assert_eq!(bits(&allocating_prop), bits(&prop_buffer));
        }

        // Global-model generation.
        let allocating_global = global_model(&models);
        let mut global_buffer = vec![f32::NAN; dim];
        global_model_into(&mut global_buffer, &models);
        assert_eq!(bits(&allocating_global), bits(&global_buffer));
    }
}

#[test]
#[should_panic]
fn in_place_cross_aggregation_rejects_alpha_of_one() {
    let mut out = vec![0.0; 2];
    cross_aggregate_into(&mut out, &[1.0, 2.0], &[3.0, 4.0], 1.0);
}

#[test]
#[should_panic]
fn in_place_propellers_reject_length_mismatch() {
    let mut out = vec![0.0; 2];
    cross_aggregate_propellers_into(&mut out, &[1.0, 2.0], &[&[1.0][..]], 0.9);
}

fn tiny_setup(seed: u64, clients: usize) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: clients,
            samples_per_client: 20,
            test_samples: 30,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = fedcross_nn::models::cnn(
        (3, 16, 16),
        10,
        fedcross_nn::models::CnnConfig {
            conv_channels: (3, 6),
            fc_hidden: 12,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

/// One FedCross round written exactly as the seed implementation did it —
/// `Vec<f32>` middleware, clone-on-dispatch, allocating `cross_aggregate_all`
/// — used as the ground truth the ParamBlock pipeline must reproduce.
fn reference_round(
    middleware: &mut [Vec<f32>],
    round: usize,
    alpha: f32,
    strategy: SelectionStrategy,
    measure: SimilarityMeasure,
    ctx: &mut RoundContext<'_>,
) {
    let mut selected = ctx.select_clients();
    ctx.rng_mut().shuffle(&mut selected);
    let jobs: Vec<(usize, Vec<f32>)> = selected
        .iter()
        .zip(middleware.iter())
        .map(|(&client, model)| (client, model.clone()))
        .collect();
    let updates = ctx.local_train_batch(&jobs);
    let mut returned_slots = Vec::with_capacity(updates.len());
    let mut uploaded: Vec<Vec<f32>> = Vec::with_capacity(updates.len());
    for update in &updates {
        let slot = selected
            .iter()
            .position(|&client| client == update.client)
            .expect("selected client");
        returned_slots.push(slot);
        uploaded.push(update.params.to_vec());
    }
    assert!(uploaded.len() >= 2, "reference round assumes no dropout");
    let collaborators = strategy.select_all_with(round, &uploaded, measure);
    let fused = cross_aggregate_all(&uploaded, &collaborators, alpha);
    for (&slot, params) in returned_slots.iter().zip(fused) {
        middleware[slot] = params;
    }
}

#[test]
fn fedcross_round_on_param_block_plane_is_bitwise_identical_to_seed_pipeline() {
    let (data, template) = tiny_setup(7, 6);
    let k = 4;
    let rounds = 3;
    let init = template.params_flat();
    let config = FedCrossConfig {
        alpha: 0.9,
        strategy: SelectionStrategy::LowestSimilarity,
        measure: SimilarityMeasure::Cosine,
        ..Default::default()
    };
    let local = LocalTrainConfig::fast();
    let master = SeededRng::new(99);

    // Real pipeline: ParamBlock plane with in-place fused kernels.
    let mut algo = FedCross::new(config, init.clone(), k);
    // Reference pipeline: the seed's Vec<f32> clone-and-allocate storm.
    let mut reference: Vec<Vec<f32>> = vec![init; k];

    for round in 0..rounds {
        let mut comm = CommTracker::new();
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            local,
            k,
            master.fork(round as u64),
            &mut comm,
        );
        algo.run_round(round, &mut ctx);

        let mut ref_comm = CommTracker::new();
        let mut ref_ctx = RoundContext::new(
            &data,
            template.as_ref(),
            local,
            k,
            master.fork(round as u64),
            &mut ref_comm,
        );
        reference_round(
            &mut reference,
            round,
            config.alpha,
            config.strategy,
            config.measure,
            &mut ref_ctx,
        );

        for (slot, (block, expected)) in algo.middleware().iter().zip(&reference).enumerate() {
            assert_eq!(
                bits(block.as_slice()),
                bits(expected),
                "round {round}, middleware slot {slot} diverged from the seed pipeline"
            );
        }
    }

    // The deployable global model agrees too.
    assert_eq!(bits(&algo.global_params()), bits(&global_model(&reference)));
}

#[test]
fn construction_shares_one_buffer_across_all_middleware() {
    let algo = FedCross::new(FedCrossConfig::default(), vec![0.5; 1024], 8);
    let first = &algo.middleware()[0];
    assert_eq!(first.ref_count(), 8, "K middleware models share one buffer");
    assert!(algo
        .middleware()
        .iter()
        .all(|block| block.ptr_eq(first)));
}

#[test]
fn dispatch_is_by_reference_and_fusion_reuses_middleware_buffers() {
    let (data, template) = tiny_setup(11, 5);
    let k = 4;
    let config = FedCrossConfig {
        alpha: 0.9,
        ..Default::default()
    };
    let mut algo = FedCross::new(config, template.params_flat(), k);
    let local = LocalTrainConfig::fast();
    let master = SeededRng::new(5);

    // Dispatching jobs from the middleware is a reference bump, not a copy.
    let jobs: Vec<(usize, ParamBlock)> = algo
        .middleware()
        .iter()
        .enumerate()
        .map(|(i, m)| (i, m.clone()))
        .collect();
    for (job, block) in jobs.iter().zip(algo.middleware()) {
        assert!(job.1.ptr_eq(block), "dispatch must not copy the model");
    }
    drop(jobs);

    // Round 0 un-shares the initial buffer (copy-on-write); afterwards every
    // block is uniquely owned.
    let mut comm = CommTracker::new();
    let mut ctx = RoundContext::new(
        &data,
        template.as_ref(),
        local,
        k,
        master.fork(0),
        &mut comm,
    );
    algo.run_round(0, &mut ctx);
    assert!(algo.middleware().iter().all(|m| m.is_unique()));

    // From round 1 on, fusion writes into the retired buffers in place: the
    // backing allocations of all K middleware slots are stable.
    let pointers: Vec<*const f32> = algo
        .middleware()
        .iter()
        .map(|m| m.as_slice().as_ptr())
        .collect();
    for round in 1..3 {
        let mut comm = CommTracker::new();
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            local,
            k,
            master.fork(round as u64),
            &mut comm,
        );
        algo.run_round(round, &mut ctx);
        let now: Vec<*const f32> = algo
            .middleware()
            .iter()
            .map(|m| m.as_slice().as_ptr())
            .collect();
        assert_eq!(
            pointers, now,
            "round {round} reallocated a middleware buffer instead of reusing it"
        );
    }
}

#[test]
fn local_updates_share_worker_buffers_under_copy_on_write() {
    // Since the persistent worker plane (PR 3), an upload produced through a
    // RoundContext shares its buffer with the worker slot's reusable upload
    // block (one handle each), so a steady-state round uploads without
    // allocating. Copy-on-write keeps both sides safe: a server that mutates
    // its update duplicates the buffer and never perturbs the worker.
    let (data, template) = tiny_setup(13, 3);
    let mut comm = CommTracker::new();
    let mut ctx = RoundContext::new(
        &data,
        template.as_ref(),
        LocalTrainConfig::fast(),
        3,
        SeededRng::new(1),
        &mut comm,
    );
    let global = ParamBlock::from(template.params_flat());
    let jobs: Vec<(usize, ParamBlock)> = (0..3).map(|c| (c, global.clone())).collect();
    let mut updates = ctx.local_train_batch(&jobs);
    for update in &updates {
        assert_eq!(
            update.params.ref_count(),
            2,
            "an upload shares its buffer with exactly its worker slot"
        );
    }
    // Server-side mutation copies on write instead of corrupting the worker.
    let before = updates[0].params.to_vec();
    updates[0].params.make_mut()[0] += 1.0;
    assert!(updates[0].params.is_unique());
    assert_eq!(updates[0].params.as_slice()[1..], before[1..]);

    // The standalone client API keeps the historical unique-ownership
    // guarantee: its scratch (and the buffer handle) dies with the call.
    let mut model = template.clone_model();
    model.set_params_flat(&global);
    let update = fedcross_flsim::client::local_train(
        0,
        model.as_mut(),
        data.client(0),
        &LocalTrainConfig::fast(),
        &mut SeededRng::new(2),
        None,
    );
    assert!(update.params.is_unique());
}
