//! Network layers with explicit forward/backward passes.

mod activation;
mod batchnorm;
mod conv2d;
mod dropout;
mod embedding;
mod flatten;
mod linear;
mod lstm;
mod pooling;
mod residual;

pub use activation::{Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use flatten::Flatten;
pub use linear::Linear;
pub use lstm::Lstm;
pub use pooling::{GlobalAvgPool2d, MaxPool2d};
pub use residual::ResidualBlock;
