//! FedProx (Li et al. 2020): FedAvg with a proximal term on the local loss.

use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::engine::{
    canonicalize_updates, FederatedAlgorithm, RoundContext, RoundReport, TrainJob,
};
use fedcross_nn::params::{weighted_average_into, ParamBlock};

/// FedProx: each client minimises `f_i(w) + (μ/2)·||w - w_global||²`, which
/// adds `μ·(w - w_global)` to every gradient. The server aggregation is the
/// same as FedAvg, so the communication profile is identical (Table I: Low).
pub struct FedProx {
    global: ParamBlock,
    mu: f32,
}

impl FedProx {
    /// Creates FedProx with proximal coefficient `mu` (the paper tunes μ per
    /// dataset from {0.001, 0.01, 0.1, 1.0}).
    pub fn new(init_params: Vec<f32>, mu: f32) -> Self {
        assert!(!init_params.is_empty(), "initial parameters must not be empty");
        assert!(mu >= 0.0, "mu must be non-negative");
        Self {
            global: ParamBlock::from(init_params),
            mu,
        }
    }

    /// The proximal coefficient μ.
    pub fn mu(&self) -> f32 {
        self.mu
    }
}

impl FederatedAlgorithm for FedProx {
    fn name(&self) -> String {
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!("fedprox(mu={})", self.mu)
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let mu = self.mu;

        // The proximal anchor is the dispatched global model itself; sharing
        // the same ParamBlock costs one reference bump per client.
        let jobs: Vec<TrainJob> = selected
            .iter()
            .map(|&client| {
                // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                let anchor = self.global.clone();
                TrainJob {
                    client,
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    params: self.global.clone(),
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    correction: Some(Box::new(move |i, w, g| g + mu * (w - anchor[i]))),
                    extra_download: 0,
                    extra_upload: 0,
                }
            })
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let mut updates = ctx.local_train_jobs(jobs);
        // Aggregate in dispatch order regardless of upload arrival order
        // (bitwise no-op on an unshuffled round).
        canonicalize_updates(&mut updates, &selected);
        if updates.is_empty() {
            // Every selected client dropped out this round (possible under an
            // availability model); the global model simply carries over.
            return RoundReport::default();
        }

        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        let params: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
        let weights: Vec<f32> = updates
            .iter()
            .map(|u| u.num_samples.max(1) as f32)
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        weighted_average_into(self.global.make_mut(), &params, &weights);
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        // μ lives in the constructor (and in the name, which resume checks);
        // the global model is the whole cross-round state.
        Ok(AlgorithmState::single_model(self.global.clone()))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        self.global = state.expect_single_model(self.global.len())?.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::fedavg::FedAvg;
    use crate::baselines::test_support::{quick_config, tiny_image_setup};
    use fedcross_flsim::Simulation;
    use fedcross_nn::params::euclidean;

    #[test]
    fn fedprox_runs_with_low_comm_overhead() {
        let (data, template) = tiny_image_setup(0, 6);
        let mut algo = FedProx::new(template.params_flat(), 0.01);
        let params = template.param_count();
        let sim = Simulation::new(quick_config(3, 3), &data, template);
        let result = sim.run(&mut algo);
        assert_eq!(result.history.len(), 3);
        assert_eq!(
            result.comm.overhead_class(params),
            fedcross_flsim::CommOverheadClass::Low
        );
        assert!(algo.name().contains("0.01"));
    }

    #[test]
    fn large_mu_keeps_the_global_model_closer_to_initialisation() {
        let (data, template) = tiny_image_setup(1, 6);
        let init = template.params_flat();

        let run = |mu: f32| {
            let (data, template) = (data.clone(), template.clone_model());
            let mut algo = FedProx::new(init.clone(), mu);
            let sim = Simulation::new(quick_config(3, 3), &data, template);
            let _ = sim.run(&mut algo);
            euclidean(&algo.global_params(), &init)
        };
        let tight = run(10.0);
        let loose = run(0.0);
        assert!(
            tight < loose,
            "mu=10 distance {tight} should be below mu=0 distance {loose}"
        );
    }

    #[test]
    fn mu_zero_matches_fedavg_exactly() {
        let (data, template) = tiny_image_setup(2, 6);
        let init = template.params_flat();

        let mut prox = FedProx::new(init.clone(), 0.0);
        let sim1 = Simulation::new(quick_config(2, 3), &data, template.clone_model());
        let _ = sim1.run(&mut prox);

        let mut avg = FedAvg::new(init);
        let sim2 = Simulation::new(quick_config(2, 3), &data, template);
        let _ = sim2.run(&mut avg);

        let d = euclidean(&prox.global_params(), &avg.global_params());
        assert!(d < 1e-4, "FedProx(mu=0) diverged from FedAvg by {d}");
    }

    #[test]
    #[should_panic]
    fn negative_mu_is_rejected() {
        let _ = FedProx::new(vec![0.0], -0.1);
    }
}
