//! Resume-plane integration tests: a run checkpointed at round `R` and
//! resumed after a (simulated) server restart must be **bitwise identical**
//! to the uninterrupted run — same global parameters, same history records at
//! the same absolute rounds, same communication totals. Covers FedCross and
//! the stateful baselines (SCAFFOLD's control variates, FedGen's teacher,
//! CluSamp's update directions) under both full availability and random
//! client dropout, plus checkpoint validation and on-disk corruption safety.

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    AvailabilityModel, Checkpoint, FederatedAlgorithm, LocalTrainConfig, ResumeError, Simulation,
    SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;
use std::path::PathBuf;

fn setup(seed: u64) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 6,
            samples_per_client: 12,
            test_samples: 40,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (2, 4),
            fc_hidden: 8,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

fn sim_config(rounds: usize, eval_every: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round: 3,
        eval_every,
        eval_batch_size: 32,
        local: LocalTrainConfig::fast(),
        seed: 77,
    }
}

fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fedcross-resume-plane-{tag}.json"))
}

/// Runs `spec` uninterrupted, then as checkpoint-at-R + restart + resume
/// (through an actual JSON file round trip), and asserts the two trajectories
/// are indistinguishable bit for bit.
fn assert_restart_is_a_non_event(
    spec: AlgorithmSpec,
    availability: AvailabilityModel,
    tag: &str,
) {
    let (data, template) = setup(5);
    let config = sim_config(6, 2);
    let checkpoint_round = 3;
    let sim = Simulation::new(config, &data, template.clone_model())
        .with_availability(availability);
    let build = || build_algorithm(spec, template.params_flat(), data.num_clients(), 3);

    let mut whole = build();
    let uninterrupted = sim.run(whole.as_mut());

    // Phase 1 + checkpoint + (simulated) process death.
    let mut first = build();
    let partial = sim.run_segment(first.as_mut(), 0, checkpoint_round);
    let path = temp_path(tag);
    sim.checkpoint(first.as_ref(), &partial)
        .expect("snapshot supported")
        .save(&path)
        .expect("checkpoint saves");
    drop(first);

    // Restart: fresh algorithm, state restored from disk, run to the end.
    let restored = Checkpoint::load(&path).expect("checkpoint loads");
    let mut fresh = build();
    let resumed = sim
        .resume(&restored, fresh.as_mut())
        .expect("checkpoint matches the resuming simulation");
    let _ = std::fs::remove_file(&path);

    let label = spec.label();
    assert!(
        bitwise_eq(&whole.global_params(), &fresh.global_params()),
        "{label} ({tag}): resumed global params differ from the uninterrupted run"
    );
    assert_eq!(
        resumed.history, uninterrupted.history,
        "{label} ({tag}): history records diverged"
    );
    assert_eq!(
        resumed.comm, uninterrupted.comm,
        "{label} ({tag}): communication totals diverged"
    );
    assert_eq!(resumed.rounds_completed, config.rounds);
    // The eval_every cadence is anchored to absolute rounds: evaluations land
    // on the same rounds as the uninterrupted run, including the forced final
    // one, with no duplicate at the resume boundary.
    let rounds: Vec<usize> = resumed.history.records().iter().map(|r| r.round).collect();
    assert_eq!(rounds, vec![0, 2, 4, 5], "{label} ({tag}): eval cadence shifted");
}

#[test]
fn fedcross_restart_is_a_non_event_when_always_on() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::fedcross_default(),
        AvailabilityModel::AlwaysOn,
        "fedcross-on",
    );
}

#[test]
fn fedcross_restart_is_a_non_event_under_random_dropout() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::fedcross_default(),
        AvailabilityModel::RandomDropout { prob: 0.3 },
        "fedcross-drop",
    );
}

#[test]
fn scaffold_restart_is_a_non_event_when_always_on() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::Scaffold,
        AvailabilityModel::AlwaysOn,
        "scaffold-on",
    );
}

#[test]
fn scaffold_restart_is_a_non_event_under_random_dropout() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::Scaffold,
        AvailabilityModel::RandomDropout { prob: 0.3 },
        "scaffold-drop",
    );
}

#[test]
fn fedgen_restart_is_a_non_event_when_always_on() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::FedGen,
        AvailabilityModel::AlwaysOn,
        "fedgen-on",
    );
}

#[test]
fn fedgen_restart_is_a_non_event_under_random_dropout() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::FedGen,
        AvailabilityModel::RandomDropout { prob: 0.3 },
        "fedgen-drop",
    );
}

#[test]
fn remaining_baselines_resume_bitwise_too() {
    for (spec, tag) in [
        (AlgorithmSpec::FedAvg, "fedavg"),
        (AlgorithmSpec::FedProx { mu: 0.01 }, "fedprox"),
        (AlgorithmSpec::CluSamp, "clusamp"),
    ] {
        assert_restart_is_a_non_event(spec, AvailabilityModel::AlwaysOn, tag);
    }
}

#[test]
fn resume_aligns_eval_cadence_even_from_an_off_cadence_checkpoint() {
    // Checkpoint at round 2, between the eval rounds 0 and 3 of an
    // eval_every = 3 schedule: the resumed run must evaluate at exactly the
    // absolute rounds the uninterrupted run does.
    let (data, template) = setup(6);
    let config = sim_config(7, 3);
    let sim = Simulation::new(config, &data, template.clone_model());
    let build =
        || build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);

    let mut whole = build();
    let uninterrupted = sim.run(whole.as_mut());
    let expected: Vec<usize> =
        uninterrupted.history.records().iter().map(|r| r.round).collect();
    assert_eq!(expected, vec![0, 3, 6]);

    let mut first = build();
    let partial = sim.run_segment(first.as_mut(), 0, 2);
    let checkpoint = sim.checkpoint(first.as_ref(), &partial).expect("snapshot supported");
    let mut fresh = build();
    let resumed = sim.resume(&checkpoint, fresh.as_mut()).expect("resume succeeds");
    let rounds: Vec<usize> = resumed.history.records().iter().map(|r| r.round).collect();
    assert_eq!(rounds, expected, "cadence must be anchored to absolute rounds");
    assert_eq!(resumed.history, uninterrupted.history);
}

#[test]
fn a_foreign_checkpoint_is_rejected_loudly() {
    let (data, template) = setup(7);
    let config = sim_config(6, 2);
    let sim = Simulation::new(config, &data, template.clone_model());

    // A FedAvg checkpoint must not silently feed a FedCross run.
    let mut fedavg =
        build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);
    let partial = sim.run_segment(fedavg.as_mut(), 0, 2);
    let checkpoint = sim.checkpoint(fedavg.as_ref(), &partial).expect("snapshot supported");

    let mut fedcross = build_algorithm(
        AlgorithmSpec::fedcross_default(),
        template.params_flat(),
        data.num_clients(),
        3,
    );
    match sim.resume(&checkpoint, fedcross.as_mut()) {
        Err(ResumeError::AlgorithmMismatch { checkpoint, resuming }) => {
            assert_eq!(checkpoint, "fedavg");
            assert!(resuming.contains("fedcross"));
        }
        other => panic!("expected AlgorithmMismatch, got {other:?}"),
    }

    // A checkpoint from a different template size must not load either.
    let mut rng = SeededRng::new(8);
    let small = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (2, 2),
            fc_hidden: 4,
            kernel: 3,
        },
        &mut rng,
    );
    let small_sim = Simulation::new(config, &data, small.clone_model());
    let mut fresh =
        build_algorithm(AlgorithmSpec::FedAvg, small.params_flat(), data.num_clients(), 3);
    assert!(matches!(
        small_sim.resume(&checkpoint, fresh.as_mut()),
        Err(ResumeError::ParamCountMismatch { .. })
    ));

    // A different availability model changes the trajectory: rejected.
    let dropout_sim = Simulation::new(config, &data, template.clone_model())
        .with_availability(AvailabilityModel::RandomDropout { prob: 0.3 });
    let mut fresh =
        build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);
    assert!(matches!(
        dropout_sim.resume(&checkpoint, fresh.as_mut()),
        Err(ResumeError::ConfigMismatch { .. })
    ));

    // A different federation (here: more clients) changes the trajectory
    // too — the fingerprint covers the dataset shape, so this is rejected
    // instead of silently resuming with different client selections.
    let mut rng = SeededRng::new(11);
    let other_data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 8,
            samples_per_client: 12,
            test_samples: 40,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let other_data_sim = Simulation::new(config, &other_data, template.clone_model());
    let mut fresh = build_algorithm(
        AlgorithmSpec::FedAvg,
        template.params_flat(),
        other_data.num_clients(),
        3,
    );
    assert!(matches!(
        other_data_sim.resume(&checkpoint, fresh.as_mut()),
        Err(ResumeError::ConfigMismatch { .. })
    ));
}

#[test]
fn a_middleware_count_mismatch_is_rejected_loudly() {
    use fedcross::{FedCross, FedCrossConfig};
    // A K = 4 FedCross state must not restore into a K = 3 instance, even
    // though the algorithm family matches.
    let init = vec![0.5f32; 16];
    let four = FedCross::new(FedCrossConfig::default(), init.clone(), 4);
    let mut three = FedCross::new(FedCrossConfig::default(), init, 3);
    let err = three
        .restore_state(&four.snapshot_state().expect("snapshot supported"))
        .expect_err("K mismatch must fail");
    assert!(
        err.to_string().contains("middleware count mismatch"),
        "unexpected error: {err}"
    );
}

#[test]
fn checkpoint_corruption_cannot_happen_mid_save_and_is_detected_on_load() {
    let (data, template) = setup(9);
    let config = sim_config(4, 2);
    let sim = Simulation::new(config, &data, template.clone_model());
    let mut algo =
        build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);
    let partial = sim.run_segment(algo.as_mut(), 0, 2);
    let checkpoint = sim.checkpoint(algo.as_ref(), &partial).expect("snapshot supported");

    let dir = std::env::temp_dir().join("fedcross-resume-plane-corruption");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.json");
    checkpoint.save(&path).expect("initial save succeeds");

    // A "crash" during a later save (simulated by blocking the temp path)
    // must leave the previous checkpoint fully intact and loadable.
    let tmp = dir.join("ckpt.json.tmp");
    std::fs::create_dir_all(&tmp).unwrap();
    assert!(checkpoint.save(&path).is_err(), "blocked temp write must error");
    let survivor = Checkpoint::load(&path).expect("previous checkpoint survives");
    assert_eq!(survivor, checkpoint);
    std::fs::remove_dir_all(&tmp).unwrap();

    // A truncated file — what a non-atomic in-place write would leave after
    // a crash — is detected on load instead of half-restoring.
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &json[..json.len() / 2]).unwrap();
    let err = Checkpoint::load(&path).expect_err("truncated checkpoint must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resumed_run_can_extend_the_total_round_count() {
    // The fingerprint deliberately excludes `rounds`: a checkpoint from a
    // 4-round config resumes under a 6-round config (same everything else),
    // and the overlapping prefix stays bitwise identical.
    let (data, template) = setup(10);
    let short = sim_config(4, 2);
    let long = sim_config(6, 2);
    let build =
        || build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);

    let short_sim = Simulation::new(short, &data, template.clone_model());
    let mut algo = build();
    let partial = short_sim.run_segment(algo.as_mut(), 0, 2);
    let checkpoint = short_sim
        .checkpoint(algo.as_ref(), &partial)
        .expect("snapshot supported");

    let long_sim = Simulation::new(long, &data, template.clone_model());
    let mut extended = build();
    let resumed = long_sim
        .resume(&checkpoint, extended.as_mut())
        .expect("longer run accepts the checkpoint");
    assert_eq!(resumed.rounds_completed, 6);

    let mut reference = build();
    let uninterrupted = long_sim.run(reference.as_mut());
    assert!(bitwise_eq(&reference.global_params(), &extended.global_params()));
    assert_eq!(resumed.history, uninterrupted.history);
}
