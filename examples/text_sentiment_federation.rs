//! Federated sentiment analysis over naturally non-IID users (the Sent140
//! scenario): every client is one user with their own vocabulary and topic
//! bias, and an LSTM classifier is trained without any raw text leaving the
//! clients.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin text_sentiment_federation
//! ```

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::{FederatedDataset, SynthSent140Config};
use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{lstm_classifier, LstmConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(5);
    let data = FederatedDataset::synth_sent140(
        &SynthSent140Config {
            num_clients: 20,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "federation: {} users, {} tweets, binary sentiment, test set {}",
        data.num_clients(),
        data.total_train_samples(),
        data.test_set().len()
    );

    let template = lstm_classifier(
        LstmConfig {
            vocab: 64,
            embed_dim: 16,
            hidden_dim: 32,
        },
        2,
        &mut rng,
    );
    println!("model: LSTM sentiment classifier ({} parameters)", template.param_count());

    let sim_config = SimulationConfig {
        rounds: 15,
        clients_per_round: 4,
        eval_every: 3,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.1,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 13,
    };

    for spec in [
        AlgorithmSpec::FedAvg,
        AlgorithmSpec::FedProx { mu: 0.01 },
        AlgorithmSpec::fedcross_default(),
    ] {
        let mut algorithm = build_algorithm(
            spec,
            template.params_flat(),
            data.num_clients(),
            sim_config.clients_per_round,
        );
        let result = Simulation::new(sim_config, &data, template.clone_model())
            .run(algorithm.as_mut());
        println!(
            "{:<9} best accuracy {:>5.1}%  final accuracy {:>5.1}%",
            spec.label(),
            result.best_accuracy_pct(),
            result.final_accuracy_pct()
        );
    }
    println!("\nExpected: all methods learn sentiment well above the 50% chance level from");
    println!("user-local data only; FedCross is competitive with or better than the baselines.");
}
