//! Compressed uploads: shrink client→server traffic with quantization and
//! top-k sparsification and see what it costs in accuracy.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin compressed_uploads
//! ```

use fedcross_compress::{CompressedFedAvg, Compressor, Identity, TopK, UniformQuantizer};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{FederatedAlgorithm, LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(33);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 12,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );
    println!(
        "federation: {} clients, model: {} parameters ({:.2} MiB per upload)\n",
        data.num_clients(),
        template.param_count(),
        template.param_count() as f64 * 4.0 / (1024.0 * 1024.0)
    );

    let sim_config = SimulationConfig {
        rounds: 20,
        clients_per_round: 4,
        eval_every: 5,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 11,
    };

    let schemes: Vec<(Box<dyn Compressor>, bool)> = vec![
        (Box::new(Identity), false),
        (Box::new(UniformQuantizer::new(8, true)), false),
        (Box::new(TopK::new(0.1)), true),
    ];

    for (compressor, error_feedback) in schemes {
        let mut algo = CompressedFedAvg::new(
            template.params_flat(),
            compressor,
            error_feedback,
            77,
        );
        let name = algo.name();
        let result = Simulation::new(sim_config, &data, template.clone_model()).run(&mut algo);
        let stats = algo.upload_stats();
        println!(
            "{name:<32} best accuracy {:>5.1}%   upload {:>5.1}x smaller   saved {:.2} MiB",
            result.best_accuracy_pct(),
            stats.ratio(),
            stats.saved_mib()
        );
    }

    println!("\nExpected: 8-bit quantized uploads match the uncompressed accuracy at ~4x less");
    println!("traffic; top-10% sparsification with error feedback trades a little accuracy for");
    println!("~5x less traffic.");
}
