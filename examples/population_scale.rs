//! A million-client federation on a laptop: the sharded lazy data plane.
//!
//! The eager [`FederatedDataset`] materialises every client's shard up
//! front — at 10^6 clients that is gigabytes of tensors before the first
//! round runs. This example builds the same federation as a
//! [`SynthTaskSource`] instead: every client's shard is a pure function of
//! `(task_seed, client_id)`, materialised on demand through a bounded
//! [`ShardPlane`] cache (here: 32 shards resident, 8 prefetch slots), so
//! total memory stays flat no matter the population.
//!
//! Because shards are derived, not stored, eviction is a bitwise no-op and
//! the whole run stays deterministic: we checkpoint FedCross half-way,
//! "restart the server", resume — and assert the resumed run is **bitwise
//! identical** to an uninterrupted one, exactly as on the eager backend.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin population_scale
//! ```

use std::sync::Arc;

use fedcross::{FedCross, FedCrossConfig};
use fedcross_data::federated::SynthCifar10Config;
use fedcross_data::{Heterogeneity, ShardPlane, ShardPlaneConfig, SynthTaskSource};
use fedcross_flsim::{
    Checkpoint, FederatedAlgorithm, LocalTrainConfig, Simulation, SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

const NUM_CLIENTS: usize = 1_000_000;
const K: usize = 10;

fn main() {
    // One million clients, constructed in O(1): only the shared class
    // prototypes and the global test set are materialised here.
    let source = SynthTaskSource::cifar10(
        &SynthCifar10Config {
            num_clients: NUM_CLIENTS,
            samples_per_client: 20,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.3),
        55,
    );
    let plane = ShardPlane::new(
        Arc::new(source),
        ShardPlaneConfig {
            capacity: 32,
            prefetch_depth: 8,
        },
    );
    println!(
        "federation: {} clients, lazily sharded ({} resident + {} prefetch slots)",
        plane.num_clients(),
        plane.config().capacity,
        plane.config().prefetch_depth,
    );

    let mut rng = SeededRng::new(55);
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (4, 8),
            fc_hidden: 16,
            kernel: 3,
        },
        &mut rng,
    );

    let fed_config = FedCrossConfig {
        alpha: 0.9,
        ..Default::default()
    };
    let sim_config = SimulationConfig {
        rounds: 6,
        clients_per_round: K,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 13,
    };
    let halfway = sim_config.rounds / 2;
    let sim = Simulation::new_sharded(sim_config, &plane, template.clone_model());

    // Reference: the full run with no interruption.
    let mut reference = FedCross::new(fed_config, template.params_flat(), K);
    let uninterrupted = sim.run(&mut reference);
    println!(
        "uninterrupted run: {} rounds, final accuracy {:.1}%",
        sim_config.rounds,
        uninterrupted.final_accuracy_pct()
    );

    // Phase 1: half the run, then an atomic checkpoint.
    let mut algo = FedCross::new(fed_config, template.params_flat(), K);
    let partial = sim.run_segment(&mut algo, 0, halfway);
    let checkpoint_path = std::env::temp_dir().join("fedcross-population-scale.json");
    let checkpoint = sim
        .checkpoint(&algo, &partial)
        .expect("FedCross supports checkpointing");
    checkpoint.save(&checkpoint_path).expect("checkpoint saves");
    println!(
        "checkpointed {} middleware models at round {} to {}",
        checkpoint.state.models.len(),
        checkpoint.rounds_completed,
        checkpoint_path.display()
    );

    // Phase 2: restart and resume. Client shards this half touches are
    // re-materialised from (task_seed, client_id) — nothing about them was
    // ever persisted, and nothing about them could have drifted.
    let restored = Checkpoint::load(&checkpoint_path).expect("checkpoint loads");
    let mut resumed = FedCross::new(fed_config, template.params_flat(), K);
    let second = sim
        .resume(&restored, &mut resumed)
        .expect("checkpoint matches the resuming simulation");
    println!(
        "resumed run: rounds {halfway}..{}, final accuracy {:.1}%",
        sim_config.rounds,
        second.final_accuracy_pct()
    );

    let identical = reference
        .global_params()
        .iter()
        .zip(resumed.global_params())
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && uninterrupted.history == second.history
        && uninterrupted.comm == second.comm;
    println!(
        "resumed run is bitwise identical to the uninterrupted run: {}",
        if identical { "yes" } else { "NO (bug!)" }
    );
    assert!(identical, "resume must be a non-event at any population size");

    let stats = plane.stats();
    println!(
        "shard plane over all three runs: {} hits, {} misses, {} prefetched, \
         {} evictions, peak {} resident shards (of {} clients)",
        stats.hits,
        stats.misses,
        stats.prefetched,
        stats.evictions,
        stats.peak_resident,
        NUM_CLIENTS
    );
    assert!(
        stats.peak_resident <= plane.config().capacity + plane.config().prefetch_depth,
        "resident shards must stay within capacity + prefetch depth"
    );

    let _ = std::fs::remove_file(&checkpoint_path);
    println!("\nExpected: a million-client run whose memory footprint is a few dozen");
    println!("shards, with checkpoint/resume still bitwise exact.");
}
