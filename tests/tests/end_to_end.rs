//! End-to-end integration tests: every FL method of the paper runs against
//! the same engine, data and model template, learns something, and exhibits
//! the communication profile Table I claims.

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{CommOverheadClass, LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;

fn setup(seed: u64, clients: usize, samples: usize) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: clients,
            samples_per_client: samples,
            test_samples: 80,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (4, 8),
            fc_hidden: 16,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

fn sim_config(rounds: usize, k: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round: k,
        eval_every: 1,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 5,
    }
}

#[test]
fn every_paper_method_runs_through_the_same_engine() {
    let (data, template) = setup(0, 8, 20);
    for spec in AlgorithmSpec::paper_lineup() {
        let mut algorithm = build_algorithm(spec, template.params_flat(), data.num_clients(), 3);
        let result =
            Simulation::new(sim_config(2, 3), &data, template.clone_model()).run(algorithm.as_mut());
        assert_eq!(result.history.len(), 2, "{} did not record history", spec.label());
        assert!(
            algorithm.global_params().iter().all(|p| p.is_finite()),
            "{} produced non-finite parameters",
            spec.label()
        );
        assert_eq!(result.comm.rounds, 2);
        assert_eq!(result.comm.client_contacts, 6);
    }
}

#[test]
fn communication_overhead_classes_match_table_one() {
    let (data, template) = setup(1, 8, 15);
    let model_params = template.param_count();
    let expectations = [
        (AlgorithmSpec::FedAvg, CommOverheadClass::Low),
        (AlgorithmSpec::FedProx { mu: 0.01 }, CommOverheadClass::Low),
        (AlgorithmSpec::Scaffold, CommOverheadClass::High),
        (AlgorithmSpec::FedGen, CommOverheadClass::Medium),
        (AlgorithmSpec::CluSamp, CommOverheadClass::Low),
        (AlgorithmSpec::fedcross_default(), CommOverheadClass::Low),
    ];
    for (spec, expected) in expectations {
        let mut algorithm = build_algorithm(spec, template.params_flat(), data.num_clients(), 3);
        let result =
            Simulation::new(sim_config(2, 3), &data, template.clone_model()).run(algorithm.as_mut());
        assert_eq!(
            result.comm.overhead_class(model_params),
            expected,
            "{} communication class mismatch",
            spec.label()
        );
    }
}

#[test]
fn fedcross_is_not_inferior_to_fedavg_on_a_skewed_federation() {
    // The paper's headline claim (FedCross wins) needs paper-scale training to
    // show its full margin; at integration-test scale we assert learning above
    // chance and non-inferiority with a small tolerance.
    let (data, template) = setup(2, 10, 40);
    let config = SimulationConfig {
        rounds: 12,
        clients_per_round: 4,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.08,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 6,
    };

    let run = |spec: AlgorithmSpec| {
        let mut algorithm =
            build_algorithm(spec, template.params_flat(), data.num_clients(), 4);
        Simulation::new(config, &data, template.clone_model())
            .run(algorithm.as_mut())
            .history
            .best_accuracy()
    };
    let fedavg = run(AlgorithmSpec::FedAvg);
    let fedcross = run(AlgorithmSpec::FedCross {
        alpha: 0.9,
        strategy: fedcross::SelectionStrategy::LowestSimilarity,
        acceleration: fedcross::Acceleration::None,
    });
    assert!(fedavg > 0.15, "FedAvg failed to learn ({fedavg})");
    assert!(fedcross > 0.15, "FedCross failed to learn ({fedcross})");
    // At this 12-round budget FedCross' middleware models are still unifying, so
    // it trails a saturated FedAvg on the easy library-default data; the paper's
    // full-margin superiority needs paper-scale rounds (see EXPERIMENTS.md). The
    // robust invariant at integration-test scale is that FedCross stays within
    // striking distance rather than diverging.
    assert!(
        fedcross >= 0.6 * fedavg,
        "FedCross ({fedcross}) fell well behind FedAvg ({fedavg})"
    );
}

#[test]
fn simulations_are_reproducible_for_a_fixed_seed() {
    let (data, template) = setup(3, 6, 15);
    let run = || {
        let mut algorithm = build_algorithm(
            AlgorithmSpec::fedcross_default(),
            template.params_flat(),
            data.num_clients(),
            3,
        );
        Simulation::new(sim_config(3, 3), &data, template.clone_model())
            .run(algorithm.as_mut());
        algorithm.global_params()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_produce_different_trajectories() {
    let (data, template) = setup(4, 6, 15);
    let run = |seed: u64| {
        let mut config = sim_config(3, 3);
        config.seed = seed;
        let mut algorithm = build_algorithm(
            AlgorithmSpec::FedAvg,
            template.params_flat(),
            data.num_clients(),
            3,
        );
        Simulation::new(config, &data, template.clone_model()).run(algorithm.as_mut());
        algorithm.global_params()
    };
    assert_ne!(run(1), run(2));
}
