//! Criterion benchmarks of population scaling on the sharded lazy data
//! plane: per-round cost at N = 10^3 … 10^6 clients with a fixed cohort of
//! K = 10.
//!
//! On the eager backend, building a million-client federation alone would
//! allocate ~10 GB before the first round; the lazy [`ShardPlane`] makes
//! population size a free parameter. These benchmarks pin the two costs that
//! must stay (near-)flat in N for that claim to hold:
//!
//! * `sparse_selection/N` — Floyd's O(k) cohort sampler on its own
//!   ([`SeededRng::sample_without_replacement_sparse`]); the dense sampler
//!   is O(N) and would dominate a million-client round.
//! * `steady_round/N` — one full FedAvg communication round on a warm
//!   worker pool: cohort selection, lazy materialisation of the K selected
//!   shards through the bounded cache, local training and aggregation.
//!   Every iteration draws a fresh round cohort, so at large N this measures
//!   the honest cache-miss path, not a warmed-over cohort.
//!
//! The per-round cost is dominated by K local trainings (constant in N);
//! the N-dependent parts — selection and shard synthesis bookkeeping — must
//! stay negligible beside them.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::SynthCifar10Config;
use fedcross_data::{Heterogeneity, ShardPlane, ShardPlaneConfig, SynthTaskSource};
use fedcross_flsim::engine::RoundContext;
use fedcross_flsim::{ClientWorkerPool, CommTracker, LocalTrainConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

/// Cohort size — fixed across the population sweep.
const K: usize = 10;

const POPULATIONS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

fn bench_population_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_scale");
    group.sample_size(10);

    let local = LocalTrainConfig {
        epochs: 1,
        batch_size: 8,
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 0.0,
    };

    for &n in &POPULATIONS {
        group.bench_with_input(BenchmarkId::new("sparse_selection", n), &n, |b, &n| {
            let mut rng = SeededRng::new(11);
            b.iter(|| black_box(rng.sample_without_replacement_sparse(n, K)))
        });

        let source = SynthTaskSource::cifar10(
            &SynthCifar10Config {
                num_clients: n,
                samples_per_client: 12,
                test_samples: 20,
                ..Default::default()
            },
            Heterogeneity::Dirichlet(0.3),
            7,
        );
        let plane = ShardPlane::new(
            Arc::new(source),
            ShardPlaneConfig {
                capacity: 32,
                prefetch_depth: 8,
            },
        );
        let mut model_rng = SeededRng::new(6);
        let template = cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (2, 4),
                fc_hidden: 8,
                kernel: 3,
            },
            &mut model_rng,
        );

        group.bench_with_input(BenchmarkId::new("steady_round", n), &n, |b, &n| {
            let mut pool = ClientWorkerPool::new();
            let mut algorithm =
                build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), n, K);
            let master = SeededRng::new(9);
            let mut round = 0u64;
            b.iter(|| {
                // A fresh round stream per iteration: at large N each round
                // selects an almost surely disjoint cohort, so the cache
                // misses and materialises exactly as a real long run does.
                round += 1;
                let rng = master.fork(round); // fork: construction-seed
                let mut comm = CommTracker::new();
                let mut ctx =
                    RoundContext::new_sharded(&plane, template.as_ref(), local, K, rng, &mut comm)
                        .with_worker_pool(&mut pool);
                black_box(algorithm.run_round(round as usize, &mut ctx));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_population_scale);
criterion_main!(benches);
