//! Rényi-DP accounting for the subsampled Gaussian mechanism.
//!
//! Differentially-private FL needs to answer "after `T` rounds with noise
//! multiplier `z` and client sampling rate `q`, what (ε, δ) have we spent?".
//! This module implements the standard moments-accountant style answer:
//!
//! 1. the per-round Rényi divergence bound of the subsampled Gaussian
//!    mechanism at order `α` (the leading-order bound of Abadi et al. 2016,
//!    `q²·α / ((1-q)·z²)`, exact `α/(2z²)` when every client participates),
//! 2. linear composition of the per-round bound over rounds,
//! 3. conversion of the composed Rényi bound to an (ε, δ) guarantee by
//!    minimising `rdp(α) + log(1/δ)/(α-1)` over a grid of orders.
//!
//! The bound is the *leading-order* subsampling amplification term, which is
//! the regime (small `q`, `z ≳ 1`) the benchmark harness sweeps; DESIGN.md
//! records this as the accountant's scope.

use serde::{Deserialize, Serialize};

/// Orders α over which the RDP → (ε, δ) conversion is minimised.
const DEFAULT_ORDERS: &[f64] = &[
    1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0, 32.0,
    48.0, 64.0, 96.0, 128.0, 256.0, 512.0,
];

/// Tracks the Rényi-DP budget spent by a subsampled Gaussian training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RdpAccountant {
    noise_multiplier: f64,
    sampling_rate: f64,
    rounds: u64,
}

impl RdpAccountant {
    /// Creates an accountant for a schedule with the given noise multiplier
    /// `z` (noise std divided by sensitivity) and per-round client sampling
    /// rate `q = K / N`.
    ///
    /// # Panics
    /// Panics if the sampling rate lies outside `(0, 1]` or the noise
    /// multiplier is negative.
    pub fn new(noise_multiplier: f32, sampling_rate: f32) -> Self {
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "sampling rate must lie in (0, 1]"
        );
        assert!(noise_multiplier >= 0.0, "noise multiplier must be >= 0");
        Self {
            noise_multiplier: noise_multiplier as f64,
            sampling_rate: sampling_rate as f64,
            rounds: 0,
        }
    }

    /// Number of rounds recorded so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Records one completed round.
    pub fn step(&mut self) {
        self.rounds += 1;
    }

    /// Records `rounds` completed rounds at once.
    pub fn step_many(&mut self, rounds: u64) {
        self.rounds += rounds;
    }

    /// Per-round Rényi divergence bound at order `alpha`.
    fn rdp_per_round(&self, alpha: f64) -> f64 {
        if self.noise_multiplier == 0.0 {
            return f64::INFINITY;
        }
        let z2 = self.noise_multiplier * self.noise_multiplier;
        if (self.sampling_rate - 1.0).abs() < 1e-12 {
            // Plain Gaussian mechanism: ε(α) = α / (2 z²).
            alpha / (2.0 * z2)
        } else {
            // Leading-order subsampled-Gaussian bound (moments accountant):
            // ε(α) ≤ q² α / ((1 - q) z²).
            let q = self.sampling_rate;
            q * q * alpha / ((1.0 - q) * z2)
        }
    }

    /// The (ε, δ) guarantee after the recorded number of rounds.
    pub fn epsilon(&self, delta: f64) -> f64 {
        self.epsilon_after(self.rounds, delta)
    }

    /// The (ε, δ) guarantee after an arbitrary number of rounds (without
    /// mutating the accountant), minimised over the default order grid.
    pub fn epsilon_after(&self, rounds: u64, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        if rounds == 0 {
            return 0.0;
        }
        if self.noise_multiplier == 0.0 {
            return f64::INFINITY;
        }
        let log_inv_delta = (1.0 / delta).ln();
        DEFAULT_ORDERS
            .iter()
            .map(|&alpha| {
                let total_rdp = rounds as f64 * self.rdp_per_round(alpha);
                total_rdp + log_inv_delta / (alpha - 1.0)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest number of rounds after which the (ε, δ) budget is
    /// exceeded, or `None` if `max_rounds` rounds stay within budget.
    pub fn rounds_until_budget(&self, epsilon: f64, delta: f64, max_rounds: u64) -> Option<u64> {
        (1..=max_rounds).find(|&t| self.epsilon_after(t, delta) > epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rounds_spend_nothing() {
        let accountant = RdpAccountant::new(1.0, 0.1);
        assert_eq!(accountant.epsilon(1e-5), 0.0);
        assert_eq!(accountant.rounds(), 0);
    }

    #[test]
    fn epsilon_grows_with_rounds() {
        let accountant = RdpAccountant::new(1.1, 0.1);
        let e10 = accountant.epsilon_after(10, 1e-5);
        let e100 = accountant.epsilon_after(100, 1e-5);
        let e1000 = accountant.epsilon_after(1000, 1e-5);
        assert!(e10 > 0.0);
        assert!(e100 > e10);
        assert!(e1000 > e100);
        assert!(e1000.is_finite());
    }

    #[test]
    fn epsilon_shrinks_with_more_noise() {
        let low_noise = RdpAccountant::new(0.8, 0.1).epsilon_after(200, 1e-5);
        let high_noise = RdpAccountant::new(2.0, 0.1).epsilon_after(200, 1e-5);
        assert!(high_noise < low_noise);
    }

    #[test]
    fn epsilon_shrinks_with_smaller_sampling_rate() {
        let dense = RdpAccountant::new(1.1, 0.5).epsilon_after(200, 1e-5);
        let sparse = RdpAccountant::new(1.1, 0.05).epsilon_after(200, 1e-5);
        assert!(sparse < dense);
    }

    #[test]
    fn no_noise_means_infinite_epsilon() {
        let accountant = RdpAccountant::new(0.0, 0.1);
        assert!(accountant.epsilon_after(1, 1e-5).is_infinite());
    }

    #[test]
    fn full_participation_uses_the_plain_gaussian_bound() {
        // With q = 1 and one round, ε ≈ min_α α/(2z²) + log(1/δ)/(α-1),
        // which for z = 4 and δ = 1e-5 is well below the q→1 limit of the
        // subsampled formula (which would diverge).
        let accountant = RdpAccountant::new(4.0, 1.0);
        let eps = accountant.epsilon_after(1, 1e-5);
        assert!(eps.is_finite() && eps > 0.0);
        assert!(eps < 5.0, "one round of z=4 should be modest, got {eps}");
    }

    #[test]
    fn moments_accountant_magnitude_is_reasonable() {
        // z = 1.1, q = 0.01, T = 1000, δ = 1e-5: the literature reports ε in
        // the low single digits; the leading-order bound lands close to 2.
        let eps = RdpAccountant::new(1.1, 0.01).epsilon_after(1000, 1e-5);
        assert!(eps > 0.5 && eps < 4.0, "unexpected epsilon {eps}");
    }

    #[test]
    fn stepping_matches_epsilon_after() {
        let mut accountant = RdpAccountant::new(1.0, 0.2);
        for _ in 0..25 {
            accountant.step();
        }
        accountant.step_many(25);
        assert_eq!(accountant.rounds(), 50);
        let via_steps = accountant.epsilon(1e-6);
        let direct = accountant.epsilon_after(50, 1e-6);
        assert!((via_steps - direct).abs() < 1e-12);
    }

    #[test]
    fn rounds_until_budget_finds_the_crossing() {
        let accountant = RdpAccountant::new(1.0, 0.1);
        let budget = accountant.epsilon_after(100, 1e-5);
        let crossing = accountant
            .rounds_until_budget(budget, 1e-5, 500)
            .expect("budget must be exceeded within 500 rounds");
        assert!(crossing > 100 && crossing <= 500);
        assert!(accountant.rounds_until_budget(f64::INFINITY, 1e-5, 50).is_none());
    }

    #[test]
    #[should_panic]
    fn invalid_sampling_rate_is_rejected() {
        let _ = RdpAccountant::new(1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_delta_is_rejected() {
        let _ = RdpAccountant::new(1.0, 0.5).epsilon_after(1, 1.5);
    }
}
