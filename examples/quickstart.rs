//! Quickstart: train FedCross and FedAvg on a small synthetic federated
//! image-classification task and compare their learning curves.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin quickstart
//! ```

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    // 1. Build a federation: 12 clients with Dirichlet(0.5)-skewed synthetic
    //    CIFAR-10-style data plus a held-out global test set.
    let mut rng = SeededRng::new(42);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 12,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    println!(
        "federation: {} clients, {} training samples, {} test samples",
        data.num_clients(),
        data.total_train_samples(),
        data.test_set().len()
    );

    // 2. Every method starts from the same CNN initialisation.
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );
    println!("model: {} ({} parameters)", template.arch_name(), template.param_count());

    // 3. Shared simulation settings: 4 clients per round, 20 rounds.
    let sim_config = SimulationConfig {
        rounds: 20,
        clients_per_round: 4,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 7,
    };

    // 4. Run FedAvg and FedCross and compare.
    for spec in [AlgorithmSpec::FedAvg, AlgorithmSpec::fedcross_default()] {
        let mut algorithm = build_algorithm(
            spec,
            template.params_flat(),
            data.num_clients(),
            sim_config.clients_per_round,
        );
        let sim = Simulation::new(sim_config, &data, template.clone_model());
        let result = sim.run_with_observer(algorithm.as_mut(), |round, record| {
            println!(
                "  [{:<8}] round {:>3}: accuracy {:>5.1}%  test loss {:.3}",
                spec.label(),
                round,
                record.accuracy * 100.0,
                record.test_loss
            );
        });
        println!(
            "{}: best accuracy {:.1}%, total communication {:.1} MiB\n",
            spec.label(),
            result.best_accuracy_pct(),
            result.comm.total_mib()
        );
    }
    println!("Expected: FedCross ends at or above FedAvg on this skewed federation.");
}
