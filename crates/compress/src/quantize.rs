//! Uniform quantization of parameter deltas.

use crate::codec::{CompressedUpdate, Compressor};
use fedcross_tensor::SeededRng;

/// Uniform `b`-bit quantizer over the per-vector `[min, max]` range.
///
/// With `stochastic = true` the fractional part of each code is rounded up
/// with probability equal to the fraction (QSGD-style), making the decoded
/// value an unbiased estimate of the original; with `stochastic = false`
/// nearest rounding is used (smaller variance, small bias).
#[derive(Debug, Clone, Copy)]
pub struct UniformQuantizer {
    bits: u8,
    stochastic: bool,
}

impl UniformQuantizer {
    /// Creates a quantizer with `bits` bits per coordinate (1–8).
    ///
    /// # Panics
    /// Panics if `bits` is zero or larger than 8.
    pub fn new(bits: u8, stochastic: bool) -> Self {
        assert!((1..=8).contains(&bits), "bits must lie in 1..=8");
        Self { bits, stochastic }
    }

    /// Bits per coordinate.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Whether stochastic (unbiased) rounding is used.
    pub fn is_stochastic(&self) -> bool {
        self.stochastic
    }

    /// The worst-case absolute reconstruction error per coordinate for a
    /// value range of `span` (half a quantization bucket for nearest
    /// rounding, a full bucket for stochastic rounding).
    pub fn max_error(&self, span: f32) -> f32 {
        let levels = (1u32 << self.bits) - 1;
        let bucket = span / levels.max(1) as f32;
        if self.stochastic {
            bucket
        } else {
            bucket / 2.0
        }
    }
}

impl Compressor for UniformQuantizer {
    fn compress(&self, delta: &[f32], rng: &mut SeededRng) -> CompressedUpdate {
        if delta.is_empty() {
            return CompressedUpdate::Quantized {
                dim: 0,
                bits: self.bits,
                lo: 0.0,
                hi: 0.0,
                // alloc: bounded — per-upload codec buffer sized by the compressed delta
                codes: Vec::new(),
            };
        }
        let lo = delta.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = delta.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let levels = (1u32 << self.bits) - 1;
        let span = hi - lo;
        let codes = delta
            .iter()
            .map(|&value| {
                if span <= 0.0 || levels == 0 {
                    return 0u8;
                }
                let exact = (value - lo) / span * levels as f32;
                let base = exact.floor();
                let fraction = exact - base;
                let rounded = if self.stochastic {
                    if rng.uniform() < fraction {
                        base + 1.0
                    } else {
                        base
                    }
                } else {
                    exact.round()
                };
                rounded.clamp(0.0, levels as f32) as u8
            })
            // alloc: bounded — per-upload codec buffer sized by the compressed delta
            .collect();
        CompressedUpdate::Quantized {
            dim: delta.len(),
            bits: self.bits,
            lo,
            hi,
            codes,
        }
    }

    fn label(&self) -> String {
        let mode = if self.stochastic { "stochastic" } else { "nearest" };
        // alloc: cold — reporting label, not on the round path
        format!("quant-{}bit ({mode})", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_tensor::stats::mean_of;

    fn sample_delta(n: usize) -> Vec<f32> {
        let mut rng = SeededRng::new(42);
        (0..n).map(|_| rng.normal_with(0.0, 0.5)).collect()
    }

    #[test]
    fn eight_bit_nearest_quantization_is_accurate() {
        let delta = sample_delta(1024);
        let quantizer = UniformQuantizer::new(8, false);
        let update = quantizer.compress(&delta, &mut SeededRng::new(0));
        let decoded = update.decode();
        let span = delta.iter().copied().fold(f32::NEG_INFINITY, f32::max)
            - delta.iter().copied().fold(f32::INFINITY, f32::min);
        let bound = quantizer.max_error(span) + 1e-6;
        for (&original, &restored) in delta.iter().zip(&decoded) {
            assert!(
                (original - restored).abs() <= bound,
                "error {} exceeds bound {}",
                (original - restored).abs(),
                bound
            );
        }
        assert!(update.payload_scalars() < delta.len() / 3);
    }

    #[test]
    fn stochastic_rounding_is_nearly_unbiased() {
        // Quantize the same constant many times: the mean of the decoded
        // values must approach the original value.
        let delta = vec![0.37f32; 1];
        // Embed in a vector with a fixed range so the constant is mid-bucket.
        let padded = vec![0.0, 1.0, 0.37];
        let quantizer = UniformQuantizer::new(2, true);
        let mut rng = SeededRng::new(1);
        let mut decoded_values = Vec::new();
        for _ in 0..4000 {
            let update = quantizer.compress(&padded, &mut rng);
            decoded_values.push(update.decode()[2]);
        }
        let mean = mean_of(&decoded_values);
        assert!(
            (mean - 0.37).abs() < 0.02,
            "stochastic rounding should be unbiased (mean {mean})"
        );
        let _ = delta;
    }

    #[test]
    fn stochastic_error_stays_within_one_bucket() {
        let delta = sample_delta(512);
        let quantizer = UniformQuantizer::new(4, true);
        let update = quantizer.compress(&delta, &mut SeededRng::new(2));
        let decoded = update.decode();
        let span = delta.iter().copied().fold(f32::NEG_INFINITY, f32::max)
            - delta.iter().copied().fold(f32::INFINITY, f32::min);
        let bound = quantizer.max_error(span) + 1e-6;
        for (&original, &restored) in delta.iter().zip(&decoded) {
            assert!((original - restored).abs() <= bound);
        }
    }

    #[test]
    fn constant_delta_round_trips_exactly() {
        let delta = vec![0.25f32; 100];
        let update = UniformQuantizer::new(1, false).compress(&delta, &mut SeededRng::new(3));
        assert_eq!(update.decode(), delta);
    }

    #[test]
    fn extremes_are_reproduced_exactly() {
        let delta = vec![-2.0, 0.0, 3.0];
        let update = UniformQuantizer::new(8, false).compress(&delta, &mut SeededRng::new(4));
        let decoded = update.decode();
        assert!((decoded[0] + 2.0).abs() < 1e-6);
        assert!((decoded[2] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_delta_is_handled() {
        let update = UniformQuantizer::new(4, true).compress(&[], &mut SeededRng::new(5));
        assert_eq!(update.dim(), 0);
        assert!(update.decode().is_empty());
    }

    #[test]
    fn fewer_bits_mean_smaller_payload() {
        let delta = sample_delta(4096);
        let mut rng = SeededRng::new(6);
        let p8 = UniformQuantizer::new(8, false)
            .compress(&delta, &mut rng)
            .payload_scalars();
        let p2 = UniformQuantizer::new(2, false)
            .compress(&delta, &mut rng)
            .payload_scalars();
        assert!(p2 < p8);
        assert!(p8 < delta.len());
    }

    #[test]
    fn labels_mention_bits_and_mode() {
        assert_eq!(UniformQuantizer::new(4, true).label(), "quant-4bit (stochastic)");
        assert_eq!(UniformQuantizer::new(8, false).label(), "quant-8bit (nearest)");
        assert!(UniformQuantizer::new(8, false).bits() == 8);
        assert!(UniformQuantizer::new(8, true).is_stochastic());
    }

    #[test]
    #[should_panic]
    fn more_than_eight_bits_is_rejected() {
        let _ = UniformQuantizer::new(9, false);
    }
}
