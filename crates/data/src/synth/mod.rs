//! Synthetic data generators standing in for the paper's datasets.
//!
//! | Paper dataset | Stand-in | Preserved property |
//! |---|---|---|
//! | CIFAR-10 / CIFAR-100 | [`images::SynthImages`] | class-conditional image structure, Dirichlet label skew applied on top |
//! | FEMNIST | [`images::SynthImages`] with per-client writer styles | natural non-IIDness: every client is one writer |
//! | Shakespeare | [`text::SynthNextChar`] | per-client character distribution (each client is one role) |
//! | Sent140 | [`text::SynthSentiment`] | per-client vocabulary/topic bias (each client is one user) |

pub mod images;
pub mod text;
