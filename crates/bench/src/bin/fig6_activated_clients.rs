//! Figure 6: impact of the number of activated clients K per round
//! (CIFAR-10, β = 0.1).
//!
//! Sweeps K while keeping the federation fixed, running FedCross and the
//! FedAvg reference for each K. Usage:
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin fig6_activated_clients [--rounds N] [--ks 2,4,8]
//! ```

use fedcross::AlgorithmSpec;
use fedcross_bench::report::{format_curve, write_json};
use fedcross_bench::{build_model, build_task, run_method_on, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;

fn main() {
    let args = Args::from_env();
    let base = args.apply(ExperimentConfig::default());

    let ks: Vec<usize> = args
        .value::<String>("--ks")
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![2, 4, 8]);

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.1));
    let data = build_task(task, &base, base.seed);

    println!(
        "Figure 6 — impact of activated clients K ({} clients total, {} rounds, {})",
        base.num_clients, base.rounds, task.label()
    );

    let mut json = Vec::new();
    for &k in &ks {
        if k > data.num_clients() || k < 2 {
            println!("  (skipping K={k}: outside the valid range)");
            continue;
        }
        let config = ExperimentConfig {
            clients_per_round: k,
            ..base
        };
        println!("\n  K = {k}");
        for spec in [AlgorithmSpec::FedAvg, fedcross_bench::scaled_fedcross()] {
            let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
            let outcome = run_method_on(spec, &data, template, &config, &task.label(), "CNN");
            println!(
                "    {:<9} best {:>5.1}%  curve: {}",
                spec.label(),
                outcome.result.best_accuracy_pct(),
                format_curve(&outcome.result.history, 6)
            );
            json.push(serde_json::json!({
                "k": k,
                "method": spec.label(),
                "best_accuracy_pct": outcome.result.best_accuracy_pct(),
                "curve": outcome.result.history.accuracy_curve(),
            }));
        }
    }
    write_json("fig6_activated_clients.json", &json);
    println!("\nPaper shape to check: FedCross beats FedAvg at every K; accuracy grows with K");
    println!("for small K and saturates for larger K, with smoother curves at larger K.");
}
