//! Criterion micro-benchmarks of the tensor kernels that dominate client-side
//! training cost: matmul, im2col convolution and softmax cross-entropy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross_nn::loss::softmax_cross_entropy;
use fedcross_tensor::conv::{im2col, Conv2dGeom};
use fedcross_tensor::{init, SeededRng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    let mut rng = SeededRng::new(1);
    for &n in &[64usize, 128, 256] {
        let a = init::normal(&[n, n], 0.0, 1.0, &mut rng);
        let b = init::normal(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_im2col");
    group.sample_size(20);
    let mut rng = SeededRng::new(2);
    let geom = Conv2dGeom::new(3, 1, 1);
    for &(batch, channels, size) in &[(10usize, 3usize, 16usize), (32, 16, 16)] {
        let input = init::normal(&[batch, channels, size, size], 0.0, 1.0, &mut rng);
        let id = format!("b{batch}_c{channels}_s{size}");
        group.bench_with_input(BenchmarkId::new("im2col", &id), &id, |bench, _| {
            bench.iter(|| black_box(im2col(&input, geom)))
        });
    }
    group.finish();
}

fn bench_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax_cross_entropy");
    group.sample_size(30);
    let mut rng = SeededRng::new(3);
    for &(batch, classes) in &[(50usize, 10usize), (50, 100)] {
        let logits = init::normal(&[batch, classes], 0.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        let id = format!("b{batch}_c{classes}");
        group.bench_with_input(BenchmarkId::new("forward_backward", &id), &id, |bench, _| {
            bench.iter(|| black_box(softmax_cross_entropy(&logits, &labels)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv, bench_loss);
criterion_main!(benches);
