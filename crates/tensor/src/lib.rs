//! # fedcross-tensor
//!
//! A small, dependency-light dense tensor library that serves as the numerical
//! substrate for the FedCross federated-learning reproduction.
//!
//! The FedCross paper trains convolutional and recurrent classifiers with SGD on
//! every client; no GPU/torch stack is available in this environment, so this
//! crate provides everything the model zoo in `fedcross-nn` needs:
//!
//! * row-major dense [`Tensor`] of `f32` with shape/stride bookkeeping,
//! * element-wise arithmetic and broadcasting against rows/scalars,
//! * parallel matrix multiplication ([`linalg`]),
//! * `im2col`/`col2im` convolution and pooling kernels ([`conv`]),
//! * activations and softmax/log-softmax ([`ops`]),
//! * reductions, norms and cosine similarity ([`stats`]) — cosine similarity is
//!   the model-similarity measure used by FedCross' collaborative-model
//!   selection strategies,
//! * deterministic, seedable weight initialisation ([`init`]).
//!
//! The API is intentionally explicit (no autograd graph): backward passes are
//! implemented per layer in `fedcross-nn`, which keeps every gradient auditable
//! against finite differences in tests.
//!
//! ## Quick example
//!
//! ```
//! use fedcross_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc_guard;
pub mod conv;
pub mod error;
pub mod init;
pub mod linalg;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod stats;
mod tensor;

pub use error::TensorError;
pub use pool::TensorPool;
pub use rng::SeededRng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results returned by fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
