//! # fedcross-compress
//!
//! Upload compression for the FedCross workspace.
//!
//! The paper's Section IV-C3 argues about communication overhead purely in
//! *model-equivalents per round* (Table I). This crate makes the byte volume a
//! first-class measured quantity and provides the standard techniques for
//! reducing it, so the cost/utility trade-off can be swept by the benchmark
//! harness (`ablation_compression`):
//!
//! * [`codec`] — the [`codec::Compressor`] trait and the
//!   [`codec::CompressedUpdate`] container with exact payload accounting
//!   (in 4-byte-word equivalents),
//! * [`quantize`] — uniform `b`-bit quantization with optional stochastic
//!   (unbiased) rounding, QSGD-style,
//! * [`sparsify`] — top-`k` and random-`k` sparsification of parameter deltas,
//! * [`feedback`] — per-client error-feedback memory (EF-SGD), which keeps
//!   aggressive compressors convergent by carrying the compression residual
//!   into the next round,
//! * [`algorithms`] — [`algorithms::CompressedFedAvg`], a drop-in
//!   [`fedcross_flsim::FederatedAlgorithm`] whose clients upload compressed
//!   deltas, with exact accounting of raw vs. compressed upload volume.
//!
//! ## Quick example
//!
//! ```
//! use fedcross_compress::codec::Compressor;
//! use fedcross_compress::quantize::UniformQuantizer;
//! use fedcross_tensor::SeededRng;
//!
//! let delta: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) / 64.0).collect();
//! let quantizer = UniformQuantizer::new(8, true);
//! let mut rng = SeededRng::new(0);
//! let compressed = quantizer.compress(&delta, &mut rng);
//! assert!(compressed.payload_scalars() < delta.len());
//! let restored = compressed.decode();
//! assert_eq!(restored.len(), delta.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod codec;
pub mod feedback;
pub mod quantize;
pub mod sparsify;

pub use algorithms::{CompressedFedAvg, UploadStats};
pub use codec::{CompressedUpdate, Compressor, Identity};
pub use feedback::ErrorFeedback;
pub use quantize::UniformQuantizer;
pub use sparsify::{RandK, TopK};
