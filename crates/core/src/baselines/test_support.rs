//! Shared fixtures for the baseline unit tests: a tiny synthetic image task
//! and a fast simulation configuration.

use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{LocalTrainConfig, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;

/// A small Dirichlet-skewed image federation plus a tiny CNN template.
pub(crate) fn tiny_image_setup(seed: u64, clients: usize) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: clients,
            samples_per_client: 25,
            test_samples: 60,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (4, 8),
            fc_hidden: 16,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

/// A fast simulation configuration for unit tests.
pub(crate) fn quick_config(rounds: usize, clients_per_round: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round,
        eval_every: 1,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 11,
    }
}
