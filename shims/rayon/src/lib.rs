//! Offline shim for `rayon`.
//!
//! Implements the slice of rayon's data-parallel API this workspace uses on
//! top of `std::thread::scope`: `par_iter` / `par_iter_mut` / `into_par_iter`
//! on slices, vectors and ranges, `par_chunks` / `par_chunks_mut`, and the
//! `map` / `enumerate` / `for_each` / `collect` adapters.
//!
//! Work distribution is dynamic (an atomic cursor over the item list), so
//! uneven tasks — e.g. federated clients with different local dataset sizes —
//! load-balance across cores just like under real rayon's work stealing.
//! Parallelism is real: closures run on scoped OS threads, one per available
//! core, and panics propagate to the caller exactly as rayon's do.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide thread-count override (0 = unset). Set by
/// [`set_num_threads`]; checked before `RAYON_NUM_THREADS` and
/// `available_parallelism`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count for all subsequent parallel operations
/// (real rayon configures this through `ThreadPoolBuilder`; the shim exposes
/// a direct setter). Passing 0 clears the override.
///
/// The determinism sanitizer sweeps this across {1, 2, 4} to prove that
/// trajectories do not depend on the schedule. Changing it mid-run is safe
/// by construction: results land in index-addressed slots regardless of
/// which worker computes them.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Number of worker threads used by parallel operations: the
/// [`set_num_threads`] override if set, else `RAYON_NUM_THREADS` from the
/// environment (matching real rayon's default pool), else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

std::thread_local! {
    /// Whether the current thread is already one of this shim's workers.
    ///
    /// Real rayon runs nested parallel calls on its one shared pool; this
    /// shim has no pool, so a nested call from inside a worker (e.g. a
    /// parallel matmul reached from the parallel per-client training loop)
    /// runs serially instead of spawning `workers²` threads and paying a
    /// thread-spawn per inner kernel invocation. The outer loop already
    /// saturates the cores.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` over every item, distributing items dynamically across threads.
fn drive<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: F) {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || IN_WORKER.with(|w| w.get()) {
        items.into_iter().for_each(f);
        return;
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("worker poisoned a job slot")
                        .take()
                        .expect("each job slot is taken exactly once");
                    f(item);
                }
            });
        }
    });
}

/// Maps every item in parallel, preserving order.
fn drive_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: F) -> Vec<U> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 || IN_WORKER.with(|w| w.get()) {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("worker poisoned a job slot")
                        .take()
                        .expect("each job slot is taken exactly once");
                    let result = f(item);
                    *out[i].lock().expect("worker poisoned a result slot") = Some(result);
                }
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot unpoisoned")
                .expect("every result slot is filled")
        })
        .collect()
}

/// A not-yet-consumed parallel iterator over an ordered list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily maps every item (runs at `collect` / `for_each` time).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` over every item on the worker pool.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        drive(self.items, f);
    }

    /// Collects the items (after adapters) into a container.
    pub fn collect<C: FromParallel<T>>(self) -> C {
        C::from_ordered(self.items)
    }
}

/// The result of [`ParIter::map`]: items plus the pending transform.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    /// Applies the map in parallel and collects in input order.
    pub fn collect<C: FromParallel<U>>(self) -> C {
        C::from_ordered(drive_map(self.items, self.f))
    }

    /// Applies the map in parallel, discarding results.
    pub fn for_each<G: Fn(U) + Sync>(self, g: G) {
        let f = self.f;
        drive(self.items, move |t| g(f(t)));
    }
}

/// Containers constructible from an ordered parallel result.
pub trait FromParallel<T> {
    /// Builds the container from items already in order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// `into_par_iter()` for owned collections.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iteration over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Mutably borrowing parallel iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The glob import every rayon user reaches for.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[99], 9);
        assert_eq!(v[102], 10);
    }

    #[test]
    fn par_iter_mut_touches_every_item() {
        let mut v = vec![1i64; 64];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn range_par_iter_collects() {
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
        assert_eq!(squares.len(), 50);
    }

    #[test]
    fn uneven_workloads_complete() {
        let work: Vec<usize> = (0..37).collect();
        let out: Vec<usize> = work
            .into_par_iter()
            .map(|i| {
                // Simulate uneven task cost.
                let mut acc = 0usize;
                for j in 0..(i * 1000) {
                    acc = acc.wrapping_add(j);
                }
                std::hint::black_box(acc);
                i
            })
            .collect();
        assert_eq!(out, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallel_calls_run_serially_and_correctly() {
        // An inner parallel map inside a worker must not explode the thread
        // count — and must still produce correct, ordered results.
        let outer: Vec<usize> = (0..8).collect();
        let results: Vec<Vec<usize>> = outer
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..16usize).collect();
                inner.into_par_iter().map(move |j| i * 100 + j).collect()
            })
            .collect();
        for (i, inner) in results.iter().enumerate() {
            assert_eq!(inner.len(), 16);
            assert_eq!(inner[0], i * 100);
            assert_eq!(inner[15], i * 100 + 15);
        }
    }

    #[test]
    fn thread_override_is_respected_and_results_stay_ordered() {
        for threads in [1, 2, 4] {
            crate::set_num_threads(threads);
            assert_eq!(crate::current_num_threads(), threads);
            let v: Vec<usize> = (0..101).collect();
            let out: Vec<usize> = v.into_par_iter().map(|x| x + 1).collect();
            assert_eq!(out, (1..102).collect::<Vec<_>>());
        }
        crate::set_num_threads(0);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let v: Vec<usize> = (0..16).collect();
        v.into_par_iter().for_each(|i| {
            if i == 7 {
                panic!("boom");
            }
        });
    }
}
