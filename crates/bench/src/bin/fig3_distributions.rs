//! Figure 3: client data distributions under Dirichlet non-IID settings.
//!
//! Prints the per-client per-class sample counts of ten sampled clients for
//! β ∈ {0.1, 0.5, 1.0} (and IID for reference), as ASCII dot plots plus the
//! skew summary. Usage:
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin fig3_distributions [--clients N]
//! ```

use fedcross_bench::report::{ascii_distribution_row, write_json};
use fedcross_bench::{build_task, Args, ExperimentConfig, TaskSpec};
use fedcross_data::partition::skew_score;
use fedcross_data::Heterogeneity;
use fedcross_tensor::SeededRng;

fn main() {
    let args = Args::from_env();
    let mut config = args.apply(ExperimentConfig::default());
    // Figure 3 uses 100 clients with 10 sampled for display.
    if !args.flag("--smoke") {
        config.num_clients = config.num_clients.max(50);
    }

    let settings = [
        Heterogeneity::Dirichlet(0.1),
        Heterogeneity::Dirichlet(0.5),
        Heterogeneity::Dirichlet(1.0),
        Heterogeneity::Iid,
    ];

    let mut json = Vec::new();
    for heterogeneity in settings {
        let data = build_task(TaskSpec::Cifar10(heterogeneity), &config, config.seed);
        let counts = data.class_count_matrix();
        let mut rng = SeededRng::new(config.seed);
        let mut sampled = rng.sample_without_replacement(data.num_clients(), 10.min(data.num_clients()));
        sampled.sort_unstable();

        println!(
            "\nFigure 3 — data distribution of {} sampled clients, {}",
            sampled.len(),
            heterogeneity.label()
        );
        println!("(rows = clients, columns = classes 0..9; darker = larger share)");
        for &client in &sampled {
            println!(
                "  client {:>3} |{}| {:>3} samples",
                client,
                ascii_distribution_row(&counts[client]),
                counts[client].iter().sum::<usize>()
            );
        }
        let skew = skew_score(&counts);
        println!("  skew score (mean max-class share): {skew:.3}");
        json.push(serde_json::json!({
            "heterogeneity": heterogeneity.label(),
            "skew_score": skew,
            "sampled_clients": sampled,
            "counts": sampled.iter().map(|&c| counts[c].clone()).collect::<Vec<_>>(),
        }));
    }
    write_json("fig3_distributions.json", &json);
    println!("\nPaper shape to check: beta=0.1 is strongly skewed (few classes per client),");
    println!("beta=1.0 is mildly skewed, IID is uniform.");
}
