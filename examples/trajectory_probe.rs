//! Prints FNV-1a fingerprints of fixed-seed training trajectories.
//!
//! Used to pin the training plane bitwise: the hashes printed here must not
//! change across performance refactors of the compute kernels (see
//! `tests/tests/training_plane.rs`).

use fedcross::{FedCross, FedCrossConfig, SelectionStrategy, SimilarityMeasure};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::{Dataset, Heterogeneity};
use fedcross_flsim::engine::RoundContext;
use fedcross_flsim::client::local_train;
use fedcross_flsim::{CommTracker, FederatedAlgorithm, LocalTrainConfig};
use fedcross_nn::models::{
    cnn, fedavg_cnn, lstm_classifier, mlp, resnet20_lite, CnnConfig, LstmConfig,
};
use fedcross_tensor::{SeededRng, Tensor};

fn fnv1a(values: &[f32]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

fn image_task(seed: u64, clients: usize) -> FederatedDataset {
    let mut rng = SeededRng::new(seed);
    FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: clients,
            samples_per_client: 20,
            test_samples: 30,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    )
}

fn flatten_images(data: &Dataset) -> Dataset {
    let n = data.len();
    let dim: usize = data.sample_dims().iter().product();
    Dataset::new(
        data.features().reshape(&[n, dim]),
        data.labels().to_vec(),
        data.num_classes(),
    )
}

fn main() {
    // 1. Three FedCross rounds on the tiny CNN (the zero_copy_plane config).
    let data = image_task(7, 6);
    let mut rng = SeededRng::new(3);
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (3, 6),
            fc_hidden: 12,
            kernel: 3,
        },
        &mut rng,
    );
    let config = FedCrossConfig {
        alpha: 0.9,
        strategy: SelectionStrategy::LowestSimilarity,
        measure: SimilarityMeasure::Cosine,
        ..Default::default()
    };
    let mut algo = FedCross::new(config, template.params_flat(), 4);
    let master = SeededRng::new(99);
    for round in 0..3 {
        let mut comm = CommTracker::new();
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            LocalTrainConfig::fast(),
            4,
            master.fork(round as u64),
            &mut comm,
        );
        algo.run_round(round, &mut ctx);
    }
    println!("fedcross_global {:#018x}", fnv1a(&algo.global_params()));

    // 2. One local_train on the default CNN (crosses the matmul parallel
    //    thresholds, including the blocked at_b reduction).
    let mut rng = SeededRng::new(11);
    let mut model = fedavg_cnn((3, 16, 16), 10, &mut rng);
    let client_data = data.client(0);
    let local = LocalTrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 1e-4,
    };
    let mut train_rng = SeededRng::new(13);
    let update = local_train(0, model.as_mut(), client_data, &local, &mut train_rng, None);
    println!("cnn_local_train {:#018x}", fnv1a(update.params.as_slice()));

    // 3. One local_train on an MLP (pure linear/relu plane).
    let mut rng = SeededRng::new(17);
    let mut model = mlp(3 * 16 * 16, &[32, 16], 10, &mut rng);
    let flat = flatten_images(data.client(1));
    let mut train_rng = SeededRng::new(19);
    let update = local_train(
        1,
        model.as_mut(),
        &flat,
        &LocalTrainConfig::fast(),
        &mut train_rng,
        None,
    );
    println!("mlp_local_train {:#018x}", fnv1a(update.params.as_slice()));

    // 4. One local_train on the ResNet-lite (batchnorm + residual blocks).
    let mut rng = SeededRng::new(23);
    let mut model = resnet20_lite((3, 16, 16), 10, &mut rng);
    let mut train_rng = SeededRng::new(29);
    let local = LocalTrainConfig {
        epochs: 1,
        batch_size: 10,
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 0.0,
    };
    let update = local_train(2, model.as_mut(), data.client(2), &local, &mut train_rng, None);
    println!("resnet_local_train {:#018x}", fnv1a(update.params.as_slice()));

    // 5. One local_train on the LSTM classifier (embedding + recurrence).
    let mut rng = SeededRng::new(31);
    let mut model = lstm_classifier(
        LstmConfig {
            vocab: 32,
            embed_dim: 8,
            hidden_dim: 16,
        },
        8,
        &mut rng,
    );
    let tokens: Vec<f32> = (0..40 * 12).map(|i| ((i * 7 + 3) % 32) as f32).collect();
    let labels: Vec<usize> = (0..40).map(|i| (i * 5 + 1) % 8).collect();
    let text = Dataset::new(Tensor::from_vec(tokens, &[40, 12]), labels, 8);
    let mut train_rng = SeededRng::new(37);
    let update = local_train(
        3,
        model.as_mut(),
        &text,
        &LocalTrainConfig::fast(),
        &mut train_rng,
        None,
    );
    println!("lstm_local_train {:#018x}", fnv1a(update.params.as_slice()));
}
