//! Table II: test accuracy of the six methods across datasets, heterogeneity
//! settings and model families.
//!
//! The default run covers the CNN image rows plus the two LSTM text rows at
//! reduced scale; `--all-models` adds ResNet-20 and VGG-16 rows, `--quick`
//! restricts to CIFAR-10 (β=0.1 and IID), and `--full` switches to the
//! paper-scale federation. Usage:
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin table2_accuracy [--rounds N] [--quick] [--all-models]
//! ```

use fedcross_bench::report::{format_mean_std, print_header, print_row, write_json};
use fedcross_bench::{build_model, build_task, run_method_on, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());

    let image_tasks: Vec<TaskSpec> = if args.flag("--quick") {
        vec![
            TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.1)),
            TaskSpec::Cifar10(Heterogeneity::Iid),
        ]
    } else {
        vec![
            TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.1)),
            TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5)),
            TaskSpec::Cifar10(Heterogeneity::Dirichlet(1.0)),
            TaskSpec::Cifar10(Heterogeneity::Iid),
            TaskSpec::Cifar100(Heterogeneity::Dirichlet(0.5)),
            TaskSpec::Femnist,
        ]
    };
    let image_models: Vec<ModelSpec> = if args.flag("--all-models") {
        vec![ModelSpec::Cnn, ModelSpec::ResNet20, ModelSpec::Vgg16]
    } else {
        vec![ModelSpec::Cnn]
    };
    let text_tasks: Vec<TaskSpec> = if args.flag("--quick") {
        Vec::new()
    } else {
        vec![TaskSpec::Shakespeare, TaskSpec::Sent140]
    };

    let methods = fedcross_bench::scaled_lineup();

    println!("Table II — Test accuracy (%) comparison (mean ± std over the last evaluations)");
    println!(
        "(reduced scale: {} clients, K={}, {} rounds, {} samples/client — see EXPERIMENTS.md)\n",
        config.num_clients, config.clients_per_round, config.rounds, config.samples_per_client
    );

    let mut header = vec![("Model", 10), ("Dataset", 22)];
    for m in &methods {
        header.push((m.label(), 16));
    }
    print_header(&header);

    let mut json_rows = Vec::new();
    let mut cases: Vec<(ModelSpec, TaskSpec)> = Vec::new();
    for model in &image_models {
        for task in &image_tasks {
            cases.push((*model, *task));
        }
    }
    for task in &text_tasks {
        cases.push((ModelSpec::Lstm, *task));
    }

    for (model, task) in cases {
        let data = build_task(task, &config, config.seed);
        let mut cells = vec![
            (model.label().to_string(), 10),
            (task.label(), 22),
        ];
        let mut row_json = serde_json::json!({
            "model": model.label(),
            "task": task.label(),
        });
        let mut best: Option<(String, f32)> = None;
        for spec in &methods {
            let template = build_model(model, &data, config.seed.wrapping_add(1));
            let outcome =
                run_method_on(*spec, &data, template, &config, &task.label(), model.label());
            let (mean, std) = outcome.accuracy_mean_std();
            cells.push((format_mean_std(mean, std), 16));
            row_json[spec.label()] = serde_json::json!({ "mean": mean, "std": std });
            if best.as_ref().map(|(_, b)| mean > *b).unwrap_or(true) {
                best = Some((spec.label().to_string(), mean));
            }
        }
        if let Some((winner, acc)) = &best {
            row_json["winner"] = serde_json::json!({ "method": winner, "mean": acc });
        }
        print_row(&cells);
        json_rows.push(row_json);
    }

    write_json("table2_accuracy.json", &json_rows);
    println!("\nPaper shape to check: FedCross has the highest accuracy in every row.");
}
