//! Ablation (beyond the paper): cosine vs Euclidean model-similarity measure
//! in the FedCross selection strategies.
//!
//! The paper adopts cosine similarity and explicitly lists other measures
//! (e.g. Euclidean distance) as future work (Section III-B1). This harness
//! runs that extension: both similarity-based strategies under both measures,
//! on CIFAR-10 with β = 1.0 — the Table III setting.
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin ablation_similarity_measure [--rounds N]
//! ```

use fedcross::{FedCross, FedCrossConfig, SelectionStrategy, SimilarityMeasure};
use fedcross_bench::report::{format_mean_std, print_header, print_row, write_json};
use fedcross_bench::{build_model, build_task, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{Simulation, SimulationConfig};

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(1.0));
    let data = build_task(task, &config, config.seed);

    println!("Ablation — model-similarity measure (CIFAR-10, beta=1.0, CNN, alpha=0.99)");
    println!(
        "({} clients, K={}, {} rounds)\n",
        config.num_clients, config.clients_per_round, config.rounds
    );
    print_header(&[
        ("Strategy", 20),
        ("Cosine (paper)", 18),
        ("Euclidean (ext.)", 18),
    ]);

    let mut json = Vec::new();
    for strategy in [
        SelectionStrategy::HighestSimilarity,
        SelectionStrategy::LowestSimilarity,
    ] {
        let mut cells = vec![(strategy.to_string(), 20)];
        let mut row = serde_json::json!({ "strategy": strategy.to_string() });
        for measure in [SimilarityMeasure::Cosine, SimilarityMeasure::Euclidean] {
            let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
            let fed_config = FedCrossConfig {
                alpha: 0.99,
                strategy,
                measure,
                acceleration: Default::default(),
            };
            let mut algo = FedCross::new(
                fed_config,
                template.params_flat(),
                config.clients_per_round.min(data.num_clients()),
            );
            let sim_config = SimulationConfig {
                rounds: config.rounds,
                clients_per_round: config.clients_per_round.min(data.num_clients()),
                eval_every: config.eval_every,
                eval_batch_size: 64,
                local: config.local,
                seed: config.seed,
            };
            let result = Simulation::new(sim_config, &data, template).run(&mut algo);
            let (mean, std) = result.history.mean_std_last(3);
            cells.push((format_mean_std(mean, std), 18));
            row[measure.label()] = serde_json::json!({ "mean": mean, "std": std });
        }
        print_row(&cells);
        json.push(row);
    }
    write_json("ablation_similarity_measure.json", &json);
    println!("\nExpected: the two measures land in the same accuracy range — the choice of");
    println!("similarity measure is not the load-bearing part of FedCross (supporting the");
    println!("paper's decision to defer it to future work).");
}
