//! Figure 4 / RQ1: loss-landscape comparison between FedAvg and FedCross
//! global models.
//!
//! Trains both methods on the CIFAR-10 stand-in (β = 0.1 and IID), then
//! reports (i) a sharpness score — the expected loss rise under random
//! norm-bounded perturbations — and (ii) a small 2-D loss surface grid around
//! each trained global model. The paper's claim to reproduce: FedCross'
//! global model sits in a flatter region (lower sharpness / flatter surface).
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin fig4_landscape [--rounds N]
//! ```

use fedcross::AlgorithmSpec;
use fedcross_bench::report::write_json;
use fedcross_bench::{build_model, build_task, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;
use fedcross_flsim::landscape::{loss_surface_2d, sharpness};
use fedcross_flsim::{Simulation, SimulationConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());
    let resolution: usize = args.value("--resolution").unwrap_or(5);
    let radius: f32 = args.value("--radius").unwrap_or(0.3);

    let mut json = Vec::new();
    for heterogeneity in [Heterogeneity::Dirichlet(0.1), Heterogeneity::Iid] {
        let task = TaskSpec::Cifar10(heterogeneity);
        let data = build_task(task, &config, config.seed);
        println!("\nFigure 4 — loss landscape, {}", task.label());

        for spec in [AlgorithmSpec::FedAvg, fedcross_bench::scaled_fedcross()] {
            let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
            let mut algorithm = fedcross::build_algorithm(
                spec,
                template.params_flat(),
                data.num_clients(),
                config.clients_per_round.min(data.num_clients()),
            );
            let sim_config = SimulationConfig {
                rounds: config.rounds,
                clients_per_round: config.clients_per_round.min(data.num_clients()),
                eval_every: config.eval_every,
                eval_batch_size: 64,
                local: config.local,
                seed: config.seed,
            };
            let analysis_template = template.clone_model();
            let result = Simulation::new(sim_config, &data, template).run(algorithm.as_mut());
            let trained = algorithm.global_params();
            let final_acc = result.final_accuracy_pct();

            let mut rng = SeededRng::new(config.seed.wrapping_add(7));
            let sharp = sharpness(
                analysis_template.as_ref(),
                &trained,
                data.test_set(),
                0.2,
                6,
                64,
                &mut rng,
            );
            let surface = loss_surface_2d(
                analysis_template.as_ref(),
                &trained,
                data.test_set(),
                resolution,
                radius,
                64,
                &mut SeededRng::new(config.seed.wrapping_add(8)),
            );

            println!(
                "  {:<9} final acc {:>5.1}%  sharpness(eps=0.2) {:>7.4}  surface mean rise {:>7.4}",
                spec.label(),
                final_acc,
                sharp,
                surface.mean_rise()
            );
            println!("    loss surface (rows = d1, cols = d2, centre = trained model):");
            for row in &surface.loss {
                let cells: Vec<String> = row.iter().map(|v| format!("{v:6.3}")).collect();
                println!("      [{}]", cells.join(" "));
            }
            json.push(serde_json::json!({
                "heterogeneity": heterogeneity.label(),
                "method": spec.label(),
                "final_accuracy_pct": final_acc,
                "sharpness": sharp,
                "surface_mean_rise": surface.mean_rise(),
                "surface": surface.loss,
            }));
        }
    }
    write_json("fig4_landscape.json", &json);
    println!("\nPaper shape to check: FedCross' sharpness / mean rise is below FedAvg's");
    println!("in both the beta=0.1 and IID settings.");
}
