//! Offline shim for the `rand` crate.
//!
//! The container this workspace builds in has no network access to crates.io,
//! so the workspace vendors a minimal, deterministic re-implementation of the
//! slice of `rand` 0.8 it actually uses: `StdRng` (here a xoshiro256++
//! generator seeded via SplitMix64), the `RngCore`/`SeedableRng`/`Rng` traits,
//! and integer/float sampling. The statistical quality is more than adequate
//! for simulation workloads; the only contract the workspace relies on is
//! determinism for a fixed seed.

use std::ops::Range;

/// Error type returned by [`RngCore::try_fill_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation: raw integer output and byte filling.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in real rand).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from raw random bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's widening-multiply bounded sampling (slightly biased
                // for astronomically large spans; irrelevant at this scale).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    ///
    /// (Real rand 0.8 uses ChaCha12 here; any deterministic generator works
    /// for this workspace, which never relies on specific stream values.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f32_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
