//! Cross-crate robustness tests: client dropout, checkpoint/resume and
//! per-client fairness analysis, exercised through the same engine the paper
//! experiments use.

use fedcross::{build_algorithm, AlgorithmSpec, FedCross, FedCrossConfig, RobustRule};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    per_client_fairness, AdversaryModel, Attack, AvailabilityModel, Checkpoint, LocalTrainConfig,
    Simulation, SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;

fn setup(seed: u64, clients: usize, samples: usize) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: clients,
            samples_per_client: samples,
            test_samples: 80,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (4, 8),
            fc_hidden: 16,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

fn sim_config(rounds: usize, k: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round: k,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.08,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 3,
    }
}

#[test]
fn every_method_survives_heavy_client_dropout() {
    // At 85% dropout with K = 3 most rounds lose every selected client, so
    // this also covers the "no uploads at all this round" path of every
    // method (the global model must simply carry over).
    let (data, template) = setup(0, 8, 15);
    for spec in AlgorithmSpec::paper_lineup() {
        let mut algorithm = build_algorithm(spec, template.params_flat(), data.num_clients(), 3);
        let result = Simulation::new(sim_config(6, 3), &data, template.clone_model())
            .with_availability(AvailabilityModel::RandomDropout { prob: 0.85 })
            .run(algorithm.as_mut());
        assert_eq!(result.history.len(), 4, "{} lost evaluations", spec.label());
        assert!(
            algorithm.global_params().iter().all(|p| p.is_finite()),
            "{} produced non-finite parameters under dropout",
            spec.label()
        );
    }
}

#[test]
fn dropout_reduces_realised_client_contacts() {
    let (data, template) = setup(1, 10, 15);
    let run = |availability: AvailabilityModel| {
        let mut algorithm = build_algorithm(
            AlgorithmSpec::FedAvg,
            template.params_flat(),
            data.num_clients(),
            4,
        );
        Simulation::new(sim_config(6, 4), &data, template.clone_model())
            .with_availability(availability)
            .run(algorithm.as_mut())
            .comm
            .client_contacts
    };
    let full = run(AvailabilityModel::AlwaysOn);
    let dropped = run(AvailabilityModel::RandomDropout { prob: 0.4 });
    let straggler = run(AvailabilityModel::PeriodicStraggler { period: 2 });
    assert_eq!(full, 24);
    assert!(dropped < full, "dropout must lose contacts ({dropped} vs {full})");
    // Period-2 stragglers lose roughly half the contacts.
    assert!(straggler < full && straggler >= full / 4);
}

#[test]
fn fedcross_with_moderate_dropout_still_learns() {
    let (data, template) = setup(2, 10, 30);
    let init_acc = fedcross_flsim::eval::evaluate_params(
        template.as_ref(),
        &template.params_flat(),
        data.test_set(),
        64,
    )
    .accuracy;
    let mut algo = FedCross::new(
        FedCrossConfig {
            alpha: 0.9,
            ..Default::default()
        },
        template.params_flat(),
        4,
    );
    let result = Simulation::new(sim_config(12, 4), &data, template)
        .with_availability(AvailabilityModel::RandomDropout { prob: 0.25 })
        .run(&mut algo);
    assert!(
        result.history.best_accuracy() > init_acc + 0.1 && result.history.best_accuracy() > 0.2,
        "FedCross under dropout should still learn ({} vs init {})",
        result.history.best_accuracy(),
        init_acc
    );
}

#[test]
fn fedcross_checkpoint_resume_preserves_training_progress() {
    let (data, template) = setup(3, 10, 30);
    let fed_config = FedCrossConfig {
        alpha: 0.9,
        ..Default::default()
    };

    // Phase 1: train the first half of a 14-round run, checkpoint to a temp
    // file through the simulation (which stamps seed + config fingerprint).
    let sim = Simulation::new(sim_config(14, 4), &data, template.clone_model());
    let mut algo = FedCross::new(fed_config, template.params_flat(), 4);
    let first = sim.run_segment(&mut algo, 0, 8);
    assert_eq!(first.rounds_completed, 8);
    let path = std::env::temp_dir().join("fedcross-integration-checkpoint.json");
    sim.checkpoint(&algo, &first)
        .expect("snapshot supported")
        .save(&path)
        .expect("checkpoint saves");

    // Phase 2: reload into a fresh algorithm instance and continue. Resume
    // derives every remaining round from its absolute index, so the restart
    // preserves (and keeps improving on) the checkpointed progress.
    let restored = Checkpoint::load(&path).expect("checkpoint loads");
    assert_eq!(restored.rounds_completed, 8);
    assert_eq!(restored.state.models.len(), 4);
    let mut resumed = FedCross::new(fed_config, template.params_flat(), 4);
    let second = sim.resume(&restored, &mut resumed).expect("checkpoint matches");
    // The resumed history extends the checkpointed one past round 8.
    assert!(second.history.len() > first.history.len());
    assert_eq!(
        second.history.records()[..first.history.len()],
        *first.history.records()
    );
    assert!(
        second.best_accuracy_pct() + 5.0 >= first.final_accuracy_pct(),
        "resumed run regressed: {} vs {}",
        second.best_accuracy_pct(),
        first.final_accuracy_pct()
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn fairness_report_is_consistent_with_global_accuracy() {
    let (data, template) = setup(4, 8, 30);
    let mut algo = build_algorithm(
        AlgorithmSpec::FedAvg,
        template.params_flat(),
        data.num_clients(),
        3,
    );
    let sim = Simulation::new(sim_config(10, 3), &data, template);
    let result = sim.run(algo.as_mut());
    let report = per_client_fairness(sim.template(), &algo.global_params(), &data, 64);
    assert_eq!(report.num_clients(), data.num_clients());
    assert!(report.min <= report.mean && report.mean <= report.max);
    assert!(report.jain_index > 0.0 && report.jain_index <= 1.0 + 1e-6);
    // The per-client mean is in the same ballpark as the global test accuracy
    // (both measure the same model on the same distribution family).
    let global_acc = result.history.final_accuracy();
    assert!(
        (report.mean - global_acc).abs() < 0.35,
        "per-client mean {} vs global accuracy {}",
        report.mean,
        global_acc
    );
}

#[test]
fn fedcross_training_lifts_every_quantile_of_the_per_client_distribution() {
    // A deliberately skewed federation: training must lift not only the mean
    // per-client accuracy but also the worst-decile clients (the Figure 1
    // motivation), relative to the untrained initialisation.
    let mut rng = SeededRng::new(9);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 8,
            samples_per_client: 30,
            test_samples: 80,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.2),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (4, 8),
            fc_hidden: 16,
            kernel: 3,
        },
        &mut rng,
    );

    let init_report =
        per_client_fairness(template.as_ref(), &template.params_flat(), &data, 64);

    let mut fedcross = build_algorithm(
        AlgorithmSpec::FedCross {
            alpha: 0.9,
            strategy: fedcross::SelectionStrategy::LowestSimilarity,
            acceleration: fedcross::Acceleration::None,
        },
        template.params_flat(),
        data.num_clients(),
        4,
    );
    let config = sim_config(16, 4);
    let _ = Simulation::new(config, &data, template.clone_model()).run(fedcross.as_mut());
    let trained_report =
        per_client_fairness(template.as_ref(), &fedcross.global_params(), &data, 64);
    assert!(
        trained_report.mean > init_report.mean + 0.1,
        "training must lift the mean per-client accuracy ({} vs init {})",
        trained_report.mean,
        init_report.mean
    );
    assert!(
        trained_report.worst_decile_mean >= init_report.worst_decile_mean,
        "training must not push the worst clients below the untrained model ({} vs {})",
        trained_report.worst_decile_mean,
        init_report.worst_decile_mean
    );
    assert!(trained_report.jain_index > 0.0 && trained_report.jain_index <= 1.0 + 1e-6);
}

#[test]
fn trimmed_mean_robust_fedcross_survives_thirty_percent_byzantine_clients() {
    // The robustness plane's end-to-end pin (docs/ROBUSTNESS.md): with 30%
    // of the federation sending scaled-update Byzantine uploads, plain
    // FedAvg's weighted average is dragged far off the honest consensus and
    // collapses, while trimmed-mean RobustFedCross stays within 90% of the
    // clean run's final accuracy. Trim 0.34 on K = 9 uploads drops the 3
    // most extreme values per end per coordinate — at least as many as the
    // worst-case per-round Byzantine count — while still *averaging* the 3
    // middle values (a single surviving order statistic, e.g. trim 0.45,
    // tracks the most extreme honest value whenever the attackers crowd one
    // side and overshoots late in training).
    let (data, template) = setup(4, 10, 20);
    let adversary = AdversaryModel {
        attack: Attack::ScaledUpdate { factor: 25.0 },
        fraction: 0.3,
        seed: 11,
    };
    let k = 9;
    let config = sim_config(8, k);

    let run = |spec: AlgorithmSpec, attacked: bool| {
        let mut algorithm =
            build_algorithm(spec, template.params_flat(), data.num_clients(), k);
        let mut sim = Simulation::new(config, &data, template.clone_model());
        if attacked {
            sim = sim.with_adversaries(adversary);
        }
        sim.run(algorithm.as_mut()).history.final_accuracy()
    };

    let robust_spec = AlgorithmSpec::RobustFedCross {
        alpha: 0.9,
        rule: RobustRule::TrimmedMean { trim: 0.34 },
    };
    let clean = run(AlgorithmSpec::FedAvg, false);
    let fedavg_attacked = run(AlgorithmSpec::FedAvg, true);
    let robust_attacked = run(robust_spec, true);

    assert!(
        clean > 0.2,
        "clean FedAvg run must actually learn (final accuracy {clean})"
    );
    assert!(
        fedavg_attacked < 0.9 * clean,
        "FedAvg should collapse under 30% scaled-update Byzantine clients \
         (attacked {fedavg_attacked} vs clean {clean})"
    );
    assert!(
        robust_attacked >= 0.9 * clean,
        "trimmed-mean RobustFedCross should recover >=90% of the clean final \
         accuracy under attack (attacked {robust_attacked} vs clean {clean})"
    );
}
