//! Criterion micro-benchmarks of collaborative-model selection: the in-order
//! schedule vs the similarity-based strategies (which require pairwise cosine
//! similarities over the flat parameter vectors).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross::selection::{similarity_matrix, SelectionStrategy};
use fedcross_tensor::SeededRng;

fn make_models(k: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    (0..k)
        .map(|_| (0..dim).map(|_| rng.normal()).collect())
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("collaborative_selection");
    group.sample_size(20);

    for &(k, dim) in &[(10usize, 50_000usize), (20, 50_000)] {
        let models = make_models(k, dim, 3);
        let id = format!("k{k}_d{dim}");

        group.bench_with_input(BenchmarkId::new("in_order", &id), &id, |b, _| {
            b.iter(|| black_box(SelectionStrategy::InOrder.select_all(5, &models)))
        });
        group.bench_with_input(BenchmarkId::new("lowest_similarity", &id), &id, |b, _| {
            b.iter(|| black_box(SelectionStrategy::LowestSimilarity.select_all(5, &models)))
        });
        group.bench_with_input(BenchmarkId::new("highest_similarity", &id), &id, |b, _| {
            b.iter(|| black_box(SelectionStrategy::HighestSimilarity.select_all(5, &models)))
        });
        group.bench_with_input(BenchmarkId::new("similarity_matrix", &id), &id, |b, _| {
            b.iter(|| black_box(similarity_matrix(&models)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
