//! Byzantine-robust server algorithms: [`RobustFedAvg`] and
//! [`RobustFedCross`].
//!
//! Both algorithms replace the implicit "every upload is honest" assumption of
//! their namesakes with a [`RobustRule`] from [`crate::aggregation`]. The
//! threat model and rule semantics are documented in docs/ROBUSTNESS.md; the
//! determinism contract is the same one the DP plane established:
//!
//! * uploads are processed in **canonical order** (client id for
//!   [`RobustFedAvg`], middleware slot for [`RobustFedCross`]), so the round
//!   result is a pure function of the upload *set*, never of arrival order,
//! * both algorithms expose their server half (`apply_updates`) publicly so
//!   the order-independence and resume tests can drive it directly,
//! * both implement the full resume plane (`snapshot_state` /
//!   `restore_state`), so adversarial runs checkpoint and resume bitwise
//!   identically (pinned by tests/tests/resume_plane.rs).
//!
//! Robust rules aggregate **unweighted**: FedAvg's sample-count weighting
//! hands Byzantine clients a free amplification knob (report a huge
//! `num_samples`), so the robust variants deliberately ignore it.

use crate::aggregation::{cross_aggregate_into, global_model, global_model_into, RobustRule};
use crate::selection::{SelectionStrategy, SimilarityMeasure};
use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::client::LocalUpdate;
use fedcross_flsim::engine::{FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_nn::params::{add_scaled, ParamBlock, ParamVec};

/// FedAvg with a Byzantine-robust aggregation rule in place of the weighted
/// average: dispatch the single global model to `K` clients, then replace it
/// with the rule's aggregate of their uploads.
pub struct RobustFedAvg {
    rule: RobustRule,
    global: ParamBlock,
}

impl RobustFedAvg {
    /// Creates robust FedAvg from the initial global model and a rule.
    ///
    /// # Panics
    /// Panics on empty initial parameters or an invalid rule.
    pub fn new(rule: RobustRule, init_params: Vec<f32>) -> Self {
        assert!(!init_params.is_empty(), "initial parameters must not be empty");
        rule.validate();
        Self {
            rule,
            global: ParamBlock::from(init_params),
        }
    }

    /// The configured robust rule.
    pub fn rule(&self) -> RobustRule {
        self.rule
    }

    /// The current global model parameters.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// The server half of a round: sorts `updates` into canonical client-id
    /// order and replaces the global model with the rule's aggregate.
    ///
    /// Public so the order-independence tests can feed the same update set in
    /// different arrival orders — the result (and the returned report) must
    /// be bitwise identical. Empty updates carry the global model over.
    pub fn apply_updates(&mut self, mut updates: Vec<LocalUpdate>) -> RoundReport {
        if updates.is_empty() {
            return RoundReport::default();
        }
        updates.sort_by_key(|u| u.client);
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let ordered: Vec<&LocalUpdate> = updates.iter().collect();
        let report = RoundReport::from_ordered(&ordered);
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let uploads: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
        // The norm-bounding rule clips against the dispatched model, which is
        // about to be overwritten in place — copy the anchor out first.
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let anchor: ParamVec = self.global.to_vec();
        self.rule
            .aggregate_into(self.global.make_mut(), &anchor, &uploads);
        report
    }
}

impl FederatedAlgorithm for RobustFedAvg {
    fn name(&self) -> String {
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!("robust-fedavg({})", self.rule.label())
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|&client| (client, self.global.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs); // release dispatch references before aggregating in place
        self.apply_updates(updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        Ok(AlgorithmState::single_model(self.global.clone()))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        self.global = state.expect_single_model(self.global.len())?.clone();
        Ok(())
    }
}

/// Configuration of [`RobustFedCross`].
#[derive(Debug, Clone, Copy)]
pub struct RobustFedCrossConfig {
    /// Cross-aggregation weight α ∈ [0.5, 1).
    pub alpha: f32,
    /// The robust rule applied to the per-middleware deltas before
    /// cross-aggregation.
    pub rule: RobustRule,
    /// Collaborative-model selection strategy (over the sanitized uploads).
    pub strategy: SelectionStrategy,
    /// Similarity measure used by the similarity strategies.
    pub measure: SimilarityMeasure,
}

impl Default for RobustFedCrossConfig {
    fn default() -> Self {
        Self {
            alpha: 0.99,
            rule: RobustRule::TrimmedMean { trim: 0.25 },
            strategy: SelectionStrategy::LowestSimilarity,
            measure: SimilarityMeasure::Cosine,
        }
    }
}

/// FedCross with a robust sanitization stage between upload and
/// cross-aggregation.
///
/// Plain FedCross is *maximally* exposed to Byzantine uploads: every upload
/// becomes a middleware model, and cross-aggregation then blends a poisoned
/// model into every other middleware within `K-1` rounds. The robust variant
/// interposes the rule on the **per-middleware deltas**
/// `dᵢ = uploadᵢ - middlewareᵢ` (each upload measured against the model that
/// slot dispatched):
///
/// * exclusion rules (median / trimmed mean / multi-Krum) compute one robust
///   consensus delta `d*` across the round's uploads and rebuild every
///   returned middleware as `ṽᵢ = middlewareᵢ + d*` — a Byzantine delta is
///   voted out before it touches any model, while middleware diversity (the
///   anchors) is preserved,
/// * norm bounding clips each slot's **own** delta to the bound:
///   `ṽᵢ = middlewareᵢ + min(1, C/‖dᵢ‖)·dᵢ` — nothing is excluded, but a
///   scaled update cannot move its middleware further than `C`.
///
/// Cross-aggregation (collaborator selection + α-fusion) then runs on the
/// sanitized models exactly as in plain FedCross, and the global model stays
/// the middleware average.
pub struct RobustFedCross {
    config: RobustFedCrossConfig,
    middleware: Vec<ParamBlock>,
}

impl RobustFedCross {
    /// Creates robust FedCross with `k` middleware models initialised from one
    /// shared parameter vector.
    ///
    /// # Panics
    /// Panics if `k < 2`, `alpha` is outside `[0.5, 1)` or the rule is
    /// invalid.
    pub fn new(config: RobustFedCrossConfig, init_params: Vec<f32>, k: usize) -> Self {
        assert!(k >= 2, "RobustFedCross needs at least two middleware models");
        assert!(
            (0.5..1.0).contains(&config.alpha),
            "alpha must lie in [0.5, 1.0)"
        );
        config.rule.validate();
        let shared = ParamBlock::from(init_params);
        Self {
            config,
            middleware: vec![shared; k],
        }
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &RobustFedCrossConfig {
        &self.config
    }

    /// The current middleware model list (for analysis and tests).
    pub fn middleware(&self) -> &[ParamBlock] {
        &self.middleware
    }

    /// The server half of a round: maps `updates` back to the middleware
    /// slots that dispatched them (via `selected`, the round's client→slot
    /// assignment), sorts them into canonical slot order, sanitizes with the
    /// rule and cross-aggregates the sanitized models.
    ///
    /// Public so the order-independence and resume tests can drive it with
    /// controlled update sets; [`FederatedAlgorithm::run_round`] is a thin
    /// wrapper. Empty updates carry all middleware over.
    pub fn apply_updates(
        &mut self,
        round: usize,
        selected: &[usize],
        updates: Vec<LocalUpdate>,
    ) -> RoundReport {
        // Canonical slot order: the round result must be a function of the
        // upload set, not of upload arrival order.
        let mut arrived: Vec<(usize, LocalUpdate)> = updates
            .into_iter()
            .map(|update| {
                let slot = selected
                    .iter()
                    .position(|&client| client == update.client)
                    .expect("every update comes from a selected client");
                (slot, update)
            })
            // alloc: bounded — cohort-sized aggregation staging, once per round
            .collect();
        arrived.sort_by_key(|(slot, _)| *slot);
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let ordered: Vec<&LocalUpdate> = arrived.iter().map(|(_, u)| u).collect();
        let report = RoundReport::from_ordered(&ordered);
        if arrived.is_empty() {
            return report;
        }

        let dim = self.middleware[0].len();
        // Per-slot deltas against the model each slot dispatched this round.
        let deltas: Vec<ParamVec> = arrived
            .iter()
            .map(|(slot, update)| {
                let anchor = self.middleware[*slot].as_slice();
                update
                    .params
                    .iter()
                    .zip(anchor)
                    .map(|(u, a)| u - a)
                    // alloc: bounded — cohort-sized aggregation staging, once per round
                    .collect()
            })
            // alloc: bounded — cohort-sized aggregation staging, once per round
            .collect();

        // Sanitize: rebuild every returned middleware from its own anchor.
        let sanitized: Vec<ParamVec> = match self.config.rule {
            RobustRule::NormBound { .. } => {
                // Per-slot clipping: each delta is bounded independently. The
                // rule's anchor is the zero vector because the deltas are
                // already anchor-relative.
                // alloc: bounded — cohort-sized aggregation staging, once per round
                let zero = vec![0f32; dim];
                arrived
                    .iter()
                    .zip(&deltas)
                    .map(|((slot, _), delta)| {
                        // alloc: bounded — cohort-sized aggregation staging, once per round
                        let mut clipped = vec![0f32; dim];
                        self.config.rule.aggregate_into(
                            &mut clipped,
                            &zero,
                            std::slice::from_ref(delta),
                        );
                        // alloc: bounded — cohort-sized aggregation staging, once per round
                        let mut model = self.middleware[*slot].to_vec();
                        add_scaled(&mut model, &clipped, 1.0);
                        model
                    })
                    // alloc: bounded — cohort-sized aggregation staging, once per round
                    .collect()
            }
            rule => {
                // Exclusion rules: one robust consensus delta across the
                // round's uploads (a single survivor is its own consensus —
                // Krum needs two uploads to score).
                let consensus: ParamVec = if deltas.len() == 1 {
                    // alloc: bounded — cohort-sized aggregation staging, once per round
                    deltas[0].clone()
                } else {
                    // alloc: bounded — cohort-sized aggregation staging, once per round
                    let mut out = vec![0f32; dim];
                    rule.aggregate_into(&mut out, &[], &deltas);
                    out
                };
                arrived
                    .iter()
                    .map(|(slot, _)| {
                        // alloc: bounded — cohort-sized aggregation staging, once per round
                        let mut model = self.middleware[*slot].to_vec();
                        add_scaled(&mut model, &consensus, 1.0);
                        model
                    })
                    // alloc: bounded — cohort-sized aggregation staging, once per round
                    .collect()
            }
        };

        // Cross-aggregation over the sanitized models, fused into the retired
        // middleware buffers (slots without an upload carry over, exactly as
        // in plain FedCross).
        if sanitized.len() >= 2 {
            let partners = self
                .config
                .strategy
                .select_all_with(round, &sanitized, self.config.measure);
            for (i, (slot, _)) in arrived.iter().enumerate() {
                cross_aggregate_into(
                    self.middleware[*slot].make_mut(),
                    &sanitized[i],
                    &sanitized[partners[i]],
                    self.config.alpha,
                );
            }
        } else {
            // A lone sanitized survivor has no collaborator; keep it.
            let slot = arrived[0].0;
            self.middleware[slot].make_mut().copy_from_slice(&sanitized[0]);
        }

        report
    }
}

impl FederatedAlgorithm for RobustFedCross {
    fn name(&self) -> String {
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!(
            "robust-fedcross(alpha={}, {}, {})",
            self.config.alpha,
            self.config.rule.label(),
            self.config.strategy
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let k = self.middleware.len();
        let selected_k = ctx.clients_per_round();
        assert_eq!(
            selected_k, k,
            "RobustFedCross requires clients_per_round ({selected_k}) to equal the number of middleware models ({k})"
        );
        let mut selected = ctx.select_clients();
        ctx.rng_mut().shuffle(&mut selected);
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .zip(self.middleware.iter())
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|(&client, model)| (client, model.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs); // release dispatch references before fusing in place
        self.apply_updates(round, &selected, updates)
    }

    fn global_params(&self) -> Vec<f32> {
        global_model(&self.middleware)
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        out.resize(self.middleware[0].len(), 0.0);
        global_model_into(out, &self.middleware);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        Ok(AlgorithmState::multi_model(self.middleware.clone()))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let k = self.middleware.len();
        let dim = self.middleware[0].len();
        self.middleware = state.expect_models(k, dim)?.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::{coordinate_median, trimmed_mean};

    fn update(client: usize, params: Vec<f32>) -> LocalUpdate {
        LocalUpdate {
            client,
            params: ParamBlock::from(params),
            num_samples: 10,
            train_loss: 0.5,
            steps: 1,
        }
    }

    #[test]
    fn robust_fedavg_median_ignores_a_byzantine_upload() {
        let mut algo = RobustFedAvg::new(RobustRule::Median, vec![0.0; 2]);
        let report = algo.apply_updates(vec![
            update(0, vec![1.0, 1.0]),
            update(1, vec![1e9, -1e9]),
            update(2, vec![3.0, 3.0]),
        ]);
        assert_eq!(report.participants, 3);
        // Per coordinate the Byzantine value is an extreme, so the median
        // lands on an honest value: {1, 1e9, 3} → 3 and {1, -1e9, 3} → 1.
        assert_eq!(algo.global(), &[3.0, 1.0]);
    }

    #[test]
    fn robust_fedavg_is_upload_order_independent() {
        let updates = vec![
            update(4, vec![4.0, 0.0]),
            update(1, vec![1.0, 2.0]),
            update(7, vec![-2.0, 5.0]),
        ];
        for rule in [
            RobustRule::Median,
            RobustRule::TrimmedMean { trim: 0.34 },
            RobustRule::Krum { f: 1, m: 2 },
            RobustRule::NormBound { max_norm: 1.0 },
        ] {
            let mut forward = RobustFedAvg::new(rule, vec![0.0; 2]);
            let mut reversed = RobustFedAvg::new(rule, vec![0.0; 2]);
            forward.apply_updates(updates.clone());
            let mut flipped = updates.clone();
            flipped.reverse();
            reversed.apply_updates(flipped);
            assert_eq!(
                forward.global().iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                reversed.global().iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "{:?} is order-sensitive",
                rule
            );
        }
    }

    #[test]
    fn robust_fedavg_ignores_sample_count_weighting() {
        // A Byzantine client reporting a huge sample count must gain no
        // leverage: the rule aggregates unweighted.
        let mut small = RobustFedAvg::new(RobustRule::TrimmedMean { trim: 0.0 }, vec![0.0]);
        let mut big = RobustFedAvg::new(RobustRule::TrimmedMean { trim: 0.0 }, vec![0.0]);
        small.apply_updates(vec![update(0, vec![2.0]), update(1, vec![4.0])]);
        let mut inflated = update(1, vec![4.0]);
        inflated.num_samples = 1_000_000;
        big.apply_updates(vec![update(0, vec![2.0]), inflated]);
        assert_eq!(small.global(), big.global());
        assert_eq!(small.global(), &[3.0]);
    }

    #[test]
    fn robust_fedavg_empty_round_carries_the_global_over() {
        let mut algo = RobustFedAvg::new(RobustRule::Median, vec![1.5, -2.5]);
        let report = algo.apply_updates(Vec::new());
        assert_eq!(report.participants, 0);
        assert_eq!(algo.global(), &[1.5, -2.5]);
    }

    #[test]
    fn robust_fedcross_sanitizes_with_the_consensus_delta() {
        let config = RobustFedCrossConfig {
            alpha: 0.5,
            rule: RobustRule::Median,
            strategy: SelectionStrategy::InOrder,
            measure: SimilarityMeasure::Cosine,
        };
        let mut algo = RobustFedCross::new(config, vec![0.0, 0.0], 3);
        // Slots start identical (zero), so deltas equal the uploads; the
        // Byzantine upload from client 5 is the median's to discard.
        let selected = vec![7, 5, 2]; // slot 0 → client 7, slot 1 → 5, slot 2 → 2
        algo.apply_updates(
            0,
            &selected,
            vec![
                update(2, vec![3.0, 3.0]),
                update(7, vec![1.0, 1.0]),
                update(5, vec![1e9, 1e9]),
            ],
        );
        let expected_delta = coordinate_median(&[
            vec![1.0f32, 1.0],
            vec![1e9, 1e9],
            vec![3.0, 3.0],
        ]);
        // Every sanitized model = 0 + d*; with identical sanitized models,
        // cross-aggregation is a fixed point, so all middleware equal d*.
        for block in algo.middleware() {
            assert_eq!(block.as_slice(), expected_delta.as_slice());
        }
    }

    #[test]
    fn robust_fedcross_is_upload_order_independent() {
        let build = || {
            RobustFedCross::new(
                RobustFedCrossConfig {
                    alpha: 0.75,
                    rule: RobustRule::TrimmedMean { trim: 0.25 },
                    ..Default::default()
                },
                vec![0.5, -0.5, 1.0],
                4,
            )
        };
        let selected = vec![3, 0, 9, 4];
        let updates = vec![
            update(9, vec![1.0, 0.0, 2.0]),
            update(3, vec![0.0, 1.0, -1.0]),
            update(4, vec![2.0, 2.0, 2.0]),
            update(0, vec![-1.0, 0.5, 0.0]),
        ];
        let mut forward = build();
        let mut reversed = build();
        let a = forward.apply_updates(2, &selected, updates.clone());
        let mut flipped = updates;
        flipped.reverse();
        let b = reversed.apply_updates(2, &selected, flipped);
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.mean_train_loss.to_bits(), b.mean_train_loss.to_bits());
        for (x, y) in forward.middleware().iter().zip(reversed.middleware()) {
            assert_eq!(
                x.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                y.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn norm_bound_clips_each_slot_delta_independently() {
        let config = RobustFedCrossConfig {
            alpha: 0.9,
            rule: RobustRule::NormBound { max_norm: 1.0 },
            strategy: SelectionStrategy::InOrder,
            ..Default::default()
        };
        let mut algo = RobustFedCross::new(config, vec![0.0], 2);
        // Slot 0's delta has norm 100 → clipped to 1; slot 1's has norm 0.5,
        // untouched. Sanitized models: 1.0 and 0.5; in-order cross-agg:
        // 0.9·1.0 + 0.1·0.5 = 0.95 and 0.9·0.5 + 0.1·1.0 = 0.55.
        algo.apply_updates(
            0,
            &[1, 6],
            vec![update(1, vec![100.0]), update(6, vec![0.5])],
        );
        let m: Vec<f32> = algo.middleware().iter().map(|b| b[0]).collect();
        assert!((m[0] - 0.95).abs() < 1e-6, "slot 0 got {}", m[0]);
        assert!((m[1] - 0.55).abs() < 1e-6, "slot 1 got {}", m[1]);
    }

    #[test]
    fn lone_survivor_keeps_its_sanitized_training() {
        let mut algo = RobustFedCross::new(
            RobustFedCrossConfig {
                rule: RobustRule::TrimmedMean { trim: 0.25 },
                ..Default::default()
            },
            vec![1.0, 1.0],
            3,
        );
        algo.apply_updates(0, &[2, 8, 5], vec![update(8, vec![3.0, 0.0])]);
        // Slot 1 (client 8) keeps its own delta; slots 0 and 2 carry over.
        assert_eq!(algo.middleware()[1].as_slice(), &[3.0, 0.0]);
        assert_eq!(algo.middleware()[0].as_slice(), &[1.0, 1.0]);
        assert_eq!(algo.middleware()[2].as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn names_encode_the_rule() {
        let avg = RobustFedAvg::new(RobustRule::Krum { f: 1, m: 2 }, vec![0.0]);
        assert_eq!(avg.name(), "robust-fedavg(krum(f=1,m=2))");
        assert_eq!(avg.rule(), RobustRule::Krum { f: 1, m: 2 });
        let cross = RobustFedCross::new(RobustFedCrossConfig::default(), vec![0.0], 2);
        assert_eq!(
            cross.name(),
            "robust-fedcross(alpha=0.99, trimmed-mean(0.25), lowest-similarity)"
        );
        assert!((cross.config().alpha - 0.99).abs() < 1e-6);
    }

    #[test]
    fn snapshot_restore_round_trips_the_middleware() {
        let mut algo = RobustFedCross::new(RobustFedCrossConfig::default(), vec![0.0; 2], 3);
        algo.apply_updates(
            0,
            &[0, 1, 2],
            vec![
                update(0, vec![1.0, 0.0]),
                update(1, vec![0.0, 1.0]),
                update(2, vec![0.5, 0.5]),
            ],
        );
        let state = algo.snapshot_state().expect("snapshots");
        let mut fresh = RobustFedCross::new(RobustFedCrossConfig::default(), vec![0.0; 2], 3);
        fresh.restore_state(&state).expect("restores");
        for (a, b) in algo.middleware().iter().zip(fresh.middleware()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert_eq!(algo.global_params(), fresh.global_params());
        // Mismatched shape is rejected.
        let mut wrong = RobustFedCross::new(RobustFedCrossConfig::default(), vec![0.0; 2], 4);
        assert!(wrong.restore_state(&state).is_err());
    }

    #[test]
    fn trimmed_consensus_matches_the_kernel() {
        let mut algo = RobustFedCross::new(
            RobustFedCrossConfig {
                rule: RobustRule::TrimmedMean { trim: 0.25 },
                strategy: SelectionStrategy::InOrder,
                alpha: 0.5,
                ..Default::default()
            },
            vec![0.0],
            4,
        );
        let deltas = [vec![1.0f32], vec![2.0], vec![3.0], vec![100.0]];
        algo.apply_updates(
            0,
            &[0, 1, 2, 3],
            deltas
                .iter()
                .enumerate()
                .map(|(c, d)| update(c, d.clone()))
                .collect(),
        );
        let consensus = trimmed_mean(&deltas, 0.25)[0];
        for block in algo.middleware() {
            assert_eq!(block[0], consensus);
        }
    }
}
