// Fixture: D005 — unsafe without a SAFETY comment.
// Linted as crate "tensor".

pub fn read_first(ptr: *const f32) -> f32 {
    // BAD: no SAFETY comment above the unsafe block.
    unsafe { *ptr }
}

pub fn read_second(ptr: *const f32) -> f32 {
    // SAFETY: caller guarantees ptr points at least two floats into a live
    // allocation.
    unsafe { *ptr.add(1) }
}
