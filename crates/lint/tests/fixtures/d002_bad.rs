// Fixture: D002 — wall clock and ambient RNG outside bench.
// Linted as crate "flsim".

use std::time::Instant;

pub fn measure() -> u128 {
    // BAD: wall-clock read in a trajectory-affecting crate.
    let t0 = Instant::now();
    work();
    t0.elapsed().as_nanos()
}

pub fn jitter() -> f64 {
    // BAD: ambient RNG — irreproducible.
    let mut rng = rand::thread_rng();
    rng.gen::<f64>() + rand::random::<f64>()
}

pub fn stamp() -> u64 {
    // BAD: SystemTime in checkpoint metadata would break bitwise resume.
    let now = std::time::SystemTime::now();
    now.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

fn work() {}
