//! Integration tests covering the text tasks (Shakespeare / Sent140 stand-ins
//! with the LSTM classifier) and the scale knobs the compatibility analysis
//! (RQ3) sweeps: the number of activated clients K and the federation size.

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::{
    FederatedDataset, SynthSent140Config, SynthShakespeareConfig,
};
use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{lstm_classifier, LstmConfig};
use fedcross_tensor::SeededRng;

fn text_sim_config(rounds: usize, k: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round: k,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.1,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 3,
    }
}

#[test]
fn sentiment_federation_learns_above_chance_with_fedcross_and_fedavg() {
    let mut rng = SeededRng::new(1);
    let data = FederatedDataset::synth_sent140(
        &SynthSent140Config {
            num_clients: 12,
            samples_per_client: 30,
            test_samples: 120,
            ..Default::default()
        },
        &mut rng,
    );
    let template = lstm_classifier(
        LstmConfig {
            vocab: 64,
            embed_dim: 8,
            hidden_dim: 16,
        },
        2,
        &mut rng,
    );
    for spec in [AlgorithmSpec::FedAvg, AlgorithmSpec::fedcross_default()] {
        let mut algorithm =
            build_algorithm(spec, template.params_flat(), data.num_clients(), 4);
        let result = Simulation::new(text_sim_config(8, 4), &data, template.clone_model())
            .run(algorithm.as_mut());
        assert!(
            result.history.best_accuracy() > 0.6,
            "{} only reached {:.2} on binary sentiment",
            spec.label(),
            result.history.best_accuracy()
        );
    }
}

#[test]
fn next_char_federation_beats_uniform_guessing() {
    let mut rng = SeededRng::new(2);
    let data = FederatedDataset::synth_shakespeare(
        &SynthShakespeareConfig {
            num_clients: 10,
            samples_per_client: 40,
            test_samples: 150,
            ..Default::default()
        },
        &mut rng,
    );
    let vocab = data.num_classes();
    let template = lstm_classifier(
        LstmConfig {
            vocab: vocab.max(64),
            embed_dim: 8,
            hidden_dim: 16,
        },
        vocab,
        &mut rng,
    );
    let mut algorithm = build_algorithm(
        AlgorithmSpec::fedcross_default(),
        template.params_flat(),
        data.num_clients(),
        4,
    );
    let result = Simulation::new(text_sim_config(8, 4), &data, template).run(algorithm.as_mut());
    let chance = 1.0 / vocab as f32;
    assert!(
        result.history.best_accuracy() > 3.0 * chance,
        "next-char accuracy {:.3} is not clearly above chance {:.3}",
        result.history.best_accuracy(),
        chance
    );
}

#[test]
fn fedcross_supports_different_numbers_of_activated_clients() {
    // RQ3 / Figure 6: K is a free parameter; the algorithm must run for any
    // K >= 2 that matches its middleware count.
    let mut rng = SeededRng::new(4);
    let data = FederatedDataset::synth_sent140(
        &SynthSent140Config {
            num_clients: 12,
            samples_per_client: 15,
            test_samples: 60,
            ..Default::default()
        },
        &mut rng,
    );
    let template = lstm_classifier(
        LstmConfig {
            vocab: 64,
            embed_dim: 8,
            hidden_dim: 12,
        },
        2,
        &mut rng,
    );
    for k in [2usize, 4, 8] {
        let mut algorithm = build_algorithm(
            AlgorithmSpec::fedcross_default(),
            template.params_flat(),
            data.num_clients(),
            k,
        );
        let mut config = text_sim_config(3, k);
        config.eval_every = 3;
        let result =
            Simulation::new(config, &data, template.clone_model()).run(algorithm.as_mut());
        assert_eq!(result.comm.client_contacts as usize, 3 * k);
        assert!(algorithm.global_params().iter().all(|p| p.is_finite()));
    }
}

#[test]
fn growing_the_federation_shrinks_per_client_data_but_still_trains() {
    // RQ3 / Figure 7: fixed total sample budget spread over more clients.
    let total_samples = 360usize;
    for num_clients in [9usize, 18, 36] {
        let mut rng = SeededRng::new(5);
        let data = FederatedDataset::synth_sent140(
            &SynthSent140Config {
                num_clients,
                samples_per_client: total_samples / num_clients,
                test_samples: 80,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(data.total_train_samples(), total_samples);
        let template = lstm_classifier(
            LstmConfig {
                vocab: 64,
                embed_dim: 8,
                hidden_dim: 12,
            },
            2,
            &mut rng,
        );
        let k = (num_clients / 9).max(2);
        let mut algorithm = build_algorithm(
            AlgorithmSpec::fedcross_default(),
            template.params_flat(),
            data.num_clients(),
            k,
        );
        let result = Simulation::new(text_sim_config(4, k), &data, template)
            .run(algorithm.as_mut());
        assert!(result.history.final_accuracy() >= 0.0);
        assert!(result.comm.total_scalars() > 0);
    }
}
