//! A small brace/string-aware tokenizer that splits Rust source into
//! per-line *code* and *comment* channels.
//!
//! The rule engine only ever pattern-matches against the code channel, so
//! text inside string literals, char literals, raw strings and comments can
//! never trip a rule; waiver annotations and audit markers are looked up in
//! the comment channel. This is deliberately not a full parser — no `syn`,
//! no external dependencies — just enough lexical state to know, for every
//! byte, whether it is code, literal content or comment.

/// The per-line code/comment split of one source file.
#[derive(Debug, Default)]
pub struct Stripped {
    /// Line-by-line source with comments removed and the *contents* of
    /// string/char literals blanked out (the delimiting quotes survive, so
    /// the code stays brace-balanced for downstream scanning).
    pub code: Vec<String>,
    /// Line-by-line comment text (line comments, doc comments and the parts
    /// of block comments that fall on each line), without the `//` / `/*`
    /// markers removed — the raw comment bytes.
    pub comments: Vec<String>,
}

impl Stripped {
    /// Number of lines in the file.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    /// Inside `"…"` or `b"…"`.
    Str,
    /// Inside `r"…"`, `r#"…"#`, `br##"…"##`, …; payload is the `#` count.
    RawStr(u32),
    /// Inside `'…'` or `b'…'`.
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits `source` into per-line code and comment channels.
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Stripped::default();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    // The last code character emitted, used to tell `r"..."` raw strings from
    // identifiers that merely end in `r` (e.g. `for r in ...`).
    let mut prev_code: char = '\n';

    let mut i = 0usize;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            // A newline terminates line comments; every other state carries
            // over (block comments, raw strings and plain strings may span
            // lines — the latter via a trailing backslash).
            if state == State::LineComment {
                state = State::Code;
            }
            out.code.push(std::mem::take(&mut code));
            out.comments.push(std::mem::take(&mut comment));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    prev_code = '"';
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident(prev_code) {
                    // Possible raw-string / byte-string prefix: r" r#" b" br#"
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (c == 'r' || (c == 'b' && j > i + 1)) || hashes > 0;
                    if chars.get(j) == Some(&'"') && (is_raw || c == 'b') {
                        // Emit the prefix and opening quote as code, then
                        // blank the contents. A bare `b"` is an ordinary
                        // (escaped) byte string, not a raw one.
                        for &p in &chars[i..=j] {
                            code.push(p);
                        }
                        let raw = chars[i..j].contains(&'r') || hashes > 0;
                        state = if raw { State::RawStr(hashes) } else { State::Str };
                        prev_code = '"';
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        // b'…' byte char literal.
                        code.push('b');
                        code.push('\'');
                        state = State::CharLit;
                        prev_code = '\'';
                        i += 2;
                    } else {
                        code.push(c);
                        prev_code = c;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Tell a char literal from a lifetime: `'a` followed by a
                    // second `'` one or two chars later is a literal (`'a'`,
                    // `'\n'`); `'a` followed by an identifier tail is a
                    // lifetime and stays in code.
                    let n1 = chars.get(i + 1).copied();
                    let n2 = chars.get(i + 2).copied();
                    let is_literal = match n1 {
                        Some('\\') => true,
                        Some(x) if x != '\'' => n2 == Some('\''),
                        _ => false,
                    };
                    code.push('\'');
                    prev_code = '\'';
                    if is_literal {
                        state = State::CharLit;
                    }
                    i += 1;
                } else {
                    code.push(c);
                    prev_code = c;
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    comment.push_str("*/");
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Code
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character (covers \" and \\).
                    code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    code.push('"');
                    prev_code = '"';
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        prev_code = '"';
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some_and(|&e| e != '\n') {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    code.push('\'');
                    prev_code = '\'';
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        out.code.push(code);
        out.comments.push(comment);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_go_to_the_comment_channel() {
        let s = strip("let x = 1; // trailing note\n// full line\nlet y = 2;\n");
        assert_eq!(s.code[0], "let x = 1; ");
        assert!(s.comments[0].contains("trailing note"));
        assert_eq!(s.code[1], "");
        assert!(s.comments[1].contains("full line"));
        assert_eq!(s.code[2], "let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_survive() {
        let s = strip("let s = \"HashMap.iter() // not a comment\";\n");
        assert!(!s.code[0].contains("HashMap"));
        assert!(!s.code[0].contains("//"));
        assert!(s.comments[0].is_empty());
        assert_eq!(s.code[0].matches('"').count(), 2);
    }

    #[test]
    fn escaped_quotes_do_not_end_the_string() {
        let s = strip("let s = \"a\\\"b\"; let t = 1;\n");
        assert!(s.code[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let s = strip("let s = r#\"thread_rng() \"quoted\" more\"#; let u = 2;\n");
        assert!(!s.code[0].contains("thread_rng"));
        assert!(s.code[0].contains("let u = 2;"));
    }

    #[test]
    fn byte_and_byte_raw_strings_are_blanked() {
        let s = strip("let a = b\"Instant::now\"; let b2 = br#\"SystemTime\"#;\n");
        assert!(!s.code[0].contains("Instant"));
        assert!(!s.code[0].contains("SystemTime"));
        assert!(s.code[0].contains("let b2 ="));
    }

    #[test]
    fn nested_block_comments_resolve() {
        let s = strip("/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(s.code[0].contains("let x = 1;"));
        assert!(!s.code[0].contains("outer"));
        assert!(s.comments[0].contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let s = strip("let a = 1; /* begin\nmul_add inside\nend */ let b = 2;\n");
        assert!(s.code[0].contains("let a = 1;"));
        assert_eq!(s.code[1].trim(), "");
        assert!(s.comments[1].contains("mul_add"));
        assert!(s.code[2].contains("let b = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = strip("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x'; let d = '\\n';\n");
        assert!(s.code[0].contains("fn f<'a>(x: &'a str) -> &'a str { x }"));
        // Char literal contents are blanked.
        assert!(!s.code[1].contains('x'));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let s = strip("for r in 0..3 { let var = r\"raw\"; }\n");
        assert!(s.code[0].contains("for r in 0..3"));
        assert!(!s.code[0].contains("raw"));
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        let s = strip("let q = '\"'; let z = 9;\n");
        assert!(s.code[0].contains("let z = 9;"));
    }
}
