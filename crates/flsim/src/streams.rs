//! Round-derived stochastic streams.
//!
//! The resume plane's core contract (docs/CHECKPOINTING.md) is that
//! everything random in a round derives from the **absolute round index**,
//! never from a stream consumed across rounds. The engine already obeys it
//! (`master.fork(round)`, then `round_rng.fork(client + 1)` per job); this
//! module packages the same construction for *algorithm-side* stochastic
//! consumers — DP client noise, DP central noise, stochastic-compression
//! dithering, secure-aggregation masks — so none of them has to keep a
//! long-lived consumed RNG.
//!
//! A [`RoundStreams`] is a pure function of `(domain tag, base seed)`; a
//! [`RoundStream`] adds the absolute round index; the final RNG adds the
//! consumer's identity (a middleware slot or client id). Three properties
//! follow directly from [`SeededRng::fork`]'s construction-seed contract:
//!
//! 1. **Resumability** — round `R`'s noise is identical whether the process
//!    booted at round 0 or restored a checkpoint at round `R`; there is no
//!    cross-round RNG state to persist.
//! 2. **Order independence** — two consumers' draws never share a stream, so
//!    the noise a client receives does not depend on which uploads arrived
//!    before it (the aggregation estimator becomes a deterministic function
//!    of the round, not of arrival order).
//! 3. **Domain separation** — distinct [`StreamDomain`] tags decorrelate
//!    consumers that share a base seed (e.g. a DP run's per-client noise and
//!    its central noise), and runs with adjacent base seeds never replay each
//!    other's streams (the SplitMix64-style finaliser inside `fork` breaks
//!    the additive aliasing that `seed + round` arithmetic suffers from).

use fedcross_tensor::SeededRng;

/// Identifies an independent family of round-derived streams.
///
/// Every stochastic consumer in the workspace draws from its own domain, so
/// sharing one base seed across consumers is safe. The discriminants are
/// large, structurally unrelated constants: the derivation adds the tag to
/// the finaliser input, so small consecutive tags would still be decorrelated
/// by the mixing — the spread-out values just make collisions with other
/// `fork` call sites impossible by inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamDomain {
    /// Per-client differential-privacy noise (local placement).
    DpClientNoise,
    /// Server-side differential-privacy noise (central placement).
    DpCentralNoise,
    /// Stochastic-compression randomness (dithered quantization, random-k).
    CompressionDither,
    /// Secure-aggregation pairwise mask seeds.
    SecureAggMask,
    /// Static adversary membership: which clients are compromised for the
    /// whole run (queried at round 0, keyed by the base seed only).
    AdversaryMembership,
    /// Per-round adversarial corruption draws (e.g. the colluding attack's
    /// shared target direction).
    AdversaryDraw,
    /// Static device-speed assignment: how fast each client's hardware is for
    /// the whole run (queried at round 0, keyed by the device model's seed).
    DeviceSpeed,
    /// Per-round upload-latency jitter draws for the device/straggler model.
    LatencyDraw,
    /// Per-round fault-injection draws (mid-round crashes, stalled and
    /// duplicated uploads, transient server-apply failures).
    FaultDraw,
}

impl StreamDomain {
    /// The stream id this domain occupies in the base seed's fork space.
    fn tag(self) -> u64 {
        match self {
            StreamDomain::DpClientNoise => 0x4450_434C_4945_4E54,    // "DPCLIENT"
            StreamDomain::DpCentralNoise => 0x4450_4345_4E54_5241,   // "DPCENTRA"
            StreamDomain::CompressionDither => 0x434F_4D50_4449_5448, // "COMPDITH"
            StreamDomain::SecureAggMask => 0x5345_4341_474D_4153,    // "SECAGMAS"
            StreamDomain::AdversaryMembership => 0x4144_564D_454D_4252, // "ADVMEMBR"
            StreamDomain::AdversaryDraw => 0x4144_5644_5241_5753,    // "ADVDRAWS"
            StreamDomain::DeviceSpeed => 0x4445_5653_5045_4544,      // "DEVSPEED"
            StreamDomain::LatencyDraw => 0x4C41_5444_5241_5753,      // "LATDRAWS"
            StreamDomain::FaultDraw => 0x464C_5444_5241_5753,        // "FLTDRAWS"
        }
    }
}

/// A factory of per-round, per-consumer RNGs derived from
/// `(domain tag, base seed, absolute round, slot or client id)`.
///
/// Construct one per stochastic subsystem at algorithm-construction time and
/// call [`RoundStreams::round`] inside `run_round`; the factory itself holds
/// no mutable state, so it never needs checkpointing.
///
/// ```
/// use fedcross_flsim::streams::{RoundStreams, StreamDomain};
///
/// let noise = RoundStreams::new(StreamDomain::DpClientNoise, 42);
/// // Round 7's stream for client 3 is the same value no matter how many
/// // rounds ran before, in which order uploads arrive, or whether the
/// // process restarted in between:
/// let mut a = noise.round(7).stream(3);
/// let mut b = RoundStreams::new(StreamDomain::DpClientNoise, 42).round(7).stream(3);
/// assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct RoundStreams {
    base_seed: u64,
    domain_root: SeededRng,
}

impl RoundStreams {
    /// Creates the stream family for `domain`, rooted at `base_seed`.
    pub fn new(domain: StreamDomain, base_seed: u64) -> Self {
        Self {
            base_seed,
            domain_root: SeededRng::new(base_seed).fork(domain.tag()), // fork: construction-seed
        }
    }

    /// The base seed this family was rooted at.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The streams of one **absolute** round.
    pub fn round(&self, round: usize) -> RoundStream {
        RoundStream {
            root: self.domain_root.fork(round as u64), // fork: construction-seed
        }
    }
}

/// One domain's streams for one absolute round.
///
/// The round root's fork space is allocated exactly like the engine's round
/// RNG: stream id 0 is the round's single server-side consumer
/// ([`RoundStream::server`]), ids `1..` are per-slot/per-client consumers
/// ([`RoundStream::stream`] shifts by one), so the two can never collide.
#[derive(Debug, Clone)]
pub struct RoundStream {
    root: SeededRng,
}

impl RoundStream {
    /// The RNG of the consumer identified by `id` (a middleware slot or a
    /// client index) in this round.
    pub fn stream(&self, id: usize) -> SeededRng {
        self.root.fork(id as u64 + 1) // fork: construction-seed
    }

    /// The RNG of this round's single server-side consumer (e.g. the one
    /// central-DP perturbation of the aggregated delta).
    pub fn server(&self) -> SeededRng {
        self.root.fork(0) // fork: construction-seed
    }

    /// The round's derived seed, for consumers that take a `u64` instead of
    /// an RNG (the secure-aggregation [`PairwiseMasker`] builds its own
    /// pairwise fork space from one round seed).
    ///
    /// [`PairwiseMasker`]: https://docs.rs/fedcross-privacy
    pub fn seed(&self) -> u64 {
        self.root.seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_draws(rng: &mut SeededRng, n: usize) -> Vec<u32> {
        (0..n).map(|_| rng.uniform().to_bits()).collect()
    }

    #[test]
    fn streams_are_a_pure_function_of_their_coordinates() {
        let a = RoundStreams::new(StreamDomain::DpClientNoise, 9);
        let b = RoundStreams::new(StreamDomain::DpClientNoise, 9);
        for round in [0usize, 1, 17, 4096] {
            for id in [0usize, 1, 5] {
                let mut x = a.round(round).stream(id);
                let mut y = b.round(round).stream(id);
                assert_eq!(first_draws(&mut x, 8), first_draws(&mut y, 8));
            }
            let mut x = a.round(round).server();
            let mut y = b.round(round).server();
            assert_eq!(first_draws(&mut x, 8), first_draws(&mut y, 8));
        }
    }

    #[test]
    fn domains_rounds_and_ids_are_decorrelated() {
        let client = RoundStreams::new(StreamDomain::DpClientNoise, 9);
        let central = RoundStreams::new(StreamDomain::DpCentralNoise, 9);
        // Same (seed, round, id) in different domains: different streams.
        let mut a = client.round(3).stream(1);
        let mut b = central.round(3).stream(1);
        assert_ne!(first_draws(&mut a, 8), first_draws(&mut b, 8));
        // Same domain, adjacent rounds: different streams.
        let mut a = client.round(3).stream(1);
        let mut b = client.round(4).stream(1);
        assert_ne!(first_draws(&mut a, 8), first_draws(&mut b, 8));
        // Same round, adjacent ids — and the server stream — all distinct.
        let round = client.round(3);
        let mut seeds = vec![round.server().seed()];
        for id in 0..8 {
            seeds.push(round.stream(id).seed());
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 9, "stream ids collided");
    }

    #[test]
    fn adjacent_base_seeds_do_not_alias_across_rounds() {
        // The bug this module exists to prevent: with `seed + round`
        // arithmetic, (seed 5, round 3) and (seed 6, round 2) share a stream.
        // Under fork derivation they must not.
        for domain in [
            StreamDomain::DpClientNoise,
            StreamDomain::DpCentralNoise,
            StreamDomain::CompressionDither,
            StreamDomain::SecureAggMask,
            StreamDomain::AdversaryMembership,
            StreamDomain::AdversaryDraw,
            StreamDomain::DeviceSpeed,
            StreamDomain::LatencyDraw,
            StreamDomain::FaultDraw,
        ] {
            let mut seeds = Vec::new();
            for base in 0..6u64 {
                let streams = RoundStreams::new(domain, base);
                for round in 0..6usize {
                    seeds.push(streams.round(round).seed());
                }
            }
            let total = seeds.len();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), total, "{domain:?}: round seeds aliased");
        }
    }

    #[test]
    fn base_seed_is_reported() {
        let streams = RoundStreams::new(StreamDomain::CompressionDither, 1234);
        assert_eq!(streams.base_seed(), 1234);
    }
}
