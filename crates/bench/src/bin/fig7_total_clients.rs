//! Figure 7: impact of the total number of clients |C| (CIFAR-10, β = 0.5)
//! with 10% participation.
//!
//! The total sample budget is held fixed, so more clients means less data per
//! client — exactly the paper's construction. Usage:
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin fig7_total_clients [--rounds N] [--sizes 20,50,100]
//! ```

use fedcross::AlgorithmSpec;
use fedcross_bench::report::{format_curve, write_json};
use fedcross_bench::{build_model, build_task, run_method_on, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;

fn main() {
    let args = Args::from_env();
    let base = args.apply(ExperimentConfig::default());

    let sizes: Vec<usize> = args
        .value::<String>("--sizes")
        .map(|s| s.split(',').filter_map(|v| v.parse().ok()).collect())
        .unwrap_or_else(|| vec![20, 40, 80]);
    // Fixed total training budget, shared across clients.
    let total_samples = base.num_clients * base.samples_per_client;

    let task_heterogeneity = Heterogeneity::Dirichlet(0.5);

    println!(
        "Figure 7 — impact of the total number of clients (10% participation, {} total samples, {} rounds)",
        total_samples, base.rounds
    );

    let mut json = Vec::new();
    for &num_clients in &sizes {
        let clients_per_round = (num_clients / 10).max(2);
        let config = ExperimentConfig {
            num_clients,
            clients_per_round,
            samples_per_client: (total_samples / num_clients).max(4),
            ..base
        };
        let task = TaskSpec::Cifar10(task_heterogeneity);
        let data = build_task(task, &config, config.seed);
        println!(
            "\n  |C| = {num_clients} (K = {clients_per_round}, {} samples/client)",
            config.samples_per_client
        );
        for spec in [AlgorithmSpec::FedAvg, fedcross_bench::scaled_fedcross()] {
            let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
            let outcome = run_method_on(spec, &data, template, &config, &task.label(), "CNN");
            println!(
                "    {:<9} best {:>5.1}%  curve: {}",
                spec.label(),
                outcome.result.best_accuracy_pct(),
                format_curve(&outcome.result.history, 6)
            );
            json.push(serde_json::json!({
                "total_clients": num_clients,
                "clients_per_round": clients_per_round,
                "samples_per_client": config.samples_per_client,
                "method": spec.label(),
                "best_accuracy_pct": outcome.result.best_accuracy_pct(),
                "curve": outcome.result.history.accuracy_curve(),
            }));
        }
    }
    write_json("fig7_total_clients.json", &json);
    println!("\nPaper shape to check: FedCross wins at every federation size, and more clients");
    println!("(hence less data per client) slows everyone's convergence.");
}
