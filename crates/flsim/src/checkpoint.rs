//! Training checkpoints: save and resume federated runs **bitwise
//! faithfully**.
//!
//! The paper's experiments run for thousands of communication rounds; a
//! production deployment of FedCross needs to survive server restarts without
//! losing the middleware models (which, unlike FedAvg's single global model,
//! are the *only* training state). A [`Checkpoint`] (format
//! [`CHECKPOINT_VERSION`]) persists everything a restart needs:
//!
//! * the complete [`AlgorithmState`] captured by
//!   [`FederatedAlgorithm::snapshot_state`](crate::engine::FederatedAlgorithm::snapshot_state)
//!   — FedCross's middleware list, SCAFFOLD's server and client control
//!   variates, FedGen's distillation teacher, CluSamp's per-client update
//!   directions,
//! * the [`TrainingHistory`] with **absolute** round indices and the
//!   [`CommTracker`] counters accumulated so far,
//! * the simulation seed and a configuration fingerprint, so a resume against
//!   a different configuration fails loudly instead of silently changing the
//!   trajectory.
//!
//! Together with the engine's absolute-round RNG derivation
//! ([`Simulation::run_from`](crate::engine::Simulation::run_from)), a run
//! checkpointed at round `R` and resumed is **bitwise identical** to the
//! uninterrupted run — same global parameters, same history records, same
//! communication totals (pinned by `tests/tests/resume_plane.rs`).
//!
//! [`Checkpoint::save`] is atomic (temp file + rename): a crash mid-save
//! never corrupts or truncates an existing checkpoint on disk.

use crate::comm::CommTracker;
use crate::history::TrainingHistory;
use fedcross_nn::params::ParamBlock;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Current checkpoint format version. Older versions are no longer readable;
/// loading one fails with a missing-field error. Version 1 was the
/// pre-resume-plane format (no algorithm state, comm counters or config
/// fingerprint); version 2 lacked the [`AlgorithmState::records`] section
/// that the DP accountant and compression counters persist through.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Encodes a `u64` counter for an [`AlgorithmState::records`] entry.
///
/// Counters travel as decimal strings because the serde shim's JSON numbers
/// are `f64`-backed: a numeric `u64` above 2^53 would silently truncate.
pub fn encode_u64(value: u64) -> String {
    value.to_string()
}

/// Decodes a counter written by [`encode_u64`].
pub fn decode_u64(text: &str) -> Result<u64, StateError> {
    text.parse::<u64>()
        .map_err(|_| StateError::new(format!("invalid u64 counter `{text}`")))
}

/// Encodes an `f64` for an [`AlgorithmState::records`] entry, **bitwise**.
///
/// The accountant's spent privacy budget must survive a checkpoint exactly
/// (the resumed run keeps adding to it, and any rounding would make the
/// reported ε diverge from the uninterrupted run), so the value travels as
/// its hex bit pattern rather than a decimal rendering.
pub fn encode_f64(value: f64) -> String {
    format!("f64:{:016x}", value.to_bits())
}

/// Decodes a value written by [`encode_f64`].
pub fn decode_f64(text: &str) -> Result<f64, StateError> {
    let hex = text
        .strip_prefix("f64:")
        .ok_or_else(|| StateError::new(format!("invalid f64 record `{text}` (missing prefix)")))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|_| StateError::new(format!("invalid f64 record `{text}`")))
}

/// An error while capturing or restoring an [`AlgorithmState`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateError {
    message: String,
}

impl StateError {
    /// Creates a state error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "algorithm state: {}", self.message)
    }
}

impl std::error::Error for StateError {}

/// A per-client vector table: `(client id, vector)` entries sorted by client
/// id. SCAFFOLD's client control variates and CluSamp's update directions
/// are stored in this shape.
pub type ClientTable = Vec<(usize, Vec<f32>)>;

/// The complete server-side training state of a [`FederatedAlgorithm`]
/// (`crate::engine::FederatedAlgorithm`), in a shape every method of the
/// paper fits into:
///
/// * single-model methods (FedAvg, FedProx, FedGen, CluSamp, SCAFFOLD) store
///   their global model as the one entry of [`AlgorithmState::models`];
/// * FedCross stores its `K` middleware models there **in slot order** (the
///   order is part of the training state — cross-aggregation partners are
///   chosen per slot);
/// * model-shaped auxiliary vectors (SCAFFOLD's server control variate,
///   FedGen's distillation teacher) go into [`AlgorithmState::aux`] by name;
/// * per-client tables (SCAFFOLD's client control variates, CluSamp's update
///   directions, compressed FedAvg's error-feedback residuals) go into
///   [`AlgorithmState::client_tables`] by name, sorted by client id so the
///   serialised form is deterministic;
/// * scalar counters and budget records that are not model-shaped (the DP
///   accountant's spent Rényi budget, `UploadStats` totals) go into
///   [`AlgorithmState::records`] by name, each value string-encoded via
///   [`encode_u64`] / [`encode_f64`] so `u64` and `f64` survive the
///   f64-backed JSON number representation losslessly.
///
/// Models are [`ParamBlock`]s: snapshotting FedCross's middleware list is `K`
/// reference-count bumps, not an `O(K·d)` clone storm, and restoring hands
/// the blocks back by reference bump too (copy-on-write duplicates a buffer
/// only when the first post-restore round fuses into it).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmState {
    /// Primary model list (see the type-level docs for the layout contract).
    pub models: Vec<ParamBlock>,
    /// Named model-shaped auxiliary vectors.
    pub aux: Vec<(String, Vec<f32>)>,
    /// Named per-client vector tables, each sorted by client id.
    pub client_tables: Vec<(String, ClientTable)>,
    /// Named string-encoded scalar records ([`encode_u64`] / [`encode_f64`]):
    /// counters and budget accumulators that must survive JSON losslessly.
    pub records: Vec<(String, Vec<String>)>,
}

impl AlgorithmState {
    /// State of a single-model method: just the global model.
    pub fn single_model(global: ParamBlock) -> Self {
        Self {
            models: vec![global],
            ..Self::default()
        }
    }

    /// State of a multi-model method: the model list in slot order.
    pub fn multi_model(models: Vec<ParamBlock>) -> Self {
        Self {
            models,
            ..Self::default()
        }
    }

    /// Adds a named auxiliary vector (builder style).
    pub fn with_aux(mut self, name: impl Into<String>, vector: Vec<f32>) -> Self {
        self.aux.push((name.into(), vector));
        self
    }

    /// Adds a named per-client table (builder style), sorting it by client id
    /// so the serialised form is deterministic regardless of the source
    /// container's iteration order.
    pub fn with_client_table(
        mut self,
        name: impl Into<String>,
        mut table: ClientTable,
    ) -> Self {
        table.sort_by_key(|(client, _)| *client);
        self.client_tables.push((name.into(), table));
        self
    }

    /// Adds a named string-encoded record (builder style). Encode each value
    /// with [`encode_u64`] / [`encode_f64`] so it survives JSON losslessly.
    pub fn with_record(
        mut self,
        name: impl Into<String>,
        values: Vec<String>,
    ) -> Self {
        self.records.push((name.into(), values));
        self
    }

    /// Number of scalar parameters per model, or 0 when no model is stored.
    pub fn param_count(&self) -> usize {
        self.models.first().map_or(0, ParamBlock::len)
    }

    /// The single model of a single-model method, validated against the
    /// expected parameter count.
    pub fn expect_single_model(&self, dim: usize) -> Result<&ParamBlock, StateError> {
        match self.models.as_slice() {
            [model] if model.len() == dim => Ok(model),
            [model] => Err(StateError::new(format!(
                "model has {} parameters, expected {dim}",
                model.len()
            ))),
            models => Err(StateError::new(format!(
                "expected exactly one model, found {}",
                models.len()
            ))),
        }
    }

    /// The model list of a multi-model method, validated against the expected
    /// model count (FedCross's `K`) and per-model parameter count.
    pub fn expect_models(&self, count: usize, dim: usize) -> Result<&[ParamBlock], StateError> {
        if self.models.len() != count {
            return Err(StateError::new(format!(
                "middleware count mismatch: checkpoint has {} models, the resuming algorithm has {count}",
                self.models.len()
            )));
        }
        for (slot, model) in self.models.iter().enumerate() {
            if model.len() != dim {
                return Err(StateError::new(format!(
                    "model {slot} has {} parameters, expected {dim}",
                    model.len()
                )));
            }
        }
        Ok(&self.models)
    }

    /// A named auxiliary vector, validated against the expected length.
    pub fn expect_aux(&self, name: &str, dim: usize) -> Result<&[f32], StateError> {
        let (_, vector) = self
            .aux
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| StateError::new(format!("missing auxiliary vector `{name}`")))?;
        if vector.len() != dim {
            return Err(StateError::new(format!(
                "auxiliary vector `{name}` has {} entries, expected {dim}",
                vector.len()
            )));
        }
        Ok(vector)
    }

    /// A named per-client table, validating every entry's vector length, that
    /// every client id lies below `num_clients`, and that the ids are
    /// strictly increasing (the on-disk format contract — also rules out
    /// duplicate entries, which would otherwise restore last-entry-wins).
    pub fn expect_client_table(
        &self,
        name: &str,
        num_clients: usize,
        dim: usize,
    ) -> Result<&[(usize, Vec<f32>)], StateError> {
        let (_, table) = self
            .client_tables
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| StateError::new(format!("missing client table `{name}`")))?;
        if let Some(pair) = table.windows(2).find(|pair| pair[0].0 >= pair[1].0) {
            return Err(StateError::new(format!(
                "client table `{name}` is not strictly sorted by client id ({} then {})",
                pair[0].0, pair[1].0
            )));
        }
        for (client, vector) in table {
            if *client >= num_clients {
                return Err(StateError::new(format!(
                    "client table `{name}` references client {client}, federation has {num_clients}"
                )));
            }
            if vector.len() != dim {
                return Err(StateError::new(format!(
                    "client table `{name}` entry for client {client} has {} entries, expected {dim}",
                    vector.len()
                )));
            }
        }
        Ok(table)
    }

    /// A named string record, or `None` when absent. Use for records that an
    /// algorithm only writes once the state exists (e.g. a checkpoint taken
    /// before the first round has no accountant yet).
    pub fn record(&self, name: &str) -> Option<&[String]> {
        self.records
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, values)| values.as_slice())
    }

    /// A named string record, validated against the expected entry count.
    pub fn expect_record(&self, name: &str, len: usize) -> Result<&[String], StateError> {
        let values = self
            .record(name)
            .ok_or_else(|| StateError::new(format!("missing record `{name}`")))?;
        if values.len() != len {
            return Err(StateError::new(format!(
                "record `{name}` has {} entries, expected {len}",
                values.len()
            )));
        }
        Ok(values)
    }
}

/// A resumable snapshot of a federated training run (format
/// [`CHECKPOINT_VERSION`]).
///
/// Build one with [`Simulation::checkpoint`](crate::engine::Simulation::checkpoint)
/// after a partial run, persist it with [`Checkpoint::save`], and hand it to
/// [`Simulation::resume`](crate::engine::Simulation::resume) after a restart.
///
/// Serialisation note: `seed` travels as a **decimal string** (and the
/// fingerprint as hex) because the serde shim's JSON numbers are f64-backed
/// and would silently truncate u64 values above 2^53.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`] when written by this
    /// build); checked on resume.
    pub version: u32,
    /// Name of the algorithm that produced the snapshot; must match the
    /// resuming algorithm exactly (the name encodes the hyper-parameters).
    pub algorithm: String,
    /// Number of communication rounds completed — the **absolute** round the
    /// resumed run continues from.
    pub rounds_completed: usize,
    /// Master seed of the simulation that produced the snapshot.
    pub seed: u64,
    /// Fingerprint of the simulation configuration (seed, per-round schedule,
    /// local training hyper-parameters, availability model, template size);
    /// see `Simulation::config_fingerprint`. A resume against a different
    /// configuration cannot be bitwise faithful and is rejected.
    pub config_fingerprint: String,
    /// The algorithm's complete training state.
    pub state: AlgorithmState,
    /// Learning curve recorded so far (absolute round indices).
    pub history: TrainingHistory,
    /// Communication counters accumulated so far.
    pub comm: CommTracker,
}

impl Serialize for Checkpoint {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("algorithm".to_string(), self.algorithm.to_value()),
            (
                "rounds_completed".to_string(),
                self.rounds_completed.to_value(),
            ),
            ("seed".to_string(), serde::Value::Str(self.seed.to_string())),
            (
                "config_fingerprint".to_string(),
                self.config_fingerprint.to_value(),
            ),
            ("state".to_string(), self.state.to_value()),
            ("history".to_string(), self.history.to_value()),
            ("comm".to_string(), self.comm.to_value()),
        ])
    }
}

impl Deserialize for Checkpoint {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        use serde::derive_support::field;
        let entries = value.as_object().ok_or_else(|| {
            serde::Error::custom(format!("expected object, found {}", value.kind()))
        })?;
        let seed_text: String = field(entries, "seed")?;
        let seed = seed_text.parse::<u64>().map_err(|_| {
            serde::Error::custom(format!("field `seed`: invalid u64 `{seed_text}`"))
        })?;
        Ok(Self {
            version: field(entries, "version")?,
            algorithm: field(entries, "algorithm")?,
            rounds_completed: field(entries, "rounds_completed")?,
            seed,
            config_fingerprint: field(entries, "config_fingerprint")?,
            state: field(entries, "state")?,
            history: field(entries, "history")?,
            comm: field(entries, "comm")?,
        })
    }
}

impl Checkpoint {
    /// Assembles a [`CHECKPOINT_VERSION`] checkpoint from its parts. Most
    /// callers should
    /// use [`Simulation::checkpoint`](crate::engine::Simulation::checkpoint),
    /// which fills in the seed and configuration fingerprint.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        algorithm: impl Into<String>,
        rounds_completed: usize,
        seed: u64,
        config_fingerprint: impl Into<String>,
        state: AlgorithmState,
        history: TrainingHistory,
        comm: CommTracker,
    ) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            algorithm: algorithm.into(),
            rounds_completed,
            seed,
            config_fingerprint: config_fingerprint.into(),
            state,
            history,
            comm,
        }
    }

    /// Number of scalar parameters of the checkpointed model(s).
    pub fn param_count(&self) -> usize {
        self.state.param_count()
    }

    /// Locates the first non-finite scalar in the checkpoint, if any.
    ///
    /// JSON has no representation for NaN/inf (the serde shim, like real
    /// serde_json's lossy writers, emits `null`), so a checkpoint containing
    /// one would save "successfully" yet be unloadable — and the atomic
    /// rename would have destroyed the last good checkpoint to store it.
    /// [`Checkpoint::save`] therefore refuses such state up front.
    fn first_non_finite(&self) -> Option<String> {
        let scan = |values: &[f32]| values.iter().position(|v| !v.is_finite());
        for (slot, model) in self.state.models.iter().enumerate() {
            if let Some(i) = scan(model) {
                return Some(format!("model {slot}, parameter {i}"));
            }
        }
        for (name, vector) in &self.state.aux {
            if let Some(i) = scan(vector) {
                return Some(format!("auxiliary vector `{name}`, entry {i}"));
            }
        }
        for (name, table) in &self.state.client_tables {
            for (client, vector) in table {
                if let Some(i) = scan(vector) {
                    return Some(format!("client table `{name}`, client {client}, entry {i}"));
                }
            }
        }
        for record in self.history.records() {
            if ![record.accuracy, record.test_loss, record.train_loss]
                .iter()
                .all(|v| v.is_finite())
            {
                return Some(format!("history record for round {}", record.round));
            }
        }
        None
    }

    /// Serialises the checkpoint as pretty JSON to `path` **atomically**,
    /// creating parent directories as needed.
    ///
    /// The bytes are written to a sibling temporary file (`<name>.tmp`),
    /// flushed to disk, and renamed over `path`. A crash at any point leaves
    /// either the previous checkpoint or the new one — never a truncated or
    /// interleaved file. (Concurrent saves to the same path are not
    /// supported; the temp name is deterministic.)
    ///
    /// # Errors
    /// Fails with [`io::ErrorKind::InvalidData`] — without touching the
    /// filesystem — when the checkpoint contains a non-finite scalar, which
    /// JSON cannot represent (see [`Checkpoint::first_non_finite`]'s
    /// rationale): a diverged run must not overwrite its last good
    /// checkpoint with an unloadable file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        // Refuse before touching the filesystem: a NaN/inf (diverged
        // training) would serialise to JSON `null`, "successfully" replacing
        // the last good checkpoint with an unloadable one.
        if let Some(what) = self.first_non_finite() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("refusing to save checkpoint: non-finite value in {what} (diverged training?)"),
            ));
        }
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let json = serde_json::to_string_pretty(self)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))?;

        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let write_result = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(json.as_bytes())?;
            // Flush to stable storage before the rename makes it visible, so
            // the renamed file can never be seen partially written.
            file.sync_all()
        })();
        if let Err(err) = write_result {
            let _ = fs::remove_file(&tmp);
            return Err(err);
        }
        let renamed = fs::rename(&tmp, path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }

    /// Loads a checkpoint previously written by [`Checkpoint::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RoundRecord;

    fn sample_history() -> TrainingHistory {
        let mut history = TrainingHistory::new();
        history.push(RoundRecord {
            round: 0,
            accuracy: 0.2,
            test_loss: 2.1,
            train_loss: 2.3,
        });
        history.push(RoundRecord {
            round: 5,
            accuracy: 0.5,
            test_loss: 1.4,
            train_loss: 1.2,
        });
        history
    }

    fn sample_comm() -> CommTracker {
        let mut comm = CommTracker::new();
        comm.record_model_roundtrip(3);
        comm.record_extra_download(7);
        comm.end_round();
        comm
    }

    fn checkpoint_with_state(state: AlgorithmState) -> Checkpoint {
        Checkpoint::new(
            "test-algo",
            6,
            42,
            "fnv1a:0123456789abcdef",
            state,
            sample_history(),
            sample_comm(),
        )
    }

    #[test]
    fn single_model_checkpoint_round_trips_through_json() {
        let state = AlgorithmState::single_model(ParamBlock::from(vec![0.5f32, -1.0, 2.0]));
        let checkpoint = checkpoint_with_state(state);
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-single");
        let path = dir.join("ckpt.json");
        checkpoint.save(&path).expect("save succeeds");
        let restored = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(restored, checkpoint);
        assert_eq!(restored.version, CHECKPOINT_VERSION);
        assert_eq!(restored.param_count(), 3);
        assert_eq!(restored.history.len(), 2);
        assert_eq!(restored.comm, sample_comm());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn multi_model_state_preserves_slot_order_and_aux_tables() {
        let models = vec![
            ParamBlock::from(vec![1.0f32, 2.0]),
            ParamBlock::from(vec![3.0f32, 4.0]),
            ParamBlock::from(vec![5.0f32, 6.0]),
        ];
        let state = AlgorithmState::multi_model(models.clone())
            .with_aux("server_control", vec![0.5, -0.5])
            .with_client_table("controls", vec![(4, vec![1.0, 1.0]), (1, vec![2.0, 2.0])]);
        let checkpoint = checkpoint_with_state(state);
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-multi");
        let path = dir.join("ckpt.json");
        checkpoint.save(&path).expect("save succeeds");
        let restored = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(restored.state.models, models);
        assert_eq!(restored.state.expect_aux("server_control", 2).unwrap(), &[0.5, -0.5]);
        // Builder sorted the table by client id.
        let table = restored.state.expect_client_table("controls", 8, 2).unwrap();
        assert_eq!(table[0].0, 1);
        assert_eq!(table[1].0, 4);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_round_trip_is_bitwise_exact_for_awkward_floats() {
        // Values with no short decimal representation must still round-trip
        // to the exact same f32 bits — the resume plane's core requirement.
        let awkward: Vec<f32> = vec![
            1.0 / 3.0,
            f32::MIN_POSITIVE,
            -0.123_456_79,
            1e-38,
            3.402_823e38,
            -0.0,
        ];
        let state = AlgorithmState::single_model(ParamBlock::from(awkward.clone()))
            .with_aux("aux", awkward.clone());
        let checkpoint = checkpoint_with_state(state);
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-bitwise");
        let path = dir.join("ckpt.json");
        checkpoint.save(&path).expect("save succeeds");
        let restored = Checkpoint::load(&path).expect("load succeeds");
        for (a, b) in awkward.iter().zip(restored.state.models[0].as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} changed bits through JSON");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn state_validation_rejects_mismatches() {
        let state = AlgorithmState::multi_model(vec![
            ParamBlock::from(vec![1.0f32, 2.0]),
            ParamBlock::from(vec![3.0f32, 4.0]),
        ])
        .with_aux("teacher", vec![0.0, 0.0])
        .with_client_table("updates", vec![(3, vec![1.0, 1.0])]);

        assert!(state.expect_single_model(2).is_err(), "two models are not one");
        assert!(state.expect_models(3, 2).is_err(), "K mismatch must fail");
        assert!(state.expect_models(2, 5).is_err(), "dim mismatch must fail");
        assert!(state.expect_models(2, 2).is_ok());
        assert!(state.expect_aux("teacher", 3).is_err());
        assert!(state.expect_aux("missing", 2).is_err());
        assert!(state.expect_client_table("updates", 2, 2).is_err(), "client 3 of 2");
        assert!(state.expect_client_table("updates", 8, 3).is_err(), "dim mismatch");
        assert!(state.expect_client_table("updates", 8, 2).is_ok());

        let single = AlgorithmState::single_model(ParamBlock::from(vec![1.0f32, 2.0]));
        assert!(single.expect_single_model(2).is_ok());
        assert!(single.expect_single_model(3).is_err());
    }

    #[test]
    fn u64_fields_survive_json_beyond_2_pow_53() {
        // JSON numbers in the serde shim are f64-backed, so the seed and the
        // communication counters travel as decimal strings; values above
        // 2^53 (where f64 loses integer precision) must round-trip exactly.
        let comm = CommTracker {
            model_download: (1u64 << 60) + 1,
            model_upload: u64::MAX,
            extra_download: 3,
            extra_upload: 4,
            rounds: 5,
            client_contacts: (1u64 << 53) + 1,
        };
        let checkpoint = Checkpoint::new(
            "test-algo",
            1,
            u64::MAX - 2,
            "fnv1a:0123456789abcdef",
            AlgorithmState::single_model(ParamBlock::from(vec![0.0f32])),
            TrainingHistory::new(),
            comm.clone(),
        );
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-u64");
        let path = dir.join("ckpt.json");
        checkpoint.save(&path).expect("save succeeds");
        let restored = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(restored.seed, u64::MAX - 2);
        assert_eq!(restored.comm, comm);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn records_round_trip_losslessly_and_validate() {
        // u64 beyond 2^53 and f64 values with no exact decimal rendering must
        // survive the JSON round trip bit for bit — this is what the DP
        // accountant's spent budget and the upload counters rely on.
        let spent = [1.0f64 / 3.0, f64::MIN_POSITIVE, -0.0, 2.5e-300];
        let state = AlgorithmState::single_model(ParamBlock::from(vec![0.0f32]))
            .with_record("counters", vec![encode_u64(u64::MAX), encode_u64(0)])
            .with_record("budget", spent.iter().copied().map(encode_f64).collect());
        let checkpoint = checkpoint_with_state(state);
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-records");
        let path = dir.join("ckpt.json");
        checkpoint.save(&path).expect("save succeeds");
        let restored = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(restored, checkpoint);

        let counters = restored.state.expect_record("counters", 2).unwrap();
        assert_eq!(decode_u64(&counters[0]).unwrap(), u64::MAX);
        assert_eq!(decode_u64(&counters[1]).unwrap(), 0);
        let budget = restored.state.expect_record("budget", 4).unwrap();
        for (text, original) in budget.iter().zip(spent) {
            assert_eq!(decode_f64(text).unwrap().to_bits(), original.to_bits());
        }

        // Validation: wrong length, missing name, malformed encodings.
        assert!(restored.state.expect_record("counters", 3).is_err());
        assert!(restored.state.expect_record("missing", 1).is_err());
        assert!(restored.state.record("missing").is_none());
        assert!(decode_u64("not a number").is_err());
        assert!(decode_u64("-1").is_err());
        assert!(decode_f64("0.5").is_err(), "missing prefix must be rejected");
        assert!(decode_f64("f64:xyz").is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn a_client_table_with_duplicate_or_unsorted_ids_is_rejected() {
        // A hand-edited/corrupt checkpoint with two entries for one client
        // would otherwise restore last-entry-wins — silently partial.
        let duplicated = AlgorithmState {
            client_tables: vec![(
                "controls".to_string(),
                vec![(3, vec![1.0]), (3, vec![2.0])],
            )],
            ..Default::default()
        };
        let err = duplicated
            .expect_client_table("controls", 8, 1)
            .expect_err("duplicate ids must fail");
        assert!(err.to_string().contains("strictly sorted"), "{err}");

        let unsorted = AlgorithmState {
            client_tables: vec![(
                "controls".to_string(),
                vec![(5, vec![1.0]), (2, vec![2.0])],
            )],
            ..Default::default()
        };
        assert!(unsorted.expect_client_table("controls", 8, 1).is_err());
    }

    #[test]
    fn save_is_atomic_a_failed_write_never_touches_the_existing_checkpoint() {
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-atomic");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ckpt.json");
        let first = checkpoint_with_state(AlgorithmState::single_model(ParamBlock::from(vec![
            1.0f32, 2.0,
        ])));
        first.save(&path).expect("initial save succeeds");

        // Simulate a crash mid-save: make the temp-file write fail by
        // occupying the (deterministic) temp path with a directory. The
        // existing checkpoint must survive untouched.
        let tmp = dir.join("ckpt.json.tmp");
        std::fs::create_dir_all(&tmp).unwrap();
        let second = checkpoint_with_state(AlgorithmState::single_model(ParamBlock::from(vec![
            9.0f32, 9.0,
        ])));
        assert!(second.save(&path).is_err(), "blocked temp write must error");
        let survivor = Checkpoint::load(&path).expect("original checkpoint still loads");
        assert_eq!(survivor, first, "failed save corrupted the original");

        // With the obstruction gone the save goes through and cleans up.
        std::fs::remove_dir_all(&tmp).unwrap();
        second.save(&path).expect("save succeeds");
        assert_eq!(Checkpoint::load(&path).unwrap(), second);
        assert!(!tmp.exists(), "temp file must not be left behind");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn a_non_finite_checkpoint_is_refused_and_the_previous_one_survives() {
        // JSON cannot represent NaN/inf; saving a diverged state must fail
        // up front instead of atomically replacing the last good checkpoint
        // with a file full of `null`s.
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-nonfinite");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ckpt.json");
        let good = checkpoint_with_state(AlgorithmState::single_model(ParamBlock::from(vec![
            1.0f32, 2.0,
        ])));
        good.save(&path).expect("finite checkpoint saves");

        let diverged = checkpoint_with_state(
            AlgorithmState::single_model(ParamBlock::from(vec![1.0f32, f32::NAN]))
                .with_aux("aux", vec![0.0]),
        );
        let err = diverged.save(&path).expect_err("NaN state must be refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("model 0, parameter 1"), "{err}");
        assert_eq!(Checkpoint::load(&path).unwrap(), good, "previous checkpoint lost");

        let bad_aux = checkpoint_with_state(
            AlgorithmState::single_model(ParamBlock::from(vec![1.0f32]))
                .with_aux("teacher", vec![f32::INFINITY]),
        );
        let err = bad_aux.save(&path).expect_err("inf aux must be refused");
        assert!(err.to_string().contains("auxiliary vector `teacher`"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn loading_a_missing_file_is_an_error() {
        let missing = std::env::temp_dir().join("fedcross-checkpoint-does-not-exist.json");
        assert!(Checkpoint::load(missing).is_err());
    }

    #[test]
    fn loading_corrupt_json_is_an_invalid_data_error() {
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = Checkpoint::load(&path).expect_err("corrupt file must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn loading_a_version_1_checkpoint_fails_loudly() {
        // The pre-resume-plane format had no version/state/comm fields; it
        // must be rejected as unreadable, not half-restored.
        let dir = std::env::temp_dir().join("fedcross-checkpoint-test-v1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        std::fs::write(
            &path,
            r#"{"algorithm":"fedavg","rounds_completed":6,"global_params":[0.5],"middleware":null,"history":{"records":[]}}"#,
        )
        .unwrap();
        let err = Checkpoint::load(&path).expect_err("v1 checkpoint must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(dir);
    }
}
