//! Class-conditional synthetic image generator.
//!
//! Each class owns a smooth "prototype" pattern (a coarse random grid
//! bilinearly upsampled to the target resolution); a sample is its class
//! prototype plus optional per-client style offset plus pixel noise. A small
//! CNN can learn these classes from a few hundred samples, while the noise
//! and style terms keep the task non-trivial and give clients genuinely
//! different conditional distributions — the property the FedCross evaluation
//! depends on.

use crate::dataset::Dataset;
use fedcross_tensor::{SeededRng, Tensor};

/// Configuration of the synthetic image distribution.
#[derive(Debug, Clone, Copy)]
pub struct SynthImageConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Image channels (3 for the CIFAR stand-ins, 1 for FEMNIST).
    pub channels: usize,
    /// Square image side length.
    pub size: usize,
    /// Standard deviation of the additive pixel noise.
    pub noise_std: f32,
    /// Side length of the coarse grid the prototypes are upsampled from
    /// (smaller ⇒ smoother, easier classes).
    pub prototype_grid: usize,
    /// How strongly class prototypes deviate from a shared base pattern
    /// (1.0 = fully independent prototypes; small values make classes overlap
    /// and the task genuinely hard — used by the benchmark harness so methods
    /// do not all saturate at 100%).
    pub class_distinctness: f32,
}

impl Default for SynthImageConfig {
    fn default() -> Self {
        Self {
            num_classes: 10,
            channels: 3,
            size: 16,
            noise_std: 0.4,
            prototype_grid: 4,
            class_distinctness: 1.0,
        }
    }
}

impl SynthImageConfig {
    /// CIFAR-10 stand-in: 10 classes, 3×16×16.
    pub fn cifar10() -> Self {
        Self::default()
    }

    /// CIFAR-100 stand-in: 100 classes, 3×16×16, slightly less noise so the
    /// harder label space stays learnable at small sample counts.
    pub fn cifar100() -> Self {
        Self {
            num_classes: 100,
            noise_std: 0.3,
            ..Self::default()
        }
    }

    /// FEMNIST stand-in: 62 classes (10 digits + 52 letters), 1×16×16.
    pub fn femnist() -> Self {
        Self {
            num_classes: 62,
            channels: 1,
            size: 16,
            noise_std: 0.3,
            prototype_grid: 4,
            class_distinctness: 1.0,
        }
    }
}

/// A frozen synthetic image distribution: class prototypes plus noise model.
#[derive(Debug, Clone)]
pub struct SynthImages {
    config: SynthImageConfig,
    prototypes: Vec<Tensor>, // one [C, H, W] per class
}

impl SynthImages {
    /// Builds the class prototypes from `rng`. Two instances built from RNGs
    /// with the same seed describe the same distribution.
    pub fn new(config: SynthImageConfig, rng: &mut SeededRng) -> Self {
        assert!(config.num_classes > 0 && config.channels > 0 && config.size > 0);
        assert!(config.prototype_grid >= 2, "prototype grid must be >= 2");
        assert!(
            config.class_distinctness > 0.0,
            "class_distinctness must be positive"
        );
        // Every class prototype is a shared base pattern plus a class-specific
        // deviation; class_distinctness controls how far apart classes sit.
        let base = Self::smooth_pattern(config.channels, config.size, config.prototype_grid, rng);
        let prototypes = (0..config.num_classes)
            .map(|_| {
                let mut class_pattern = Self::smooth_pattern(
                    config.channels,
                    config.size,
                    config.prototype_grid,
                    rng,
                );
                class_pattern.scale(config.class_distinctness);
                class_pattern.add_assign(&base);
                class_pattern
            })
            .collect();
        Self { config, prototypes }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SynthImageConfig {
        &self.config
    }

    /// Per-sample feature dims `[C, H, W]`.
    pub fn sample_dims(&self) -> [usize; 3] {
        [self.config.channels, self.config.size, self.config.size]
    }

    /// Generates a smooth per-client "writer style" offset pattern with the
    /// given strength. Used for the FEMNIST stand-in where each client is one
    /// writer.
    pub fn style_pattern(&self, strength: f32, rng: &mut SeededRng) -> Tensor {
        let mut style = Self::smooth_pattern(
            self.config.channels,
            self.config.size,
            self.config.prototype_grid,
            rng,
        );
        style.scale(strength);
        style
    }

    /// Generates `n` labelled samples with uniformly random classes.
    pub fn generate(&self, n: usize, rng: &mut SeededRng) -> Dataset {
        self.generate_with(n, None, None, rng)
    }

    /// Generates `n` labelled samples restricted to `classes` (if given) and
    /// shifted by a per-client `style` pattern (if given).
    pub fn generate_with(
        &self,
        n: usize,
        classes: Option<&[usize]>,
        style: Option<&Tensor>,
        rng: &mut SeededRng,
    ) -> Dataset {
        let [c, h, w] = self.sample_dims();
        let sample_len = c * h * w;
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut features = vec![0f32; n * sample_len];
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = match classes {
                Some(allowed) => {
                    assert!(!allowed.is_empty(), "allowed class list must not be empty");
                    allowed[rng.below(allowed.len())]
                }
                None => rng.below(self.config.num_classes),
            };
            assert!(class < self.config.num_classes, "class out of range");
            labels.push(class);
            let proto = &self.prototypes[class];
            let dst = &mut features[i * sample_len..(i + 1) * sample_len];
            for (j, d) in dst.iter_mut().enumerate() {
                let mut v = proto.data()[j] + rng.normal_with(0.0, self.config.noise_std);
                if let Some(style) = style {
                    v += style.data()[j];
                }
                *d = v;
            }
        }
        Dataset::new(
            Tensor::from_vec(features, &[n, c, h, w]),
            labels,
            self.config.num_classes,
        )
    }

    /// Generates `n` labelled samples whose classes are drawn from the given
    /// per-class probability weights.
    ///
    /// This is the lazy-shard counterpart of the global-pool Dirichlet
    /// partition: instead of splitting one pre-generated pool, each client
    /// draws its labels from its own class distribution, so a shard can be
    /// synthesised from the client id alone.
    pub fn generate_weighted(
        &self,
        n: usize,
        class_weights: &[f32],
        rng: &mut SeededRng,
    ) -> Dataset {
        assert_eq!(
            class_weights.len(),
            self.config.num_classes,
            "one weight per class required"
        );
        let [c, h, w] = self.sample_dims();
        let sample_len = c * h * w;
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut features = vec![0f32; n * sample_len];
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.weighted_index(class_weights);
            labels.push(class);
            let proto = &self.prototypes[class];
            let dst = &mut features[i * sample_len..(i + 1) * sample_len];
            for (j, d) in dst.iter_mut().enumerate() {
                *d = proto.data()[j] + rng.normal_with(0.0, self.config.noise_std);
            }
        }
        Dataset::new(
            Tensor::from_vec(features, &[n, c, h, w]),
            labels,
            self.config.num_classes,
        )
    }

    /// A smooth pattern: coarse random grid, bilinearly upsampled, roughly
    /// unit variance.
    fn smooth_pattern(channels: usize, size: usize, grid: usize, rng: &mut SeededRng) -> Tensor {
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut out = vec![0f32; channels * size * size];
        for ch in 0..channels {
            // Coarse grid values.
            // alloc: pooled — shard-cache miss path; steady rounds hit the cache
            let coarse: Vec<f32> = (0..grid * grid).map(|_| rng.normal()).collect();
            for y in 0..size {
                for x in 0..size {
                    // Map pixel to coarse-grid coordinates.
                    let gy = y as f32 / (size - 1).max(1) as f32 * (grid - 1) as f32;
                    let gx = x as f32 / (size - 1).max(1) as f32 * (grid - 1) as f32;
                    let y0 = gy.floor() as usize;
                    let x0 = gx.floor() as usize;
                    let y1 = (y0 + 1).min(grid - 1);
                    let x1 = (x0 + 1).min(grid - 1);
                    let fy = gy - y0 as f32;
                    let fx = gx - x0 as f32;
                    let v00 = coarse[y0 * grid + x0];
                    let v01 = coarse[y0 * grid + x1];
                    let v10 = coarse[y1 * grid + x0];
                    let v11 = coarse[y1 * grid + x1];
                    let v = v00 * (1.0 - fy) * (1.0 - fx)
                        + v01 * (1.0 - fy) * fx
                        + v10 * fy * (1.0 - fx)
                        + v11 * fy * fx;
                    out[(ch * size + y) * size + x] = v;
                }
            }
        }
        Tensor::from_vec(out, &[channels, size, size])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_samples() {
        let mut rng = SeededRng::new(0);
        let gen = SynthImages::new(SynthImageConfig::cifar10(), &mut rng);
        let ds = gen.generate(25, &mut rng);
        assert_eq!(ds.len(), 25);
        assert_eq!(ds.sample_dims(), &[3, 16, 16]);
        assert_eq!(ds.num_classes(), 10);
        assert!(ds.labels().iter().all(|&l| l < 10));
    }

    #[test]
    fn same_seed_gives_same_distribution() {
        let gen_a = SynthImages::new(SynthImageConfig::cifar10(), &mut SeededRng::new(7));
        let gen_b = SynthImages::new(SynthImageConfig::cifar10(), &mut SeededRng::new(7));
        let a = gen_a.generate(5, &mut SeededRng::new(1));
        let b = gen_b.generate(5, &mut SeededRng::new(1));
        assert_eq!(a.features().data(), b.features().data());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn samples_of_same_class_are_more_similar_than_different_classes() {
        let mut rng = SeededRng::new(1);
        let gen = SynthImages::new(SynthImageConfig::cifar10(), &mut rng);
        // Generate many samples and compare within-class vs across-class distance.
        let ds = gen.generate(200, &mut rng);
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..50 {
            for j in (i + 1)..50 {
                let a = ds.features().index_select0(&[i]).flatten();
                let b = ds.features().index_select0(&[j]).flatten();
                let d = a.distance(&b);
                if ds.labels()[i] == ds.labels()[j] {
                    within.push(d);
                } else {
                    across.push(d);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(
            mean(&within) < mean(&across),
            "within-class distance {} should be below across-class {}",
            mean(&within),
            mean(&across)
        );
    }

    #[test]
    fn class_restriction_is_respected() {
        let mut rng = SeededRng::new(2);
        let gen = SynthImages::new(SynthImageConfig::femnist(), &mut rng);
        let ds = gen.generate_with(30, Some(&[3, 7, 11]), None, &mut rng);
        assert!(ds.labels().iter().all(|l| [3, 7, 11].contains(l)));
        assert_eq!(ds.num_classes(), 62);
    }

    #[test]
    fn style_offset_shifts_samples() {
        let mut rng = SeededRng::new(3);
        let gen = SynthImages::new(SynthImageConfig::femnist(), &mut rng);
        let style = gen.style_pattern(2.0, &mut rng);
        let plain = gen.generate_with(40, Some(&[0]), None, &mut SeededRng::new(5));
        let styled = gen.generate_with(40, Some(&[0]), Some(&style), &mut SeededRng::new(5));
        let diff = styled.features().mean() - plain.features().mean();
        assert!(
            (diff - style.mean()).abs() < 0.05,
            "styled mean shift {diff} should track style mean {}",
            style.mean()
        );
    }

    #[test]
    fn low_distinctness_brings_class_prototypes_closer() {
        let distinct = SynthImages::new(SynthImageConfig::cifar10(), &mut SeededRng::new(8));
        let overlapping = SynthImages::new(
            SynthImageConfig {
                class_distinctness: 0.2,
                ..SynthImageConfig::cifar10()
            },
            &mut SeededRng::new(8),
        );
        let spread = |gen: &SynthImages| {
            // Mean pairwise distance between noiseless class prototypes, probed
            // through near-noiseless samples.
            let mut rng = SeededRng::new(9);
            let cfg = SynthImageConfig {
                noise_std: 1e-4,
                ..*gen.config()
            };
            let quiet = SynthImages {
                config: cfg,
                prototypes: gen.prototypes.clone(),
            };
            let a = quiet.generate_with(1, Some(&[0]), None, &mut rng).features().flatten();
            let b = quiet.generate_with(1, Some(&[1]), None, &mut rng).features().flatten();
            a.distance(&b)
        };
        assert!(
            spread(&overlapping) < spread(&distinct) * 0.6,
            "low distinctness should shrink inter-class distance ({} vs {})",
            spread(&overlapping),
            spread(&distinct)
        );
    }

    #[test]
    fn cifar100_config_has_100_classes() {
        let cfg = SynthImageConfig::cifar100();
        assert_eq!(cfg.num_classes, 100);
        let mut rng = SeededRng::new(4);
        let gen = SynthImages::new(cfg, &mut rng);
        let ds = gen.generate(10, &mut rng);
        assert_eq!(ds.num_classes(), 100);
    }

    #[test]
    fn prototypes_have_roughly_unit_scale() {
        let mut rng = SeededRng::new(5);
        let gen = SynthImages::new(SynthImageConfig::cifar10(), &mut rng);
        let ds = gen.generate(100, &mut rng);
        let std = ds.features().variance().sqrt();
        assert!(std > 0.3 && std < 3.0, "feature std {std} out of range");
    }
}
