// A001 false-positive guard: the pooled-fallback default pattern. A
// `forward_into` that falls back to its allocating twin `forward` (the
// trait-default shape D006 mandates) must NOT drag the twin's allocations
// onto the hot path — the call graph cuts fallback-twin edges. Linted as
// crate "nn", file "layer.rs"; expected findings: none.

pub struct Dense {
    weights: [f32; 4],
}

impl Dense {
    /// Hot-path root (`forward_into` anywhere). Its body is
    /// allocation-free; the twin call below is the pooled fallback.
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        let y = self.forward(x);
        out.copy_from_slice(&y);
    }

    /// Allocating twin: only entered on an arena miss, so the call graph
    /// does not traverse the `forward_into -> forward` edge.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; x.len()];
        for (o, (i, w)) in y.iter_mut().zip(x.iter().zip(self.weights.iter())) {
            *o = i * w;
        }
        y
    }
}
