// Fixture: D004 — FMA and unordered parallel reductions in a kernel file.
// Linted as crate "core", file name "aggregation.rs".

use rayon::prelude::*;

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        // BAD: mul_add rounds once where mul-then-add rounds twice; the
        // default kernel path must match the scalar reference bitwise.
        acc = x.mul_add(*y, acc);
    }
    acc
}

pub fn norm_sq(xs: &[f32]) -> f32 {
    // BAD: par_iter().sum() reduces in schedule-dependent order.
    xs.par_iter()
        .map(|x| x * x)
        .sum()
}
