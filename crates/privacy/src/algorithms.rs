//! Differentially-private and secure-aggregation FL algorithms.
//!
//! These are drop-in [`FederatedAlgorithm`] implementations, so the same
//! [`fedcross_flsim::Simulation`] that drives the paper's six methods can
//! sweep the privacy/utility trade-off (`ablation_privacy` in the benchmark
//! harness):
//!
//! * [`DpFedAvg`] — FedAvg with per-client delta clipping and Gaussian noise,
//!   in either the central or local placement,
//! * [`DpFedCross`] — FedCross (Algorithm 1) with each uploaded middleware
//!   delta clipped and noised before cross-aggregation, demonstrating the
//!   paper's Section IV-F1 claim that FedCross composes with FedAvg-style
//!   privacy mechanisms,
//! * [`SecureAggFedAvg`] — FedAvg over pairwise-masked uploads; the server
//!   only observes masked vectors yet recovers the exact average.
//!
//! All three are **resumable**: every noise/mask draw derives from a
//! [`RoundStreams`] keyed by `(domain, seed, absolute round, slot or client)`
//! — never from a consumed RNG — so checkpoint/restore reproduces the
//! uninterrupted trajectory bitwise (pinned by `tests/tests/resume_plane.rs`),
//! and the DP noise a client receives is independent of the order in which
//! uploads arrive.

use crate::accountant::RdpAccountant;
use crate::mechanism::{privatize_aggregate, privatize_client_delta, DpConfig};
use crate::secure_agg::{aggregate_masked, PairwiseMasker};
use fedcross::aggregation::{cross_aggregate_all, global_model, global_model_into};
use fedcross::selection::{SelectionStrategy, SimilarityMeasure};
use fedcross_flsim::checkpoint::{
    decode_f64, decode_u64, encode_f64, encode_u64, AlgorithmState, StateError,
};
use fedcross_flsim::client::LocalUpdate;
use fedcross_flsim::engine::{FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_flsim::streams::{RoundStreams, StreamDomain};
use fedcross_nn::params::{add_scaled, average, difference, ParamBlock};

/// Name of the [`AlgorithmState`] record holding an [`RdpAccountant`]'s
/// spent budget: `[rounds, sampling_rate, spent_rdp per order...]`.
const ACCOUNTANT_RECORD: &str = "rdp_accountant";

/// Encodes an accountant's consumed state for a checkpoint (everything a
/// [`RdpAccountant::restore`] needs besides the configured noise multiplier,
/// which the algorithm's own `DpConfig` supplies).
fn accountant_record(accountant: &RdpAccountant) -> Vec<String> {
    let mut record = vec![
        encode_u64(accountant.rounds()),
        encode_f64(accountant.sampling_rate()),
    ];
    record.extend(accountant.spent_rdp().iter().copied().map(encode_f64));
    record
}

/// Restores an accountant from [`accountant_record`]'s encoding. `Ok(None)`
/// when the state has no accountant record (a checkpoint taken before the
/// first round, where the accountant does not exist yet).
fn restore_accountant(
    state: &AlgorithmState,
    noise_multiplier: f32,
) -> Result<Option<RdpAccountant>, StateError> {
    if state.record(ACCOUNTANT_RECORD).is_none() {
        return Ok(None);
    }
    let record = state.expect_record(ACCOUNTANT_RECORD, 2 + RdpAccountant::orders().len())?;
    let rounds = decode_u64(&record[0])?;
    let sampling_rate = decode_f64(&record[1])?;
    let spent: Result<Vec<f64>, StateError> =
        record[2..].iter().map(|text| decode_f64(text)).collect();
    RdpAccountant::restore(noise_multiplier as f64, sampling_rate, rounds, spent?)
        .map(Some)
        .map_err(|message| StateError::new(format!("accountant record: {message}")))
}

/// FedAvg with differentially-private client updates.
///
/// Each round: dispatch the global model, clip every client's parameter delta
/// to the configured norm, (locally noise it if the placement is local),
/// average the deltas, (centrally noise the average if the placement is
/// central) and apply the result to the global model. An [`RdpAccountant`] is
/// advanced every round — at the round's **actual** participation rate, so
/// availability dropout is accounted rather than the first round's frozen
/// `K / N` — and the spent (ε, δ) can be read off at any time.
///
/// **Resumable.** All noise derives from [`RoundStreams`] — per-client noise
/// from `(DpClientNoise, noise_seed, round, client id)`, the central
/// perturbation from `(DpCentralNoise, noise_seed, round)` — so there is no
/// consumed RNG to persist and round `R`'s noise is the same after a restart.
/// Keying by client id also makes the noise (and the canonical client-id
/// aggregation order) independent of upload arrival order. The cross-round
/// state is the global model plus the accountant's spent budget, both
/// captured by [`FederatedAlgorithm::snapshot_state`].
pub struct DpFedAvg {
    global: ParamBlock,
    config: DpConfig,
    client_noise: RoundStreams,
    central_noise: RoundStreams,
    accountant: Option<RdpAccountant>,
}

impl DpFedAvg {
    /// Creates DP-FedAvg from the shared initial model. `noise_seed` roots the
    /// round-derived privacy noise streams (kept separate from the
    /// simulation's client selection stream so noise does not perturb the
    /// sampling).
    pub fn new(init_params: Vec<f32>, config: DpConfig, noise_seed: u64) -> Self {
        Self {
            global: ParamBlock::from(init_params),
            config,
            client_noise: RoundStreams::new(StreamDomain::DpClientNoise, noise_seed),
            central_noise: RoundStreams::new(StreamDomain::DpCentralNoise, noise_seed),
            accountant: None,
        }
    }

    /// The privacy configuration.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// The (ε, δ)-DP guarantee spent so far, or `None` before the first round.
    pub fn epsilon(&self, delta: f64) -> Option<f64> {
        self.accountant.as_ref().map(|a| a.epsilon(delta))
    }

    /// The underlying accountant, once the first round has fixed the nominal
    /// sampling rate.
    pub fn accountant(&self) -> Option<&RdpAccountant> {
        self.accountant.as_ref()
    }

    fn ensure_accountant(&mut self, clients_per_round: usize, total_clients: usize) {
        if self.accountant.is_none() {
            let q = clients_per_round as f32 / total_clients.max(1) as f32;
            self.accountant = Some(RdpAccountant::new(
                self.config.noise_multiplier,
                q.clamp(f32::MIN_POSITIVE, 1.0),
            ));
        }
    }

    /// The server half of one round: privatise `updates` against the current
    /// global model, apply the DP-FedAvg estimator and record the round's
    /// actual participation in the accountant.
    ///
    /// Public so the order-independence contract is testable: the result is
    /// a function of the *set* of updates — processing is canonically ordered
    /// by client id and every noise draw is keyed by `(round, client)`, so
    /// any permutation of `updates` produces a bitwise-identical model.
    pub fn apply_updates(
        &mut self,
        round: usize,
        num_clients: usize,
        updates: &[LocalUpdate],
    ) -> RoundReport {
        if updates.is_empty() {
            return RoundReport::default();
        }
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let mut ordered: Vec<&LocalUpdate> = updates.iter().collect();
        ordered.sort_by_key(|update| update.client);

        // Clip (and locally noise) every client's delta against the
        // dispatched global model, each from its own (round, client) stream.
        let round_noise = self.client_noise.round(round);
        let deltas: Vec<Vec<f32>> = ordered
            .iter()
            .map(|update| {
                let mut delta = difference(&update.params, &self.global);
                let mut rng = round_noise.stream(update.client);
                privatize_client_delta(&mut delta, &self.config, &mut rng);
                delta
            })
            // alloc: bounded — cohort-sized aggregation staging, once per round
            .collect();

        // Unweighted mean of bounded deltas (the DP-FedAvg estimator), then
        // the central perturbation — calibrated to the returned count — if
        // configured.
        let mut aggregate = average(&deltas);
        let mut central_rng = self.central_noise.round(round).server();
        privatize_aggregate(&mut aggregate, &self.config, deltas.len(), &mut central_rng);
        add_scaled(self.global.make_mut(), &aggregate, 1.0);

        if let Some(accountant) = self.accountant.as_mut() {
            accountant.step_with_rate(ordered.len() as f64 / num_clients.max(1) as f64);
        }
        RoundReport::from_ordered(&ordered)
    }
}

impl FederatedAlgorithm for DpFedAvg {
    fn name(&self) -> String {
        // The noise seed is part of the name: round-derived noise makes the
        // trajectory a function of the seed, so a resume under a different
        // seed would silently splice two noise sequences — the name check
        // rejects it (same convention as SecureAggFedAvg's mask seed).
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!(
            "dp-fedavg(C={}, z={}, {}, seed={})",
            self.config.clip_norm,
            self.config.noise_multiplier,
            self.config.placement,
            self.client_noise.base_seed()
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        self.ensure_accountant(ctx.clients_per_round(), ctx.num_clients());

        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|&client| (client, self.global.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        self.apply_updates(round, ctx.num_clients(), &updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        let mut state = AlgorithmState::single_model(self.global.clone());
        if let Some(accountant) = &self.accountant {
            state = state.with_record(ACCOUNTANT_RECORD, accountant_record(accountant));
        }
        Ok(state)
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let global = state.expect_single_model(self.global.len())?.clone();
        let accountant = restore_accountant(state, self.config.noise_multiplier)?;
        self.global = global;
        self.accountant = accountant;
        Ok(())
    }
}

/// Configuration of [`DpFedCross`]: the FedCross hyper-parameters plus the
/// privacy mechanism applied to every uploaded middleware delta.
#[derive(Debug, Clone, Copy)]
pub struct DpFedCrossConfig {
    /// Cross-aggregation weight α (Section III-B2).
    pub alpha: f32,
    /// Collaborative-model selection strategy.
    pub strategy: SelectionStrategy,
    /// Similarity measure for the similarity-based strategies.
    pub measure: SimilarityMeasure,
    /// Privacy mechanism applied to uploaded deltas.
    pub dp: DpConfig,
}

impl Default for DpFedCrossConfig {
    fn default() -> Self {
        Self {
            alpha: 0.9,
            strategy: SelectionStrategy::LowestSimilarity,
            measure: SimilarityMeasure::Cosine,
            dp: DpConfig::default(),
        }
    }
}

/// FedCross with differentially-private middleware uploads.
///
/// The training scheme is Algorithm 1 of the paper; the only change is that
/// every uploaded model is replaced by `dispatched + privatize(trained −
/// dispatched)` before collaborative-model selection and cross-aggregation,
/// exactly where DP-FedAvg privatises its client deltas.
///
/// **Resumable**, like [`DpFedAvg`]: noise derives from [`RoundStreams`]
/// keyed by `(round, middleware slot)`, uploads are processed in canonical
/// slot order, and the accountant's spent budget travels in the checkpoint.
/// Central noise and the accountant are calibrated to the number of uploads
/// that actually **returned** (dropout shrinks both), not the configured `K`.
pub struct DpFedCross {
    config: DpFedCrossConfig,
    middleware: Vec<ParamBlock>,
    client_noise: RoundStreams,
    central_noise: RoundStreams,
    accountant: Option<RdpAccountant>,
}

impl DpFedCross {
    /// Creates DP-FedCross with `k` middleware models initialised from the
    /// shared initial parameters.
    pub fn new(config: DpFedCrossConfig, init_params: Vec<f32>, k: usize, noise_seed: u64) -> Self {
        assert!(k >= 2, "FedCross needs at least two middleware models");
        assert!(
            (0.5..1.0).contains(&config.alpha),
            "alpha must lie in [0.5, 1.0)"
        );
        let shared = ParamBlock::from(init_params);
        Self {
            config,
            middleware: vec![shared; k],
            client_noise: RoundStreams::new(StreamDomain::DpClientNoise, noise_seed),
            central_noise: RoundStreams::new(StreamDomain::DpCentralNoise, noise_seed),
            accountant: None,
        }
    }

    /// The current middleware models (for analysis and tests).
    pub fn middleware(&self) -> &[ParamBlock] {
        &self.middleware
    }

    /// The (ε, δ)-DP guarantee spent so far, or `None` before the first round.
    pub fn epsilon(&self, delta: f64) -> Option<f64> {
        self.accountant.as_ref().map(|a| a.epsilon(delta))
    }

    /// The underlying accountant, once the first round has fixed the nominal
    /// sampling rate.
    pub fn accountant(&self) -> Option<&RdpAccountant> {
        self.accountant.as_ref()
    }

    fn ensure_accountant(&mut self, clients_per_round: usize, total_clients: usize) {
        if self.accountant.is_none() {
            let q = clients_per_round as f32 / total_clients.max(1) as f32;
            self.accountant = Some(RdpAccountant::new(
                self.config.dp.noise_multiplier,
                q.clamp(f32::MIN_POSITIVE, 1.0),
            ));
        }
    }

    /// The server half of one round: map every upload back to the middleware
    /// slot it was dispatched from (`selected[slot]` is the client trained on
    /// slot `slot`), privatise it, cross-aggregate, and record the round's
    /// actual participation in the accountant.
    ///
    /// Public so the order-independence contract is testable: uploads are
    /// processed in canonical slot order and every noise draw is keyed by
    /// `(round, slot)`, so any permutation of `updates` produces bitwise
    /// identical middleware.
    pub fn apply_updates(
        &mut self,
        round: usize,
        num_clients: usize,
        selected: &[usize],
        updates: &[LocalUpdate],
    ) -> RoundReport {
        if updates.is_empty() {
            return RoundReport::default();
        }
        // Canonical order: sort returned uploads by middleware slot. Missing
        // slots (dropped clients) simply skip the round.
        let mut ordered: Vec<(usize, &LocalUpdate)> = updates
            .iter()
            .map(|update| {
                let slot = selected
                    .iter()
                    .position(|&client| client == update.client)
                    .expect("every update comes from a selected client");
                (slot, update)
            })
            // alloc: bounded — cohort-sized aggregation staging, once per round
            .collect();
        ordered.sort_by_key(|(slot, _)| *slot);

        // Privatise each uploaded middleware model against the version that
        // was dispatched to its client, each from its own (round, slot)
        // stream.
        let participants = ordered.len();
        let round_client_noise = self.client_noise.round(round);
        let round_central_noise = self.central_noise.round(round);
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let mut returned_slots = Vec::with_capacity(participants);
        // alloc: bounded — cohort-sized aggregation staging, once per round
        let mut uploaded = Vec::with_capacity(participants);
        for &(slot, update) in &ordered {
            let dispatched = &self.middleware[slot];
            let mut delta = difference(&update.params, dispatched);
            let mut rng = round_client_noise.stream(slot);
            privatize_client_delta(&mut delta, &self.config.dp, &mut rng);
            // Central placement: each *returned* middleware stream receives
            // noise of std z·C/participants, so the released global model
            // (the average of the updated middleware models) carries the
            // same perturbation magnitude as central DP-FedAvg over the same
            // participants. Calibrating to the configured K when clients
            // dropped out would under-noise the release.
            let mut rng = round_central_noise.stream(slot);
            privatize_aggregate(&mut delta, &self.config.dp, participants, &mut rng);
            // Reconstruct dispatched + delta in the delta buffer itself
            // (addition commutes), avoiding a full-model clone per upload.
            add_scaled(&mut delta, dispatched.as_slice(), 1.0);
            returned_slots.push(slot);
            uploaded.push(delta);
        }

        if uploaded.len() >= 2 {
            let collaborators =
                self.config
                    .strategy
                    .select_all_with(round, &uploaded, self.config.measure);
            let fused = cross_aggregate_all(&uploaded, &collaborators, self.config.alpha);
            for (&slot, params) in returned_slots.iter().zip(fused) {
                self.middleware[slot] = ParamBlock::from(params);
            }
        } else if let (Some(&slot), Some(params)) =
            (returned_slots.first(), uploaded.into_iter().next())
        {
            self.middleware[slot] = ParamBlock::from(params);
        }

        if let Some(accountant) = self.accountant.as_mut() {
            accountant.step_with_rate(participants as f64 / num_clients.max(1) as f64);
        }
        let ordered_updates: Vec<&LocalUpdate> =
            // alloc: bounded — cohort-sized aggregation staging, once per round
            ordered.iter().map(|&(_, update)| update).collect();
        RoundReport::from_ordered(&ordered_updates)
    }
}

impl FederatedAlgorithm for DpFedCross {
    fn name(&self) -> String {
        // Seed in the name for the same reason as DpFedAvg: a resume under a
        // different noise seed cannot be bitwise faithful and must be
        // rejected by the name check.
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!(
            "dp-fedcross(alpha={}, C={}, z={}, {}, seed={})",
            self.config.alpha,
            self.config.dp.clip_norm,
            self.config.dp.noise_multiplier,
            self.config.dp.placement,
            self.client_noise.base_seed()
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let k = self.middleware.len();
        assert_eq!(
            ctx.clients_per_round(),
            k,
            "DP-FedCross requires clients_per_round to equal the number of middleware models"
        );
        self.ensure_accountant(k, ctx.num_clients());

        let mut selected = ctx.select_clients();
        ctx.rng_mut().shuffle(&mut selected);
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .zip(self.middleware.iter())
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|(&client, model)| (client, model.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        self.apply_updates(round, ctx.num_clients(), &selected, &updates)
    }

    fn global_params(&self) -> Vec<f32> {
        global_model(&self.middleware)
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free `GlobalModelGen` for the per-round evaluation path
        // (the kernel zero-fills `out` itself).
        out.resize(self.middleware[0].len(), 0.0);
        global_model_into(out, &self.middleware);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        let mut state = AlgorithmState::multi_model(self.middleware.clone());
        if let Some(accountant) = &self.accountant {
            state = state.with_record(ACCOUNTANT_RECORD, accountant_record(accountant));
        }
        Ok(state)
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let models = state
            .expect_models(self.middleware.len(), self.middleware[0].len())?
            .to_vec();
        let accountant = restore_accountant(state, self.config.dp.noise_multiplier)?;
        self.middleware = models;
        self.accountant = accountant;
        Ok(())
    }
}

/// FedAvg over pairwise-masked uploads (secure-aggregation simulation).
///
/// Clients upload `delta + mask` where the pairwise masks cancel in the sum;
/// the server averages the masked uploads and obtains exactly the plain
/// FedAvg average without ever observing an individual client's delta.
///
/// Resumable: the per-round [`PairwiseMasker`] seed is derived through
/// [`RoundStreams`] from `(SecureAggMask, mask_seed, round)` — an absolute
/// round index, never a consumed stream — so the global model is the entire
/// cross-round state. The earlier `mask_seed + round` arithmetic is gone: it
/// let runs with adjacent seeds replay each other's mask streams (seed 5 at
/// round 3 aliased seed 6 at round 2); the fork derivation mixes the seed
/// through a SplitMix64-style finaliser instead. Checkpoints written under
/// the additive derivation carry the old algorithm name and are **rejected
/// by design** — resuming them would splice two different mask sequences.
pub struct SecureAggFedAvg {
    global: ParamBlock,
    mask_scale: f32,
    mask_streams: RoundStreams,
}

impl SecureAggFedAvg {
    /// Creates the secure-aggregation FedAvg variant. `mask_scale` sets the
    /// magnitude of the pairwise masks relative to the parameters;
    /// `mask_seed` roots the round-derived mask-seed stream.
    pub fn new(init_params: Vec<f32>, mask_scale: f32, mask_seed: u64) -> Self {
        Self {
            global: ParamBlock::from(init_params),
            mask_scale,
            mask_streams: RoundStreams::new(StreamDomain::SecureAggMask, mask_seed),
        }
    }
}

impl FederatedAlgorithm for SecureAggFedAvg {
    fn name(&self) -> String {
        // mask_seed and the derivation scheme are part of the name: the
        // per-round masks cancel only in exact sequential summation, so a
        // resume under a different seed — or under the pre-fork additive
        // derivation this name deliberately no longer matches — would differ
        // in the low bits. The name check rejects both.
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!(
            "secureagg-fedavg(scale={}, seed={}, masks=fork)",
            self.mask_scale,
            self.mask_streams.base_seed()
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|&client| (client, self.global.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        if updates.is_empty() {
            return RoundReport::default();
        }

        // Client side: compute deltas and mask them pairwise.
        let deltas: Vec<Vec<f32>> = updates
            .iter()
            .map(|update| difference(&update.params, &self.global))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let masker =
            PairwiseMasker::new(self.mask_streams.round(round).seed(), self.mask_scale);
        let masked = masker.mask_all(&deltas);

        // Server side: only the masked uploads are visible; their sum is exact.
        let sum = aggregate_masked(&masked);
        let scale = 1.0 / masked.len() as f32;
        add_scaled(self.global.make_mut(), &sum, scale);
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        Ok(AlgorithmState::single_model(self.global.clone()))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        self.global = state.expect_single_model(self.global.len())?.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::NoisePlacement;
    use fedcross_tensor::SeededRng;
    use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
    use fedcross_data::Heterogeneity;
    use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
    use fedcross_nn::models::{cnn, CnnConfig};
    use fedcross_nn::Model;

    fn tiny_setup(seed: u64, clients: usize) -> (FederatedDataset, Box<dyn Model>) {
        let mut rng = SeededRng::new(seed);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: clients,
                samples_per_client: 25,
                test_samples: 60,
                ..Default::default()
            },
            Heterogeneity::Iid,
            &mut rng,
        );
        let template = cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (4, 8),
                fc_hidden: 16,
                kernel: 3,
            },
            &mut rng,
        );
        (data, template)
    }

    fn quick_config(rounds: usize, k: usize) -> SimulationConfig {
        SimulationConfig {
            rounds,
            clients_per_round: k,
            eval_every: rounds.max(1),
            eval_batch_size: 64,
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 10,
                lr: 0.1,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            seed: 7,
        }
    }

    #[test]
    fn dp_fedavg_learns_with_modest_noise() {
        let (data, template) = tiny_setup(0, 6);
        let init_acc = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &template.params_flat(),
            data.test_set(),
            64,
        )
        .accuracy;
        // Modest means noise norm below signal norm: the averaged delta has
        // L2 norm up to C, the central noise vector has norm ≈ z·C/K·√d.
        let config = DpConfig {
            clip_norm: 5.0,
            noise_multiplier: 0.05,
            placement: NoisePlacement::Central,
        };
        let mut algo = DpFedAvg::new(template.params_flat(), config, 11);
        let sim = Simulation::new(quick_config(10, 3), &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1,
            "DP-FedAvg should still learn: {} vs init {}",
            result.history.best_accuracy(),
            init_acc
        );
        let epsilon = algo.epsilon(1e-5).expect("accountant initialised");
        assert!(epsilon.is_finite() && epsilon > 0.0);
        assert_eq!(algo.accountant().unwrap().rounds(), 10);
    }

    #[test]
    fn stronger_noise_costs_more_accuracy_and_less_epsilon() {
        let (data, template) = tiny_setup(1, 6);
        let run = |noise_multiplier: f32| {
            let config = DpConfig {
                clip_norm: 2.0,
                noise_multiplier,
                placement: NoisePlacement::Central,
            };
            let mut algo = DpFedAvg::new(template.params_flat(), config, 13);
            let sim = Simulation::new(quick_config(8, 3), &data, template.clone_model());
            let result = sim.run(&mut algo);
            (result.history.best_accuracy(), algo.epsilon(1e-5).unwrap())
        };
        let (acc_low_noise, eps_low_noise) = run(0.1);
        let (acc_high_noise, eps_high_noise) = run(8.0);
        assert!(
            acc_low_noise >= acc_high_noise,
            "more noise should not improve accuracy ({acc_low_noise} vs {acc_high_noise})"
        );
        assert!(
            eps_high_noise < eps_low_noise,
            "more noise must yield a smaller epsilon"
        );
    }

    #[test]
    fn local_placement_runs_and_reports_epsilon() {
        let (data, template) = tiny_setup(2, 6);
        let config = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.5,
            placement: NoisePlacement::Local,
        };
        let mut algo = DpFedAvg::new(template.params_flat(), config, 17);
        let sim = Simulation::new(quick_config(4, 3), &data, template);
        let result = sim.run(&mut algo);
        assert!(result.history.final_accuracy() >= 0.0);
        assert!(algo.global_params().iter().all(|p| p.is_finite()));
        assert!(algo.epsilon(1e-5).unwrap() > 0.0);
        assert!(algo.name().contains("local"));
    }

    #[test]
    fn dp_fedcross_learns_and_tracks_the_budget() {
        let (data, template) = tiny_setup(3, 8);
        let init_acc = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &template.params_flat(),
            data.test_set(),
            64,
        )
        .accuracy;
        let config = DpFedCrossConfig {
            alpha: 0.9,
            dp: DpConfig {
                clip_norm: 5.0,
                noise_multiplier: 0.05,
                placement: NoisePlacement::Central,
            },
            ..Default::default()
        };
        let mut algo = DpFedCross::new(config, template.params_flat(), 4, 19);
        let sim = Simulation::new(quick_config(10, 4), &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1,
            "DP-FedCross should still learn: {} vs init {}",
            result.history.best_accuracy(),
            init_acc
        );
        assert_eq!(algo.middleware().len(), 4);
        assert!(algo.epsilon(1e-5).unwrap() > 0.0);
    }

    #[test]
    #[should_panic]
    fn dp_fedcross_rejects_invalid_alpha() {
        let config = DpFedCrossConfig {
            alpha: 0.2,
            ..Default::default()
        };
        let _ = DpFedCross::new(config, vec![0.0; 4], 3, 0);
    }

    #[test]
    fn secure_aggregation_matches_plain_fedavg() {
        let (data, template) = tiny_setup(4, 6);
        // Plain FedAvg reference implemented inline over the same engine.
        struct PlainFedAvg {
            global: Vec<f32>,
        }
        impl FederatedAlgorithm for PlainFedAvg {
            fn name(&self) -> String {
                "plain".into()
            }
            fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
                let selected = ctx.select_clients();
                let jobs: Vec<(usize, Vec<f32>)> =
                    selected.iter().map(|&c| (c, self.global.clone())).collect();
                let updates = ctx.local_train_batch(&jobs);
                let params: Vec<&[f32]> =
                    updates.iter().map(|u| u.params.as_slice()).collect();
                self.global = average(&params);
                RoundReport::from_updates(&updates)
            }
            fn global_params(&self) -> Vec<f32> {
                self.global.clone()
            }
        }

        let config = quick_config(3, 3);
        let mut plain = PlainFedAvg {
            global: template.params_flat(),
        };
        let plain_result =
            Simulation::new(config, &data, template.clone_model()).run(&mut plain);

        let mut masked = SecureAggFedAvg::new(template.params_flat(), 50.0, 23);
        let masked_result = Simulation::new(config, &data, template).run(&mut masked);

        // Same seed, same schedule: the masked pipeline reproduces the plain
        // average up to floating-point cancellation error.
        let max_diff = plain
            .global_params()
            .iter()
            .zip(masked.global_params())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max)
            ;
        assert!(max_diff < 1e-2, "masked and plain FedAvg diverged by {max_diff}");
        assert!(
            (plain_result.history.final_accuracy() - masked_result.history.final_accuracy()).abs()
                < 0.05
        );
    }
}
