//! Device-speed and straggler modelling.
//!
//! Production federations run on wildly heterogeneous hardware: a fraction of
//! the population is persistently slow ("stragglers"), and every device's
//! round time additionally jitters with network conditions. A [`DeviceModel`]
//! captures both as a **pure function** of `(seed, round, client)`:
//!
//! * each client's base speed is assigned once, from the
//!   [`StreamDomain::DeviceSpeed`] stream at round 0 — the straggler *set* is
//!   fixed for the whole run, like adversary membership,
//! * each round's upload latency adds log-normal jitter from the
//!   [`StreamDomain::LatencyDraw`] stream at the current round.
//!
//! Because neither query consumes shared RNG state, slow-device runs stay
//! bitwise resumable (round `R`'s latencies are identical after a restart)
//! and independent of upload arrival order — the two properties the round
//! policies in [`crate::faults`] build on.
//!
//! ## Latency units
//!
//! One latency unit is one *round budget on fast hardware*: a fast,
//! jitter-free client has latency exactly 1.0. A deadline budget of `2.0`
//! therefore means "wait twice as long as a nominal device needs", and under
//! buffered rounds an upload with latency `l` arrives `ceil(l) - 1` rounds
//! late (latency ≤ 1 arrives within its own training round).

use crate::streams::{RoundStreams, StreamDomain};
use serde::{Deserialize, Serialize};

/// Per-client device speeds plus per-round latency jitter.
///
/// Attach with `Simulation::with_devices`; combine with a
/// `RoundPolicy::Deadline` to drop uploads that miss the round budget, or
/// with `RoundPolicy::Buffered` to turn latency into staleness. Under the
/// default synchronous policy the server blocks on the slowest device, so the
/// model changes nothing (latency is accounting, not behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Fraction of the federation on slow hardware, in `[0, 1]`.
    pub straggler_fraction: f32,
    /// Latency multiplier of a straggler relative to a fast device (≥ 1).
    pub slowdown: f32,
    /// Log-normal jitter scale σ (0 disables jitter): each round's latency is
    /// multiplied by `exp(σ·z)` with `z ~ N(0, 1)`.
    pub jitter: f32,
    /// Base seed of the device streams, independent of training randomness.
    pub seed: u64,
}

impl DeviceModel {
    /// A homogeneous fleet: every device is fast, no jitter. Latency is
    /// exactly 1.0 for every `(round, client)`.
    pub fn uniform(seed: u64) -> Self {
        Self {
            straggler_fraction: 0.0,
            slowdown: 1.0,
            jitter: 0.0,
            seed,
        }
    }

    /// A two-tier fleet: `straggler_fraction` of clients are `slowdown`×
    /// slower, no jitter.
    pub fn two_tier(straggler_fraction: f32, slowdown: f32, seed: u64) -> Self {
        Self {
            straggler_fraction,
            slowdown,
            jitter: 0.0,
            seed,
        }
    }

    /// Panics on a malformed model: `straggler_fraction` outside `[0, 1]`,
    /// `slowdown` below 1 or non-finite, negative or non-finite `jitter`.
    pub fn validate(&self) {
        assert!(
            self.straggler_fraction.is_finite() && (0.0..=1.0).contains(&self.straggler_fraction),
            "straggler fraction must lie in [0, 1], got {}",
            self.straggler_fraction
        );
        assert!(
            self.slowdown.is_finite() && self.slowdown >= 1.0,
            "slowdown must be a finite multiplier >= 1, got {}",
            self.slowdown
        );
        assert!(
            self.jitter.is_finite() && self.jitter >= 0.0,
            "jitter must be finite and non-negative, got {}",
            self.jitter
        );
    }

    /// Short human-readable description for tables and reports.
    pub fn label(&self) -> String {
        // alloc: cold — reporting label, not on the round path
        format!(
            "{:.0}% stragglers @{}x",
            self.straggler_fraction * 100.0,
            self.slowdown
        )
    }

    /// Whether `client` runs on slow hardware — a pure function of the model
    /// seed, drawn from the [`StreamDomain::DeviceSpeed`] stream at round 0.
    pub fn is_straggler(&self, client: usize) -> bool {
        let mut rng = RoundStreams::new(StreamDomain::DeviceSpeed, self.seed)
            .round(0)
            .stream(client);
        rng.uniform() < self.straggler_fraction
    }

    /// The client's base speed: 1.0 for fast devices, `1 / slowdown` for
    /// stragglers.
    pub fn speed(&self, client: usize) -> f32 {
        if self.is_straggler(client) {
            1.0 / self.slowdown
        } else {
            1.0
        }
    }

    /// The client's upload latency in this round (see the module docs for
    /// units): `jitter_factor / speed`, a pure function of
    /// `(seed, round, client)` — never of arrival order or prior rounds.
    pub fn latency(&self, round: usize, client: usize) -> f32 {
        let mut rng = RoundStreams::new(StreamDomain::LatencyDraw, self.seed)
            .round(round)
            .stream(client);
        let z = rng.normal();
        let factor = if self.jitter > 0.0 {
            (self.jitter * z).exp()
        } else {
            1.0
        };
        factor / self.speed(client)
    }

    /// How many whole rounds after its training round an upload with this
    /// latency arrives: `ceil(latency) - 1`, so latency ≤ 1 lands within its
    /// own round. Used by the buffered round policy to turn device speed into
    /// staleness.
    pub fn delay_rounds(&self, round: usize, client: usize) -> usize {
        (self.latency(round, client).ceil().max(1.0) as usize).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fleet_has_unit_latency() {
        let model = DeviceModel::uniform(7);
        model.validate();
        for round in 0..4 {
            for client in 0..8 {
                assert!(!model.is_straggler(client));
                assert_eq!(model.latency(round, client).to_bits(), 1.0f32.to_bits());
                assert_eq!(model.delay_rounds(round, client), 0);
            }
        }
    }

    #[test]
    fn straggler_set_is_seed_stable_and_round_free() {
        let model = DeviceModel::two_tier(0.4, 8.0, 11);
        let first: Vec<bool> = (0..32).map(|c| model.is_straggler(c)).collect();
        // Re-querying (any number of rounds later, after a restart, ...)
        // yields the identical set.
        let second: Vec<bool> = (0..32).map(|c| model.is_straggler(c)).collect();
        assert_eq!(first, second);
        // The fraction is approximately respected over a population.
        let count = first.iter().filter(|&&s| s).count();
        assert!((5..=22).contains(&count), "got {count} stragglers of 32");
        // A different seed draws a different set.
        let other = DeviceModel::two_tier(0.4, 8.0, 12);
        let theirs: Vec<bool> = (0..32).map(|c| other.is_straggler(c)).collect();
        assert_ne!(first, theirs);
    }

    #[test]
    fn latency_is_a_pure_function_of_round_and_client() {
        let model = DeviceModel {
            straggler_fraction: 0.3,
            slowdown: 4.0,
            jitter: 0.2,
            seed: 5,
        };
        model.validate();
        for round in [0usize, 3, 17] {
            for client in 0..6 {
                let a = model.latency(round, client);
                let b = model.latency(round, client);
                assert_eq!(a.to_bits(), b.to_bits());
                assert!(a > 0.0 && a.is_finite());
            }
        }
        // Adjacent rounds jitter differently.
        assert_ne!(
            model.latency(3, 0).to_bits(),
            model.latency(4, 0).to_bits()
        );
    }

    #[test]
    fn stragglers_are_slower() {
        let model = DeviceModel::two_tier(0.5, 6.0, 3);
        let straggler = (0..64).find(|&c| model.is_straggler(c)).unwrap();
        let fast = (0..64).find(|&c| !model.is_straggler(c)).unwrap();
        assert_eq!(model.latency(0, straggler), 6.0);
        assert_eq!(model.latency(0, fast), 1.0);
        assert_eq!(model.delay_rounds(0, straggler), 5);
        assert_eq!(model.delay_rounds(0, fast), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_fraction_is_rejected() {
        DeviceModel::two_tier(1.5, 2.0, 0).validate();
    }

    #[test]
    #[should_panic]
    fn sub_unit_slowdown_is_rejected() {
        DeviceModel::two_tier(0.2, 0.5, 0).validate();
    }

    #[test]
    fn label_is_human_readable() {
        assert_eq!(DeviceModel::two_tier(0.3, 4.0, 0).label(), "30% stragglers @4x");
    }
}
