//! Schedule-invariance sanitizer: proves every registered algorithm's
//! trajectory is a pure function of the construction seeds.
//!
//! For each [`AlgorithmSpec::registered`] entry this runs a short synthetic
//! federation and fingerprints the full trajectory (per-round metric bits,
//! communication counters, final global model bits), then re-runs it at
//! rayon thread counts 1/2/4 and under deterministically permuted upload
//! arrival orders. Any fingerprint that differs from the canonical run is a
//! determinism bug — a racing kernel or an arrival-order-dependent
//! aggregation path — and the binary exits non-zero.
//!
//! ```text
//! cargo run --release -p fedcross-bench --bin determinism_check
//! ```
//!
//! This is the runtime half of the determinism lint plane; the static half
//! is `fedcross-lint` (see docs/LINTS.md).

use fedcross::AlgorithmSpec;
use fedcross_bench::determinism::sweep_spec;
use std::process::ExitCode;

const THREADS: [usize; 3] = [1, 2, 4];
const SHUFFLE_SEEDS: [u64; 2] = [3, 17];

fn main() -> ExitCode {
    println!("schedule-invariance sanitizer");
    println!(
        "threads {:?}, upload-shuffle seeds {:?}\n",
        THREADS, SHUFFLE_SEEDS
    );

    let mut failures = 0usize;
    for spec in AlgorithmSpec::registered() {
        let outcome = sweep_spec(spec, &THREADS, &SHUFFLE_SEEDS);
        let verdict = if outcome.invariant() { "ok" } else { "FAIL" };
        println!(
            "{:>18}  canonical {:016x}  {}",
            outcome.label, outcome.canonical, verdict
        );
        if !outcome.invariant() {
            failures += 1;
            for (variant, fp) in &outcome.variants {
                if *fp != outcome.canonical {
                    println!("{:>18}  {:>24} -> {:016x}", "", variant, fp);
                }
            }
        }
    }

    if failures == 0 {
        println!("\nall registered algorithms are schedule-invariant");
        ExitCode::SUCCESS
    } else {
        println!(
            "\n{failures} algorithm(s) produced schedule-dependent trajectories"
        );
        ExitCode::FAILURE
    }
}
