//! CluSamp (Fraboni et al. 2021): clustered client sampling.
//!
//! Clients are grouped by the similarity of their model updates (the paper
//! uses gradient similarity rather than sample counts, to avoid exposing data
//! distributions), and each round one representative is sampled per cluster.
//! Aggregation is FedAvg; only the *selection* changes, so communication
//! overhead stays Low (Table I).

use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::engine::{canonicalize_updates, FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_nn::params::{cosine, difference, weighted_average_into, ParamBlock};

/// The clustered-sampling baseline.
pub struct CluSamp {
    global: ParamBlock,
    /// Last observed update direction (trained − dispatched) per client.
    client_updates: Vec<Option<Vec<f32>>>,
}

impl CluSamp {
    /// Creates CluSamp for a federation of `total_clients` clients.
    pub fn new(init_params: Vec<f32>, total_clients: usize) -> Self {
        assert!(!init_params.is_empty(), "initial parameters must not be empty");
        assert!(total_clients > 0, "need at least one client");
        Self {
            global: ParamBlock::from(init_params),
            client_updates: vec![None; total_clients],
        }
    }

    /// Number of clients whose update direction has been observed so far.
    pub fn observed_clients(&self) -> usize {
        self.client_updates.iter().filter(|u| u.is_some()).count()
    }

    /// Groups the clients with known update directions into `k` clusters by
    /// greedy assignment to the most-similar seed (cosine similarity), and
    /// returns one representative per cluster; clients never seen yet are
    /// grouped separately and sampled uniformly.
    fn cluster_representatives(
        &self,
        k: usize,
        ctx: &mut RoundContext<'_>,
    ) -> Vec<usize> {
        let known: Vec<usize> = (0..self.client_updates.len())
            .filter(|&c| self.client_updates[c].is_some())
            // alloc: bounded — cohort-sized clustering scratch, once per round
            .collect();
        let unknown: Vec<usize> = (0..self.client_updates.len())
            .filter(|&c| self.client_updates[c].is_none())
            // alloc: bounded — cohort-sized clustering scratch, once per round
            .collect();

        // Until enough clients have been observed, fall back to uniform sampling.
        if known.len() < k {
            return ctx.select_clients();
        }

        // Seed the clusters with k spread-out known clients (first come, first
        // seeded is fine since updates are already diverse), then greedily
        // assign every remaining known client to its most similar seed.
        // alloc: bounded — cohort-sized clustering scratch, once per round
        let seeds: Vec<usize> = known.iter().take(k).copied().collect();
        // alloc: bounded — cohort-sized clustering scratch, once per round
        let mut clusters: Vec<Vec<usize>> = seeds.iter().map(|&s| vec![s]).collect();
        for &client in known.iter().skip(k) {
            let update = self.client_updates[client].as_ref().expect("known client");
            let mut best = 0usize;
            let mut best_sim = f32::NEG_INFINITY;
            for (ci, &seed) in seeds.iter().enumerate() {
                let seed_update = self.client_updates[seed].as_ref().expect("seeded client");
                let sim = cosine(update, seed_update);
                if sim > best_sim {
                    best_sim = sim;
                    best = ci;
                }
            }
            clusters[best].push(client);
        }
        // Give unseen clients a chance by spreading them across clusters.
        for (i, &client) in unknown.iter().enumerate() {
            clusters[i % k].push(client);
        }

        // One uniformly sampled representative per cluster.
        clusters
            .iter()
            .map(|members| members[ctx.rng_mut().below(members.len())])
            // alloc: bounded — cohort-sized clustering scratch, once per round
            .collect()
    }
}

impl FederatedAlgorithm for CluSamp {
    fn name(&self) -> String {
        // alloc: cold — identity string for reporting, built outside the per-round loop
        "clusamp".to_string()
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let k = ctx.clients_per_round();
        let selected = self.cluster_representatives(k, ctx);

        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|&client| (client, self.global.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let mut updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        // Aggregate in dispatch order regardless of upload arrival order
        // (bitwise no-op on an unshuffled round).
        canonicalize_updates(&mut updates, &selected);
        if updates.is_empty() {
            // Every selected client dropped out this round (possible under an
            // availability model); the global model simply carries over.
            return RoundReport::default();
        }

        // Remember each participant's update direction for future clustering.
        for update in &updates {
            self.client_updates[update.client] =
                Some(difference(&update.params, &self.global));
        }

        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        let params: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
        let weights: Vec<f32> = updates
            .iter()
            .map(|u| u.num_samples.max(1) as f32)
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        weighted_average_into(self.global.make_mut(), &params, &weights);
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        // Losing the per-client update directions would silently fall back to
        // uniform sampling after a restart (the `known.len() < k` path), so
        // the observed directions are part of the state.
        Ok(AlgorithmState::single_model(self.global.clone()).with_client_table(
            "client_updates",
            self.client_updates
                .iter()
                .enumerate()
                .filter_map(|(client, update)| update.clone().map(|u| (client, u)))
                .collect(),
        ))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let dim = self.global.len();
        let total_clients = self.client_updates.len();
        let global = state.expect_single_model(dim)?;
        let table = state.expect_client_table("client_updates", total_clients, dim)?;
        self.global = global.clone();
        self.client_updates = vec![None; total_clients];
        for (client, update) in table {
            self.client_updates[*client] = Some(update.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{quick_config, tiny_image_setup};
    use fedcross_flsim::Simulation;

    #[test]
    fn clusamp_runs_with_low_comm_overhead() {
        let (data, template) = tiny_image_setup(0, 8);
        let model_params = template.param_count();
        let mut algo = CluSamp::new(template.params_flat(), data.num_clients());
        let sim = Simulation::new(quick_config(4, 3), &data, template);
        let result = sim.run(&mut algo);
        assert_eq!(result.history.len(), 4);
        assert_eq!(
            result.comm.overhead_class(model_params),
            fedcross_flsim::CommOverheadClass::Low
        );
    }

    #[test]
    fn update_directions_accumulate_over_rounds() {
        let (data, template) = tiny_image_setup(1, 8);
        let mut algo = CluSamp::new(template.params_flat(), data.num_clients());
        assert_eq!(algo.observed_clients(), 0);
        let sim = Simulation::new(quick_config(5, 3), &data, template);
        let _ = sim.run(&mut algo);
        assert!(
            algo.observed_clients() >= 3,
            "observed only {} clients",
            algo.observed_clients()
        );
    }

    #[test]
    fn clusamp_learns_above_chance() {
        let (data, template) = tiny_image_setup(2, 6);
        let mut algo = CluSamp::new(template.params_flat(), data.num_clients());
        let mut config = quick_config(10, 3);
        config.local.epochs = 2;
        config.local.lr = 0.1;
        let sim = Simulation::new(config, &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > 0.2,
            "best accuracy {}",
            result.history.best_accuracy()
        );
    }

    #[test]
    fn representatives_are_valid_and_distinct_once_clusters_exist() {
        let (data, template) = tiny_image_setup(3, 10);
        let mut algo = CluSamp::new(template.params_flat(), data.num_clients());
        let sim = Simulation::new(quick_config(6, 4), &data, template);
        let _ = sim.run(&mut algo);
        // After several rounds the per-client update table holds valid vectors.
        for update in algo.client_updates.iter().flatten() {
            assert_eq!(update.len(), algo.global.len());
            assert!(update.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    #[should_panic]
    fn zero_clients_is_rejected() {
        let _ = CluSamp::new(vec![0.0], 0);
    }
}
