//! FedCross training-acceleration methods (Section III-D) side by side:
//! vanilla, propeller models, dynamic α, and the combined PM-DA variant.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin acceleration_comparison
//! ```

use fedcross::{Acceleration, FedCross, FedCrossConfig, SelectionStrategy};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(21);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 16,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.1),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );

    let rounds = 18;
    let window = rounds / 3;
    let sim_config = SimulationConfig {
        rounds,
        clients_per_round: 4,
        eval_every: 3,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 17,
    };

    let variants = [
        Acceleration::None,
        Acceleration::PropellerModels {
            propellers: 3,
            until_round: window,
        },
        Acceleration::DynamicAlpha {
            start_alpha: 0.5,
            until_round: window,
        },
        Acceleration::PropellerThenDynamic {
            propellers: 3,
            switch_round: window / 2,
            until_round: window,
        },
    ];

    println!("variant     early(≤{window} rounds)   best    final");
    println!("---------   ------------------   -----   -----");
    for acceleration in variants {
        let config = FedCrossConfig {
            alpha: 0.99,
            strategy: SelectionStrategy::LowestSimilarity,
            acceleration,
            ..Default::default()
        };
        let mut algo = FedCross::new(config, template.params_flat(), sim_config.clients_per_round);
        let result =
            Simulation::new(sim_config, &data, template.clone_model()).run(&mut algo);
        let early = result
            .history
            .records()
            .iter()
            .filter(|r| r.round <= window)
            .map(|r| r.accuracy * 100.0)
            .fold(0.0f32, f32::max);
        println!(
            "{:<11} {:>17.1}%   {:>4.1}%  {:>4.1}%",
            acceleration.label(),
            early,
            result.best_accuracy_pct(),
            result.final_accuracy_pct()
        );
    }
    println!("\nExpected: the accelerated variants are ahead of vanilla FedCross in the early");
    println!("rounds (the paper's Figure 9), possibly trading a little final accuracy for it.");
}
