//! Deterministic, seedable random number generation.
//!
//! Every stochastic component of the reproduction (weight initialisation,
//! Dirichlet partitioning, client selection, batch shuffling, the random
//! middleware-model dispatch of FedCross Algorithm 1 line 4–5) draws from a
//! [`SeededRng`], so whole experiments are reproducible from a single seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator wrapper used across the workspace.
///
/// Internally a [`StdRng`] seeded from a `u64`. The wrapper exists so the rest
/// of the workspace does not depend on the concrete `rand` RNG type and so
/// derived seeds (`fork`) are constructed consistently everywhere.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
    seed: u64,
}

impl SeededRng {
    /// Creates a new generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Returns the seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator.
    ///
    /// The child seed mixes the parent seed with `stream` using a
    /// SplitMix64-style finaliser so children with nearby stream ids are
    /// decorrelated. Used to give every client / round / model its own stream.
    ///
    /// # Contract: forks derive from the construction seed, not the state
    ///
    /// `fork` reads only the seed this generator was **created** with —
    /// drawing any number of samples from the parent beforehand does not
    /// change what `fork(s)` returns, and two forks with the same stream id
    /// are always identical:
    ///
    /// ```
    /// use fedcross_tensor::SeededRng;
    /// let mut rng = SeededRng::new(7);
    /// let before = rng.fork(3);
    /// let _ = rng.uniform(); // consume parent state
    /// let after = rng.fork(3);
    /// assert_eq!(before.seed(), after.seed());
    /// ```
    ///
    /// This makes derived streams reproducible independent of how much the
    /// parent was consumed (the round loop relies on exactly that: client
    /// streams don't shift when selection draws more or fewer samples), but
    /// it is a footgun if you expect `fork` to act like a random draw: to get
    /// *different* children from one parent you must pass *different* stream
    /// ids — typically by forking a fresh parent per round, as the engine
    /// does with `master.fork(round)` followed by `round_rng.fork(client + 1)`.
    pub fn fork(&self, stream: u64) -> SeededRng {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SeededRng::new(z)
    }

    /// Samples a uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Samples a uniform `f32` in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Samples a standard-normal `f32` via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        // Box–Muller keeps us independent of rand_distr in the hot init path.
        let u1 = self.uniform().max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Samples a normal `f32` with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Samples a uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(n) requires n > 0");
        self.inner.gen_range(0..n)
    }

    /// Returns `k` distinct indices sampled uniformly from `[0, n)`.
    ///
    /// Uses a partial Fisher–Yates shuffle; order of the returned indices is
    /// random.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        // alloc: bounded — dense index pool for small populations; the sparse variant covers large n
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Returns `k` distinct indices sampled uniformly from `[0, n)` using
    /// **O(k) memory**, independent of `n` (Floyd's algorithm).
    ///
    /// Unlike [`SeededRng::sample_without_replacement`], which builds an
    /// `O(n)` scratch pool, this never touches the population: it draws `k`
    /// values and checks membership against the (small) picked set only —
    /// the sampler the population-scale engine uses to select a cohort of
    /// `K` clients from 10^6 without materialising a million-entry vector
    /// every round. The draw sequence differs from the dense sampler's, so
    /// the engine keeps the dense path for small federations to preserve
    /// historical trajectories bitwise (see
    /// `fedcross_flsim::engine::SPARSE_SELECTION_THRESHOLD`).
    ///
    /// The returned order is Floyd's insertion order (uniform over subsets,
    /// not over permutations). Membership checks scan the picked vector, so
    /// the cost is `O(k^2)` worst case — `k` is a per-round cohort (tens to
    /// hundreds), never the population.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_without_replacement_sparse(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        // alloc: bounded — k picks plus collision set, cohort-sized
        let mut picked: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j + 1);
            if picked.contains(&t) {
                picked.push(j);
            } else {
                picked.push(t);
            }
        }
        picked
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n <= 1 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples an index according to (unnormalised, non-negative) weights.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "weighted_index requires weights");
        let total: f32 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Samples from a symmetric Dirichlet-like distribution of dimension `dim`
    /// with concentration `beta`, returning a probability vector.
    ///
    /// Implemented by normalising Gamma(β, 1) samples (Marsaglia–Tsang for
    /// β ≥ 1, boost-by-uniform otherwise), matching how the paper constructs
    /// Dir(β) label skews (Hsu et al. 2019).
    pub fn dirichlet(&mut self, dim: usize, beta: f32) -> Vec<f32> {
        assert!(dim > 0, "dirichlet requires dim > 0");
        assert!(beta > 0.0, "dirichlet requires beta > 0");
        // alloc: pooled — shard-cache miss sampling; steady rounds hit the cache
        let mut samples = vec![0f32; dim];
        for s in samples.iter_mut() {
            *s = self.gamma(beta);
        }
        let total: f32 = samples.iter().sum();
        if total <= f32::MIN_POSITIVE {
            // Extremely small beta can underflow every component; fall back to
            // a one-hot draw which is the limiting Dir(β→0) behaviour.
            let hot = self.below(dim);
            // alloc: pooled — shard-cache miss sampling; steady rounds hit the cache
            let mut one_hot = vec![0f32; dim];
            one_hot[hot] = 1.0;
            return one_hot;
        }
        for s in samples.iter_mut() {
            *s /= total;
        }
        samples
    }

    /// Samples Gamma(alpha, 1).
    fn gamma(&mut self, alpha: f32) -> f32 {
        if alpha < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
            let u = self.uniform().max(f32::MIN_POSITIVE);
            return self.gamma(alpha + 1.0) * u.powf(1.0 / alpha);
        }
        // Marsaglia–Tsang squeeze method.
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.uniform().max(f32::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl RngCore for SeededRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 32);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let parent = SeededRng::new(42);
        // fork: construction-seed — this test pins exactly that contract.
        let mut c1 = parent.fork(0);
        let mut c1_again = parent.fork(0);
        let c2 = parent.fork(1);
        assert_eq!(c1.uniform().to_bits(), c1_again.uniform().to_bits());
        assert_ne!(c1.seed(), c2.seed());
    }

    #[test]
    fn fork_ignores_consumed_parent_state() {
        // Regression pin for the documented contract: forking derives from
        // the construction seed only, so consuming the parent between forks
        // must not change the children — and equal stream ids always collide.
        let mut parent = SeededRng::new(123);
        let mut before = parent.fork(5); // fork: construction-seed
        for _ in 0..100 {
            let _ = parent.uniform();
            let _ = parent.below(10);
        }
        let mut after = parent.fork(5); // fork: construction-seed
        for _ in 0..32 {
            assert_eq!(before.uniform().to_bits(), after.uniform().to_bits());
        }
        // A reconstructed parent with the same seed forks identically too.
        let rebuilt = SeededRng::new(123).fork(5); // fork: construction-seed
        assert_eq!(rebuilt.seed(), after.seed());
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = SeededRng::new(9);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SeededRng::new(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = SeededRng::new(11);
        let picks = rng.sample_without_replacement(50, 20);
        assert_eq!(picks.len(), 20);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(picks.iter().all(|&p| p < 50));
    }

    #[test]
    fn sample_all_is_permutation() {
        let mut rng = SeededRng::new(13);
        let mut picks = rng.sample_without_replacement(10, 10);
        picks.sort_unstable();
        assert_eq!(picks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_sample_is_distinct_and_in_range() {
        let mut rng = SeededRng::new(37);
        let picks = rng.sample_without_replacement_sparse(1_000_000, 64);
        assert_eq!(picks.len(), 64);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
        assert!(picks.iter().all(|&p| p < 1_000_000));
    }

    #[test]
    fn sparse_sample_full_population_is_permutation() {
        let mut rng = SeededRng::new(41);
        let mut picks = rng.sample_without_replacement_sparse(12, 12);
        picks.sort_unstable();
        assert_eq!(picks, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_sample_is_deterministic_per_seed() {
        let a = SeededRng::new(43).sample_without_replacement_sparse(100_000, 10);
        let b = SeededRng::new(43).sample_without_replacement_sparse(100_000, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_sample_covers_whole_range_roughly_uniformly() {
        // Every decile of a 10^5 population should be hit over many draws —
        // a truncated-range bug (e.g. sampling only [0, k)) would concentrate
        // all picks in one bucket.
        let mut rng = SeededRng::new(47);
        let mut buckets = [0usize; 10];
        for _ in 0..200 {
            for p in rng.sample_without_replacement_sparse(100_000, 10) {
                buckets[p / 10_000] += 1;
            }
        }
        assert!(
            buckets.iter().all(|&b| b > 100),
            "decile counts too skewed: {buckets:?}"
        );
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SeededRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = SeededRng::new(19);
        let weights = [0.05, 0.9, 0.05];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert!(counts[1] > counts[0] + counts[2]);
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = SeededRng::new(23);
        for &beta in &[0.1f32, 0.5, 1.0, 10.0] {
            let p = rng.dirichlet(10, beta);
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "beta {beta} sum {sum}");
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn small_beta_is_skewed_large_beta_is_flat() {
        let mut rng = SeededRng::new(29);
        let avg_max = |rng: &mut SeededRng, beta: f32| -> f32 {
            (0..200)
                .map(|_| {
                    rng.dirichlet(10, beta)
                        .into_iter()
                        .fold(0f32, f32::max)
                })
                .sum::<f32>()
                / 200.0
        };
        let skewed = avg_max(&mut rng, 0.1);
        let flat = avg_max(&mut rng, 10.0);
        assert!(
            skewed > flat + 0.2,
            "Dir(0.1) should concentrate mass: {skewed} vs {flat}"
        );
    }

    #[test]
    fn rng_core_impl_works() {
        let mut rng = SeededRng::new(31);
        let a = rng.next_u32();
        let b = rng.next_u64();
        assert!(a as u64 != b || a != 0); // trivially exercises the path
        let mut buf = [0u8; 16];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&x| x != 0));
    }
}
