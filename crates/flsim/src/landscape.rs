//! Loss-landscape analysis (RQ1 / Figure 4).
//!
//! The paper's motivation is that FedCross' global model settles in *flatter*
//! loss valleys than FedAvg's. Figure 4 visualises 2-D loss surfaces around
//! the trained global models; this module reproduces both the surface (a grid
//! of loss values along two random filter-normalised directions, Li et al.
//! 2018) and a scalar [`sharpness`] score (expected loss increase under
//! norm-bounded random perturbations) so the comparison can be asserted in
//! tests and printed by the Figure 4 harness.

use fedcross_data::Dataset;
use fedcross_nn::loss::softmax_cross_entropy;
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;

/// A 2-D loss surface around a parameter vector.
#[derive(Debug, Clone)]
pub struct LossSurface {
    /// Grid coordinates along the first random direction.
    pub alphas: Vec<f32>,
    /// Grid coordinates along the second random direction.
    pub betas: Vec<f32>,
    /// `loss[i][j]` = loss at `params + alphas[i]*d1 + betas[j]*d2`.
    pub loss: Vec<Vec<f32>>,
}

impl LossSurface {
    /// Loss at the centre of the grid (the unperturbed parameters).
    pub fn center_loss(&self) -> f32 {
        let i = self.alphas.len() / 2;
        let j = self.betas.len() / 2;
        self.loss[i][j]
    }

    /// Mean loss increase over the whole grid relative to the centre — a
    /// coarse flatness summary of the plotted surface (lower = flatter).
    pub fn mean_rise(&self) -> f32 {
        let center = self.center_loss();
        let mut total = 0f32;
        let mut count = 0usize;
        for row in &self.loss {
            for &v in row {
                total += (v - center).max(0.0);
                count += 1;
            }
        }
        total / count as f32
    }
}

/// Mean loss of `params` (loaded into a clone of `template`) on `data`.
fn loss_of(template: &dyn Model, params: &[f32], data: &Dataset, batch_size: usize) -> f32 {
    let mut model = template.clone_model();
    model.set_params_flat(params);
    let mut total = 0f64;
    let mut samples = 0usize;
    for batch in data.minibatches(batch_size, None) {
        let logits = model.forward(&batch.features, false);
        let (loss, _) = softmax_cross_entropy(&logits, &batch.labels);
        total += loss as f64 * batch.len() as f64;
        samples += batch.len();
    }
    if samples == 0 {
        0.0
    } else {
        (total / samples as f64) as f32
    }
}

/// Draws a random direction with the same norm as `params` (global
/// normalisation), so perturbation radii are comparable across architectures
/// and parameter scales.
fn random_direction(params: &[f32], rng: &mut SeededRng) -> Vec<f32> {
    let mut dir: Vec<f32> = (0..params.len()).map(|_| rng.normal()).collect();
    let dir_norm = dir.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt();
    let param_norm = params
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
        .max(1e-12);
    let scale = (param_norm / dir_norm.max(1e-12)) as f32;
    for d in dir.iter_mut() {
        *d *= scale;
    }
    dir
}

/// Computes the 2-D loss surface around `params` on `data`.
///
/// The grid spans `[-radius, radius]` (as a fraction of the parameter norm)
/// in both directions with `resolution` points per axis.
pub fn loss_surface_2d(
    template: &dyn Model,
    params: &[f32],
    data: &Dataset,
    resolution: usize,
    radius: f32,
    batch_size: usize,
    rng: &mut SeededRng,
) -> LossSurface {
    assert!(resolution >= 3 && resolution % 2 == 1, "resolution must be odd and >= 3");
    assert!(radius > 0.0, "radius must be positive");
    let d1 = random_direction(params, rng);
    let d2 = random_direction(params, rng);

    let coords: Vec<f32> = (0..resolution)
        .map(|i| -radius + 2.0 * radius * i as f32 / (resolution - 1) as f32)
        .collect();

    let mut loss = vec![vec![0f32; resolution]; resolution];
    let mut perturbed = vec![0f32; params.len()];
    for (i, &a) in coords.iter().enumerate() {
        for (j, &b) in coords.iter().enumerate() {
            for (k, p) in perturbed.iter_mut().enumerate() {
                *p = params[k] + a * d1[k] + b * d2[k];
            }
            loss[i][j] = loss_of(template, &perturbed, data, batch_size);
        }
    }
    LossSurface {
        alphas: coords.clone(),
        betas: coords,
        loss,
    }
}

/// Sharpness score: expected loss increase when the parameters are perturbed
/// by random directions of relative norm `epsilon`, averaged over
/// `n_directions` draws. Flat minima have low sharpness; sharp ravines have
/// high sharpness — the quantitative version of the paper's Figure 4 claim.
pub fn sharpness(
    template: &dyn Model,
    params: &[f32],
    data: &Dataset,
    epsilon: f32,
    n_directions: usize,
    batch_size: usize,
    rng: &mut SeededRng,
) -> f32 {
    assert!(epsilon > 0.0 && n_directions > 0);
    let base = loss_of(template, params, data, batch_size);
    let mut total_rise = 0f32;
    let mut perturbed = vec![0f32; params.len()];
    for _ in 0..n_directions {
        let dir = random_direction(params, rng);
        for (k, p) in perturbed.iter_mut().enumerate() {
            *p = params[k] + epsilon * dir[k];
        }
        let rise = loss_of(template, &perturbed, data, batch_size) - base;
        total_rise += rise.max(0.0);
    }
    total_rise / n_directions as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_data::Dataset;
    use fedcross_nn::models::mlp;
    use fedcross_nn::optim::Sgd;
    use fedcross_tensor::Tensor;

    fn toy_data(n: usize) -> Dataset {
        // Two clusters with ~10% label noise so the achievable loss is bounded
        // away from zero and perturbations genuinely change it.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let true_label = i % 2;
            let label = if i % 10 == 7 { 1 - true_label } else { true_label };
            labels.push(label);
            let sign = if true_label == 0 { 1.0 } else { -1.0 };
            let jitter = 0.1 * ((i / 2) % 3) as f32;
            features.extend_from_slice(&[sign + jitter, -sign * 0.7, sign * 0.5 - jitter]);
        }
        Dataset::new(Tensor::from_vec(features, &[n, 3]), labels, 2)
    }

    fn train(model: &mut dyn Model, data: &Dataset, steps: usize, lr: f32) {
        let mut sgd = Sgd::new(lr, 0.9, 0.0);
        let mut rng = SeededRng::new(0);
        for _ in 0..steps {
            for batch in data.minibatches(16, Some(&mut rng)) {
                model.zero_grads();
                let logits = model.forward(&batch.features, true);
                let (_, grad) = softmax_cross_entropy(&logits, &batch.labels);
                model.backward(&grad);
                sgd.step(model);
            }
        }
    }

    #[test]
    fn surface_has_requested_resolution_and_center() {
        let mut rng = SeededRng::new(1);
        let template = mlp(3, &[8], 2, &mut rng);
        let data = toy_data(32);
        let surface = loss_surface_2d(
            template.as_ref(),
            &template.params_flat(),
            &data,
            5,
            0.5,
            32,
            &mut rng,
        );
        assert_eq!(surface.alphas.len(), 5);
        assert_eq!(surface.loss.len(), 5);
        assert!(surface.loss.iter().all(|row| row.len() == 5));
        // The centre coordinate is zero perturbation.
        assert!((surface.alphas[2]).abs() < 1e-6);
        assert!(surface.center_loss().is_finite());
        assert!(surface.mean_rise() >= 0.0);
    }

    #[test]
    fn trained_minimum_center_is_lower_than_the_worst_grid_point() {
        let mut rng = SeededRng::new(2);
        let mut model = mlp(3, &[8], 2, &mut rng);
        let data = toy_data(64);
        train(model.as_mut(), &data, 80, 0.2);
        let surface = loss_surface_2d(
            model.as_ref(),
            &model.params_flat(),
            &data,
            5,
            1.5,
            64,
            &mut rng,
        );
        let worst = surface
            .loss
            .iter()
            .flatten()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(
            surface.center_loss() + 0.02 < worst,
            "centre {} should be clearly below the worst grid point {}",
            surface.center_loss(),
            worst
        );
        assert!(surface.mean_rise() >= 0.0);
    }

    #[test]
    fn sharpness_is_nonnegative_and_grows_with_epsilon() {
        let mut rng = SeededRng::new(3);
        let mut model = mlp(3, &[8], 2, &mut rng);
        let data = toy_data(64);
        train(model.as_mut(), &data, 60, 0.2);
        let params = model.params_flat();
        let small = sharpness(model.as_ref(), &params, &data, 0.05, 6, 64, &mut SeededRng::new(4));
        let large = sharpness(model.as_ref(), &params, &data, 0.8, 6, 64, &mut SeededRng::new(4));
        assert!(small >= 0.0);
        assert!(large >= small, "sharpness should not shrink with radius ({small} -> {large})");
    }

    #[test]
    fn sharpness_is_finite_and_deterministic_for_a_seed() {
        let mut rng = SeededRng::new(5);
        let mut model = mlp(3, &[8], 2, &mut rng);
        let data = toy_data(64);
        train(model.as_mut(), &data, 80, 0.2);
        let good = model.params_flat();
        let a = sharpness(model.as_ref(), &good, &data, 0.4, 8, 64, &mut SeededRng::new(6));
        let b = sharpness(model.as_ref(), &good, &data, 0.4, 8, 64, &mut SeededRng::new(6));
        assert!(a.is_finite());
        assert!(a >= 0.0);
        assert_eq!(a, b, "sharpness must be deterministic for a fixed seed");
        // A trained minimum's loss is below an untrained model's loss (sanity
        // check that loss_of reads the parameters we pass in).
        let untrained = mlp(3, &[8], 2, &mut SeededRng::new(99));
        let untrained_loss = loss_of(model.as_ref(), &untrained.params_flat(), &data, 64);
        let trained_loss = loss_of(model.as_ref(), &good, &data, 64);
        assert!(trained_loss < untrained_loss);
    }

    #[test]
    fn empty_dataset_gives_zero_loss_surface() {
        let mut rng = SeededRng::new(7);
        let template = mlp(3, &[4], 2, &mut rng);
        let empty = Dataset::empty(&[3], 2);
        let s = loss_surface_2d(template.as_ref(), &template.params_flat(), &empty, 3, 0.1, 8, &mut rng);
        assert!(s.loss.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn even_resolution_is_rejected() {
        let mut rng = SeededRng::new(8);
        let template = mlp(3, &[4], 2, &mut rng);
        let data = toy_data(8);
        let _ = loss_surface_2d(template.as_ref(), &template.params_flat(), &data, 4, 0.1, 8, &mut rng);
    }
}
