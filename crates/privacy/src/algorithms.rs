//! Differentially-private and secure-aggregation FL algorithms.
//!
//! These are drop-in [`FederatedAlgorithm`] implementations, so the same
//! [`fedcross_flsim::Simulation`] that drives the paper's six methods can
//! sweep the privacy/utility trade-off (`ablation_privacy` in the benchmark
//! harness):
//!
//! * [`DpFedAvg`] — FedAvg with per-client delta clipping and Gaussian noise,
//!   in either the central or local placement,
//! * [`DpFedCross`] — FedCross (Algorithm 1) with each uploaded middleware
//!   delta clipped and noised before cross-aggregation, demonstrating the
//!   paper's Section IV-F1 claim that FedCross composes with FedAvg-style
//!   privacy mechanisms,
//! * [`SecureAggFedAvg`] — FedAvg over pairwise-masked uploads; the server
//!   only observes masked vectors yet recovers the exact average.

use crate::accountant::RdpAccountant;
use crate::mechanism::{privatize_aggregate, privatize_client_delta, DpConfig};
use crate::secure_agg::{aggregate_masked, PairwiseMasker};
use fedcross::aggregation::{cross_aggregate_all, global_model, global_model_into};
use fedcross::selection::{SelectionStrategy, SimilarityMeasure};
use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::engine::{FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_nn::params::{add_scaled, average, difference, ParamBlock};
use fedcross_tensor::SeededRng;

/// FedAvg with differentially-private client updates.
///
/// Each round: dispatch the global model, clip every client's parameter delta
/// to the configured norm, (locally noise it if the placement is local),
/// average the deltas, (centrally noise the average if the placement is
/// central) and apply the result to the global model. An [`RdpAccountant`] is
/// advanced every round so the spent (ε, δ) can be read off at any time.
///
/// Not resumable: the privacy noise stream (`noise_rng`) is consumed
/// incrementally across rounds and cannot be reconstructed from a round
/// index, so this type keeps the default
/// [`FederatedAlgorithm::restore_state`], which refuses rather than silently
/// replaying a different noise sequence.
pub struct DpFedAvg {
    global: ParamBlock,
    config: DpConfig,
    noise_rng: SeededRng,
    accountant: Option<RdpAccountant>,
}

impl DpFedAvg {
    /// Creates DP-FedAvg from the shared initial model. `noise_seed` seeds the
    /// privacy noise stream (kept separate from the simulation's client
    /// selection stream so noise does not perturb the sampling).
    pub fn new(init_params: Vec<f32>, config: DpConfig, noise_seed: u64) -> Self {
        Self {
            global: ParamBlock::from(init_params),
            config,
            noise_rng: SeededRng::new(noise_seed),
            accountant: None,
        }
    }

    /// The privacy configuration.
    pub fn config(&self) -> &DpConfig {
        &self.config
    }

    /// The (ε, δ)-DP guarantee spent so far, or `None` before the first round.
    pub fn epsilon(&self, delta: f64) -> Option<f64> {
        self.accountant.as_ref().map(|a| a.epsilon(delta))
    }

    /// The underlying accountant, once the first round has fixed the sampling
    /// rate.
    pub fn accountant(&self) -> Option<&RdpAccountant> {
        self.accountant.as_ref()
    }

    fn ensure_accountant(&mut self, clients_per_round: usize, total_clients: usize) {
        if self.accountant.is_none() {
            let q = clients_per_round as f32 / total_clients.max(1) as f32;
            self.accountant = Some(RdpAccountant::new(
                self.config.noise_multiplier,
                q.clamp(f32::MIN_POSITIVE, 1.0),
            ));
        }
    }
}

impl FederatedAlgorithm for DpFedAvg {
    fn name(&self) -> String {
        format!(
            "dp-fedavg(C={}, z={}, {})",
            self.config.clip_norm, self.config.noise_multiplier, self.config.placement
        )
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        self.ensure_accountant(ctx.clients_per_round(), ctx.num_clients());

        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .map(|&client| (client, self.global.clone()))
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        if updates.is_empty() {
            return RoundReport::default();
        }

        // Clip (and locally noise) every client's delta against the dispatched
        // global model.
        let deltas: Vec<Vec<f32>> = updates
            .iter()
            .map(|update| {
                let mut delta = difference(&update.params, &self.global);
                privatize_client_delta(&mut delta, &self.config, &mut self.noise_rng);
                delta
            })
            .collect();

        // Unweighted mean of bounded deltas (the DP-FedAvg estimator), then the
        // central perturbation if configured.
        let mut aggregate = average(&deltas);
        privatize_aggregate(
            &mut aggregate,
            &self.config,
            deltas.len(),
            &mut self.noise_rng,
        );
        add_scaled(self.global.make_mut(), &aggregate, 1.0);

        if let Some(accountant) = self.accountant.as_mut() {
            accountant.step();
        }
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }
}

/// Configuration of [`DpFedCross`]: the FedCross hyper-parameters plus the
/// privacy mechanism applied to every uploaded middleware delta.
#[derive(Debug, Clone, Copy)]
pub struct DpFedCrossConfig {
    /// Cross-aggregation weight α (Section III-B2).
    pub alpha: f32,
    /// Collaborative-model selection strategy.
    pub strategy: SelectionStrategy,
    /// Similarity measure for the similarity-based strategies.
    pub measure: SimilarityMeasure,
    /// Privacy mechanism applied to uploaded deltas.
    pub dp: DpConfig,
}

impl Default for DpFedCrossConfig {
    fn default() -> Self {
        Self {
            alpha: 0.9,
            strategy: SelectionStrategy::LowestSimilarity,
            measure: SimilarityMeasure::Cosine,
            dp: DpConfig::default(),
        }
    }
}

/// FedCross with differentially-private middleware uploads.
///
/// The training scheme is Algorithm 1 of the paper; the only change is that
/// every uploaded model is replaced by `dispatched + privatize(trained −
/// dispatched)` before collaborative-model selection and cross-aggregation,
/// exactly where DP-FedAvg privatises its client deltas.
pub struct DpFedCross {
    config: DpFedCrossConfig,
    middleware: Vec<ParamBlock>,
    noise_rng: SeededRng,
    accountant: Option<RdpAccountant>,
}

impl DpFedCross {
    /// Creates DP-FedCross with `k` middleware models initialised from the
    /// shared initial parameters.
    pub fn new(config: DpFedCrossConfig, init_params: Vec<f32>, k: usize, noise_seed: u64) -> Self {
        assert!(k >= 2, "FedCross needs at least two middleware models");
        assert!(
            (0.5..1.0).contains(&config.alpha),
            "alpha must lie in [0.5, 1.0)"
        );
        let shared = ParamBlock::from(init_params);
        Self {
            config,
            middleware: vec![shared; k],
            noise_rng: SeededRng::new(noise_seed),
            accountant: None,
        }
    }

    /// The current middleware models (for analysis and tests).
    pub fn middleware(&self) -> &[ParamBlock] {
        &self.middleware
    }

    /// The (ε, δ)-DP guarantee spent so far, or `None` before the first round.
    pub fn epsilon(&self, delta: f64) -> Option<f64> {
        self.accountant.as_ref().map(|a| a.epsilon(delta))
    }

    fn ensure_accountant(&mut self, clients_per_round: usize, total_clients: usize) {
        if self.accountant.is_none() {
            let q = clients_per_round as f32 / total_clients.max(1) as f32;
            self.accountant = Some(RdpAccountant::new(
                self.config.dp.noise_multiplier,
                q.clamp(f32::MIN_POSITIVE, 1.0),
            ));
        }
    }
}

impl FederatedAlgorithm for DpFedCross {
    fn name(&self) -> String {
        format!(
            "dp-fedcross(alpha={}, C={}, z={}, {})",
            self.config.alpha,
            self.config.dp.clip_norm,
            self.config.dp.noise_multiplier,
            self.config.dp.placement
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let k = self.middleware.len();
        assert_eq!(
            ctx.clients_per_round(),
            k,
            "DP-FedCross requires clients_per_round to equal the number of middleware models"
        );
        self.ensure_accountant(k, ctx.num_clients());

        let mut selected = ctx.select_clients();
        ctx.rng_mut().shuffle(&mut selected);
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .zip(self.middleware.iter())
            .map(|(&client, model)| (client, model.clone()))
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        if updates.is_empty() {
            return RoundReport::default();
        }

        // Privatise each uploaded middleware model against the version that
        // was dispatched to its client. Uploads are mapped back to their
        // middleware slot by client id so the scheme also tolerates client
        // dropout (missing slots skip the round).
        let mut returned_slots = Vec::with_capacity(updates.len());
        let mut uploaded = Vec::with_capacity(updates.len());
        for update in &updates {
            let slot = selected
                .iter()
                .position(|&client| client == update.client)
                .expect("every update comes from a selected client");
            let dispatched = &self.middleware[slot];
            let mut delta = difference(&update.params, dispatched);
            privatize_client_delta(&mut delta, &self.config.dp, &mut self.noise_rng);
            // Central placement: each middleware stream receives noise of
            // std z·C/K, so the released global model (the average of the
            // K middleware models) carries the same perturbation magnitude
            // as central DP-FedAvg over K clients.
            privatize_aggregate(&mut delta, &self.config.dp, k, &mut self.noise_rng);
            // Reconstruct dispatched + delta in the delta buffer itself
            // (addition commutes), avoiding a full-model clone per upload.
            add_scaled(&mut delta, dispatched.as_slice(), 1.0);
            returned_slots.push(slot);
            uploaded.push(delta);
        }

        if uploaded.len() >= 2 {
            let collaborators =
                self.config
                    .strategy
                    .select_all_with(round, &uploaded, self.config.measure);
            let fused = cross_aggregate_all(&uploaded, &collaborators, self.config.alpha);
            for (&slot, params) in returned_slots.iter().zip(fused) {
                self.middleware[slot] = ParamBlock::from(params);
            }
        } else if let (Some(&slot), Some(params)) =
            (returned_slots.first(), uploaded.into_iter().next())
        {
            self.middleware[slot] = ParamBlock::from(params);
        }

        if let Some(accountant) = self.accountant.as_mut() {
            accountant.step();
        }
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        global_model(&self.middleware)
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free `GlobalModelGen` for the per-round evaluation path
        // (the kernel zero-fills `out` itself).
        out.resize(self.middleware[0].len(), 0.0);
        global_model_into(out, &self.middleware);
    }
}

/// FedAvg over pairwise-masked uploads (secure-aggregation simulation).
///
/// Clients upload `delta + mask` where the pairwise masks cancel in the sum;
/// the server averages the masked uploads and obtains exactly the plain
/// FedAvg average without ever observing an individual client's delta.
///
/// Resumable: the per-round [`PairwiseMasker`] is derived from
/// `mask_seed + round` (an absolute round index, never a consumed stream),
/// so the global model is the entire cross-round state.
pub struct SecureAggFedAvg {
    global: ParamBlock,
    mask_scale: f32,
    mask_seed: u64,
}

impl SecureAggFedAvg {
    /// Creates the secure-aggregation FedAvg variant. `mask_scale` sets the
    /// magnitude of the pairwise masks relative to the parameters.
    pub fn new(init_params: Vec<f32>, mask_scale: f32, mask_seed: u64) -> Self {
        Self {
            global: ParamBlock::from(init_params),
            mask_scale,
            mask_seed,
        }
    }
}

impl FederatedAlgorithm for SecureAggFedAvg {
    fn name(&self) -> String {
        // mask_seed is part of the name: the per-round masks cancel only in
        // exact sequential summation, so a resume under a different mask
        // seed would differ in the low bits — the name check rejects it.
        format!(
            "secureagg-fedavg(scale={}, seed={})",
            self.mask_scale, self.mask_seed
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .map(|&client| (client, self.global.clone()))
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        if updates.is_empty() {
            return RoundReport::default();
        }

        // Client side: compute deltas and mask them pairwise.
        let deltas: Vec<Vec<f32>> = updates
            .iter()
            .map(|update| difference(&update.params, &self.global))
            .collect();
        let masker = PairwiseMasker::new(self.mask_seed.wrapping_add(round as u64), self.mask_scale);
        let masked = masker.mask_all(&deltas);

        // Server side: only the masked uploads are visible; their sum is exact.
        let sum = aggregate_masked(&masked);
        let scale = 1.0 / masked.len() as f32;
        add_scaled(self.global.make_mut(), &sum, scale);
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        Ok(AlgorithmState::single_model(self.global.clone()))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        self.global = state.expect_single_model(self.global.len())?.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::NoisePlacement;
    use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
    use fedcross_data::Heterogeneity;
    use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
    use fedcross_nn::models::{cnn, CnnConfig};
    use fedcross_nn::Model;

    fn tiny_setup(seed: u64, clients: usize) -> (FederatedDataset, Box<dyn Model>) {
        let mut rng = SeededRng::new(seed);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: clients,
                samples_per_client: 25,
                test_samples: 60,
                ..Default::default()
            },
            Heterogeneity::Iid,
            &mut rng,
        );
        let template = cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (4, 8),
                fc_hidden: 16,
                kernel: 3,
            },
            &mut rng,
        );
        (data, template)
    }

    fn quick_config(rounds: usize, k: usize) -> SimulationConfig {
        SimulationConfig {
            rounds,
            clients_per_round: k,
            eval_every: rounds.max(1),
            eval_batch_size: 64,
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 10,
                lr: 0.1,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            seed: 7,
        }
    }

    #[test]
    fn dp_fedavg_learns_with_modest_noise() {
        let (data, template) = tiny_setup(0, 6);
        let init_acc = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &template.params_flat(),
            data.test_set(),
            64,
        )
        .accuracy;
        let config = DpConfig {
            clip_norm: 5.0,
            noise_multiplier: 0.1,
            placement: NoisePlacement::Central,
        };
        let mut algo = DpFedAvg::new(template.params_flat(), config, 11);
        let sim = Simulation::new(quick_config(10, 3), &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1,
            "DP-FedAvg should still learn: {} vs init {}",
            result.history.best_accuracy(),
            init_acc
        );
        let epsilon = algo.epsilon(1e-5).expect("accountant initialised");
        assert!(epsilon.is_finite() && epsilon > 0.0);
        assert_eq!(algo.accountant().unwrap().rounds(), 10);
    }

    #[test]
    fn stronger_noise_costs_more_accuracy_and_less_epsilon() {
        let (data, template) = tiny_setup(1, 6);
        let run = |noise_multiplier: f32| {
            let config = DpConfig {
                clip_norm: 2.0,
                noise_multiplier,
                placement: NoisePlacement::Central,
            };
            let mut algo = DpFedAvg::new(template.params_flat(), config, 13);
            let sim = Simulation::new(quick_config(8, 3), &data, template.clone_model());
            let result = sim.run(&mut algo);
            (result.history.best_accuracy(), algo.epsilon(1e-5).unwrap())
        };
        let (acc_low_noise, eps_low_noise) = run(0.1);
        let (acc_high_noise, eps_high_noise) = run(8.0);
        assert!(
            acc_low_noise >= acc_high_noise,
            "more noise should not improve accuracy ({acc_low_noise} vs {acc_high_noise})"
        );
        assert!(
            eps_high_noise < eps_low_noise,
            "more noise must yield a smaller epsilon"
        );
    }

    #[test]
    fn local_placement_runs_and_reports_epsilon() {
        let (data, template) = tiny_setup(2, 6);
        let config = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.5,
            placement: NoisePlacement::Local,
        };
        let mut algo = DpFedAvg::new(template.params_flat(), config, 17);
        let sim = Simulation::new(quick_config(4, 3), &data, template);
        let result = sim.run(&mut algo);
        assert!(result.history.final_accuracy() >= 0.0);
        assert!(algo.global_params().iter().all(|p| p.is_finite()));
        assert!(algo.epsilon(1e-5).unwrap() > 0.0);
        assert!(algo.name().contains("local"));
    }

    #[test]
    fn dp_fedcross_learns_and_tracks_the_budget() {
        let (data, template) = tiny_setup(3, 8);
        let init_acc = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &template.params_flat(),
            data.test_set(),
            64,
        )
        .accuracy;
        let config = DpFedCrossConfig {
            alpha: 0.9,
            dp: DpConfig {
                clip_norm: 5.0,
                noise_multiplier: 0.05,
                placement: NoisePlacement::Central,
            },
            ..Default::default()
        };
        let mut algo = DpFedCross::new(config, template.params_flat(), 4, 19);
        let sim = Simulation::new(quick_config(10, 4), &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1,
            "DP-FedCross should still learn: {} vs init {}",
            result.history.best_accuracy(),
            init_acc
        );
        assert_eq!(algo.middleware().len(), 4);
        assert!(algo.epsilon(1e-5).unwrap() > 0.0);
    }

    #[test]
    #[should_panic]
    fn dp_fedcross_rejects_invalid_alpha() {
        let config = DpFedCrossConfig {
            alpha: 0.2,
            ..Default::default()
        };
        let _ = DpFedCross::new(config, vec![0.0; 4], 3, 0);
    }

    #[test]
    fn secure_aggregation_matches_plain_fedavg() {
        let (data, template) = tiny_setup(4, 6);
        // Plain FedAvg reference implemented inline over the same engine.
        struct PlainFedAvg {
            global: Vec<f32>,
        }
        impl FederatedAlgorithm for PlainFedAvg {
            fn name(&self) -> String {
                "plain".into()
            }
            fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
                let selected = ctx.select_clients();
                let jobs: Vec<(usize, Vec<f32>)> =
                    selected.iter().map(|&c| (c, self.global.clone())).collect();
                let updates = ctx.local_train_batch(&jobs);
                let params: Vec<&[f32]> =
                    updates.iter().map(|u| u.params.as_slice()).collect();
                self.global = average(&params);
                RoundReport::from_updates(&updates)
            }
            fn global_params(&self) -> Vec<f32> {
                self.global.clone()
            }
        }

        let config = quick_config(3, 3);
        let mut plain = PlainFedAvg {
            global: template.params_flat(),
        };
        let plain_result =
            Simulation::new(config, &data, template.clone_model()).run(&mut plain);

        let mut masked = SecureAggFedAvg::new(template.params_flat(), 50.0, 23);
        let masked_result = Simulation::new(config, &data, template).run(&mut masked);

        // Same seed, same schedule: the masked pipeline reproduces the plain
        // average up to floating-point cancellation error.
        let max_diff = plain
            .global_params()
            .iter()
            .zip(masked.global_params())
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max)
            ;
        assert!(max_diff < 1e-2, "masked and plain FedAvg diverged by {max_diff}");
        assert!(
            (plain_result.history.final_accuracy() - masked_result.history.final_accuracy()).abs()
                < 0.05
        );
    }
}
