//! Offline shim for `proptest`.
//!
//! Supports the `proptest!` macro form this workspace uses — an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
//! `#[test] fn name(arg in strategy, ...) { body }` items — plus range
//! strategies over `f32`/`f64`/integers, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce across runs. Unlike real proptest there
//! is no shrinking: the failing case's inputs are reported as-is via the
//! panic message.

use std::ops::Range;

/// Per-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case-generation RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from a test identifier.
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            state ^= byte as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_strategy_int!(usize, u64, u32, u8, i64, i32);

macro_rules! impl_strategy_int_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_strategy_int_inclusive!(usize, u64, u32, u8, i64, i32);

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.len.clone(), rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest user imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Soft assertion: fails the current case with a message instead of panicking
/// directly (the `proptest!` wrapper converts it into a panic with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Declares property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of `proptest!` items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(message) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {message}\n  inputs: {inputs}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
        prop::collection::vec(-1.0f32..1.0, 1..max_len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f32..5.0, n in 1usize..10, seed in 0u64..100) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(seed < 100);
        }

        #[test]
        fn vec_strategy_respects_length_bounds(data in small_vec(16)) {
            prop_assert!(!data.is_empty() && data.len() < 16);
            prop_assert!(data.iter().all(|v| (-1.0..1.0).contains(v)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) { prop_assert!(x > 100); }
        }
        always_fails();
    }
}
