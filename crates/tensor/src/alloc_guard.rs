//! Scoped no-alloc assertion — the runtime half of the allocation-discipline
//! plane (the static half is `fedcross-lint`'s rule A001).
//!
//! A test binary installs a counting global allocator that forwards every
//! allocation's size to [`note_alloc`]. Production code brackets its
//! steady-state regions with [`AllocGuard::enter`]; while a guard is live on
//! the current thread, any single allocation of at least the guard's
//! threshold is recorded as a violation and reported by panic when the
//! guard drops (or returned by [`AllocGuard::finish`] for tests that want
//! to assert on it).
//!
//! Everything here compiles to a no-op unless the `sanitize-alloc` feature
//! is enabled: [`note_alloc`] is an empty `#[inline]` fn and the guard is a
//! zero-sized token, so hot paths carry no cost in normal builds.
//!
//! Design constraints, all driven by running *inside* the global allocator
//! callback:
//!
//! * no `RefCell`/locks in the thread-local — the allocator can re-enter
//!   (a panic payload allocates, a nested guard's drop runs during
//!   unwinding), so state is a fixed-size array of `Cell`s;
//! * [`note_alloc`] itself never allocates and never panics — the violation
//!   is *recorded* at allocation time and *raised* later, from guard
//!   drop/finish, after the scope has been popped (a panic inside
//!   `GlobalAlloc::alloc` would abort the process);
//! * guards nest (round guard outside, eval guard inside): a violation is
//!   charged to every live scope it exceeds the threshold of.

#![allow(dead_code)]

#[cfg(feature = "sanitize-alloc")]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Maximum nesting depth of live guards per thread. Exceeding it aborts
    /// the scope push (the extra guard becomes inert) rather than losing
    /// state — 8 is far above anything the engine nests.
    pub const MAX_DEPTH: usize = 8;

    #[derive(Clone, Copy)]
    pub struct Scope {
        pub region: &'static str,
        pub threshold: usize,
        /// Allocations seen while this scope was live (any size).
        pub allocations: usize,
        /// Bytes of the largest single allocation ≥ threshold, 0 if none.
        pub worst: usize,
        /// Number of allocations ≥ threshold.
        pub violations: usize,
    }

    struct Stack {
        depth: Cell<usize>,
        scopes: [Cell<Scope>; MAX_DEPTH],
    }

    const EMPTY: Scope = Scope {
        region: "",
        threshold: 0,
        allocations: 0,
        worst: 0,
        violations: 0,
    };

    thread_local! {
        static STACK: Stack = const {
            Stack { depth: Cell::new(0), scopes: [const { Cell::new(EMPTY) }; MAX_DEPTH] }
        };
    }

    /// Total guarded regions entered, process-wide — lets integration tests
    /// assert the guards actually ran (non-vacuity).
    static REGIONS_ENTERED: AtomicUsize = AtomicUsize::new(0);

    /// Total guarded regions entered so far, process-wide.
    pub fn regions_entered() -> usize {
        REGIONS_ENTERED.load(Ordering::Relaxed)
    }

    /// Records one allocation of `size` bytes against every live scope on
    /// this thread. Called from inside `GlobalAlloc::alloc` — must not
    /// allocate, panic, or re-enter the thread-local mutably twice.
    #[inline]
    pub fn note_alloc(size: usize) {
        // Accessing a `const`-initialised thread-local never allocates.
        let _ = STACK.try_with(|stack| {
            let depth = stack.depth.get();
            for slot in &stack.scopes[..depth] {
                let mut s = slot.get();
                s.allocations += 1;
                if size >= s.threshold {
                    s.violations += 1;
                    s.worst = s.worst.max(size);
                }
                slot.set(s);
            }
        });
    }

    /// What a scope saw while it was live.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct GuardStats {
        /// Region name the guard was opened with.
        pub region: &'static str,
        /// Allocations seen while the scope was live.
        pub allocations: usize,
        /// Allocations at or above the threshold.
        pub violations: usize,
        /// Largest violating allocation in bytes.
        pub worst: usize,
    }

    /// RAII no-alloc scope. See the module docs.
    pub struct AllocGuard {
        /// Index of this guard's scope, or `MAX_DEPTH` if the stack was
        /// full and the guard is inert.
        slot: usize,
        defused: bool,
    }

    impl AllocGuard {
        /// Opens a guarded region: until drop/finish, any single allocation
        /// of `threshold_bytes` or more on this thread is a violation.
        pub fn enter(region: &'static str, threshold_bytes: usize) -> AllocGuard {
            REGIONS_ENTERED.fetch_add(1, Ordering::Relaxed);
            let slot = STACK.with(|stack| {
                let depth = stack.depth.get();
                if depth >= MAX_DEPTH {
                    return MAX_DEPTH;
                }
                stack.scopes[depth].set(Scope {
                    region,
                    threshold: threshold_bytes,
                    allocations: 0,
                    worst: 0,
                    violations: 0,
                });
                stack.depth.set(depth + 1);
                depth
            });
            AllocGuard { slot, defused: false }
        }

        /// Closes the scope and returns its stats instead of panicking —
        /// the assertion-by-hand form for tests.
        pub fn finish(mut self) -> GuardStats {
            self.defused = true;
            self.pop().unwrap_or(GuardStats {
                region: "",
                allocations: 0,
                violations: 0,
                worst: 0,
            })
        }

        fn pop(&mut self) -> Option<GuardStats> {
            if self.slot >= MAX_DEPTH {
                return None;
            }
            STACK.with(|stack| {
                // Guards are strictly LIFO (RAII), so this guard's scope is
                // the top of the stack.
                let depth = stack.depth.get();
                debug_assert_eq!(depth, self.slot + 1, "alloc guards must drop LIFO");
                stack.depth.set(self.slot);
                let s = stack.scopes[self.slot].get();
                Some(GuardStats {
                    region: s.region,
                    allocations: s.allocations,
                    violations: s.violations,
                    worst: s.worst,
                })
            })
        }
    }

    impl Drop for AllocGuard {
        fn drop(&mut self) {
            if self.defused {
                return; // finish() already popped the scope
            }
            let stats = self.pop();
            if let Some(s) = stats {
                // The scope is already popped, so the panic's own
                // allocations are not double-counted; never panic during an
                // unwind already in flight.
                if s.violations > 0 && !std::thread::panicking() {
                    // panic: the sanitizer's whole job — a tripped guard must fail the test
                    panic!(
                        "alloc_guard: {} allocation(s) of >= threshold inside `{}` \
                         (largest {} bytes) — the steady-state region must not allocate",
                        s.violations, s.region, s.worst
                    );
                }
            }
        }
    }
}

#[cfg(not(feature = "sanitize-alloc"))]
mod imp {
    /// No-op hook when the sanitizer is compiled out.
    #[inline(always)]
    pub fn note_alloc(_size: usize) {}

    /// Always zero when the sanitizer is compiled out.
    pub fn regions_entered() -> usize {
        0
    }

    /// What a scope saw — always empty when the sanitizer is compiled out.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct GuardStats {
        /// Region name the guard was opened with.
        pub region: &'static str,
        /// Allocations seen while the scope was live.
        pub allocations: usize,
        /// Allocations at or above the threshold.
        pub violations: usize,
        /// Largest violating allocation in bytes.
        pub worst: usize,
    }

    /// Zero-sized no-op guard when the sanitizer is compiled out.
    pub struct AllocGuard;

    // An explicit (empty) Drop keeps the guard's end-of-scope semantics
    // identical across both configurations — `drop(guard)` in the engine
    // is meaningful either way.
    impl Drop for AllocGuard {
        fn drop(&mut self) {}
    }

    impl AllocGuard {
        /// Opens a guarded region — a no-op in this configuration.
        #[inline(always)]
        pub fn enter(_region: &'static str, _threshold_bytes: usize) -> AllocGuard {
            AllocGuard
        }

        /// Closes the scope — always returns empty stats.
        #[inline(always)]
        pub fn finish(self) -> GuardStats {
            GuardStats {
                region: "",
                allocations: 0,
                violations: 0,
                worst: 0,
            }
        }
    }
}

pub use imp::{note_alloc, regions_entered, AllocGuard, GuardStats};

#[cfg(all(test, feature = "sanitize-alloc"))]
mod tests {
    use super::*;

    // These tests drive note_alloc directly (no global allocator needed),
    // so thresholds and nesting are exercised deterministically. The
    // end-to-end path with a real counting allocator lives in
    // tests/tests/sanitize_alloc.rs.

    #[test]
    fn threshold_edge_is_inclusive() {
        let g = AllocGuard::enter("edge", 64);
        note_alloc(63);
        let s = g.finish();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.violations, 0, "below threshold is allowed");
        let g = AllocGuard::enter("edge", 64);
        note_alloc(64);
        let s = g.finish();
        assert_eq!(s.violations, 1, "exactly threshold violates");
        assert_eq!(s.worst, 64);
    }

    #[test]
    fn nested_scopes_charge_independently() {
        let outer = AllocGuard::enter("outer", 1024);
        note_alloc(512); // outer only: under threshold
        let inner = AllocGuard::enter("inner", 256);
        note_alloc(512); // both live: violates inner, not outer
        let si = inner.finish();
        note_alloc(2048); // outer only again: violates outer
        let so = outer.finish();
        assert_eq!(si.allocations, 1);
        assert_eq!(si.violations, 1);
        assert_eq!(so.allocations, 3);
        assert_eq!(so.violations, 1);
        assert_eq!(so.worst, 2048);
    }

    #[test]
    fn no_live_guard_means_nothing_recorded() {
        note_alloc(usize::MAX); // must be a no-op, not a crash
        let g = AllocGuard::enter("after", 1);
        let s = g.finish();
        assert_eq!(s.allocations, 0);
    }

    #[test]
    #[should_panic(expected = "alloc_guard")]
    fn drop_panics_on_violation() {
        let _g = AllocGuard::enter("hot", 16);
        note_alloc(32);
    }

    #[test]
    fn regions_entered_counts_up() {
        let before = regions_entered();
        AllocGuard::enter("count", usize::MAX).finish();
        assert!(regions_entered() > before);
    }
}
