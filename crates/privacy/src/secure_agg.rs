//! Pairwise-masking secure aggregation (simulation).
//!
//! In secure aggregation (Bonawitz et al. 2017) every pair of participating
//! clients `(i, j)` derives a shared mask from a common seed; client `i` adds
//! the mask, client `j` subtracts it, so the server — which only ever sees the
//! masked uploads — still recovers the exact sum. The cryptographic key
//! agreement is out of scope here; what this module reproduces is the data
//! flow: per-client masked vectors whose individual values are statistically
//! useless while their sum is exact, so the FedCross/FedAvg pipelines can be
//! run end-to-end on masked uploads.

use fedcross_tensor::SeededRng;

/// Generates cancelling pairwise masks for one round of secure aggregation.
#[derive(Debug, Clone)]
pub struct PairwiseMasker {
    round_seed: u64,
    mask_scale: f32,
}

impl PairwiseMasker {
    /// Creates a masker for one round. `round_seed` plays the role of the
    /// round's shared randomness; `mask_scale` controls the magnitude of the
    /// masks (large relative to the parameters, so individual uploads reveal
    /// essentially nothing).
    pub fn new(round_seed: u64, mask_scale: f32) -> Self {
        assert!(mask_scale > 0.0, "mask scale must be positive");
        Self {
            round_seed,
            mask_scale,
        }
    }

    /// The pairwise mask shared by clients `i` and `j` (order-independent).
    fn pair_mask(&self, i: usize, j: usize, dim: usize) -> Vec<f32> {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let stream = (lo as u64) << 32 | hi as u64;
        let mut rng = SeededRng::new(self.round_seed).fork(stream); // fork: construction-seed
        (0..dim)
            .map(|_| rng.normal_with(0.0, self.mask_scale))
            // alloc: cold — optional privacy plane, outside the pinned zero-alloc configuration
            .collect()
    }

    /// Masks `upload` for the client at position `position` among
    /// `participants` total clients this round.
    ///
    /// The mask added by position `p` cancels against the masks of every other
    /// position, so the element-wise sum over all masked uploads equals the sum
    /// of the raw uploads.
    pub fn mask(&self, upload: &[f32], position: usize, participants: usize) -> Vec<f32> {
        assert!(position < participants, "position must index a participant");
        // alloc: cold — optional privacy plane, outside the pinned zero-alloc configuration
        let mut masked = upload.to_vec();
        for other in 0..participants {
            if other == position {
                continue;
            }
            let mask = self.pair_mask(position, other, upload.len());
            // The lower-indexed participant adds, the higher-indexed subtracts.
            let sign = if position < other { 1.0 } else { -1.0 };
            for (m, v) in masked.iter_mut().zip(&mask) {
                *m += sign * v;
            }
        }
        masked
    }

    /// Masks a whole round of uploads (one vector per participant).
    pub fn mask_all(&self, uploads: &[Vec<f32>]) -> Vec<Vec<f32>> {
        uploads
            .iter()
            .enumerate()
            .map(|(position, upload)| self.mask(upload, position, uploads.len()))
            // alloc: cold — optional privacy plane, outside the pinned zero-alloc configuration
            .collect()
    }
}

/// Element-wise sum of masked uploads — with cancelling masks this equals the
/// sum of the raw uploads, which is all the server needs for averaging.
pub fn aggregate_masked(masked: &[Vec<f32>]) -> Vec<f32> {
    assert!(!masked.is_empty(), "cannot aggregate an empty round");
    let dim = masked[0].len();
    // alloc: cold — optional privacy plane, outside the pinned zero-alloc configuration
    let mut sum = vec![0f32; dim];
    for upload in masked {
        assert_eq!(upload.len(), dim, "all uploads must have identical length");
        for (s, &v) in sum.iter_mut().zip(upload) {
            *s += v;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_nn::params::l2_norm;

    fn raw_uploads(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..dim).map(|d| (i * dim + d) as f32 * 0.01 - 0.3).collect())
            .collect()
    }

    #[test]
    fn masks_cancel_in_the_sum() {
        let uploads = raw_uploads(5, 40);
        let masker = PairwiseMasker::new(17, 25.0);
        let masked = masker.mask_all(&uploads);
        let raw_sum = aggregate_masked(&uploads);
        let masked_sum = aggregate_masked(&masked);
        for (a, b) in raw_sum.iter().zip(&masked_sum) {
            assert!((a - b).abs() < 1e-3, "sum must be preserved ({a} vs {b})");
        }
    }

    #[test]
    fn individual_uploads_are_hidden() {
        let uploads = raw_uploads(4, 64);
        let masker = PairwiseMasker::new(3, 25.0);
        let masked = masker.mask_all(&uploads);
        for (raw, hidden) in uploads.iter().zip(&masked) {
            let distortion = fedcross_nn::params::euclidean(raw, hidden);
            assert!(
                distortion > 10.0 * l2_norm(raw).max(1e-3),
                "masked upload is too close to the raw upload (distortion {distortion})"
            );
        }
    }

    #[test]
    fn two_participants_round_trips_exactly() {
        let uploads = vec![vec![1.0, -2.0, 3.0], vec![0.5, 0.5, 0.5]];
        let masker = PairwiseMasker::new(99, 5.0);
        let masked = masker.mask_all(&uploads);
        let sum = aggregate_masked(&masked);
        assert!((sum[0] - 1.5).abs() < 1e-4);
        assert!((sum[1] + 1.5).abs() < 1e-4);
        assert!((sum[2] - 3.5).abs() < 1e-4);
    }

    #[test]
    fn single_participant_has_no_masks() {
        let uploads = vec![vec![1.0, 2.0]];
        let masker = PairwiseMasker::new(1, 10.0);
        let masked = masker.mask_all(&uploads);
        assert_eq!(masked[0], uploads[0]);
    }

    #[test]
    fn masks_depend_on_the_round_seed() {
        let upload = vec![0.0f32; 16];
        let a = PairwiseMasker::new(1, 10.0).mask(&upload, 0, 3);
        let b = PairwiseMasker::new(2, 10.0).mask(&upload, 0, 3);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn position_out_of_range_is_rejected() {
        let masker = PairwiseMasker::new(0, 1.0);
        let _ = masker.mask(&[0.0], 2, 2);
    }

    #[test]
    #[should_panic]
    fn aggregating_an_empty_round_is_rejected() {
        let _ = aggregate_masked(&[]);
    }
}
