//! The FedCross federated-learning algorithm (Algorithm 1 of the paper).

use crate::acceleration::Acceleration;
use crate::aggregation::{
    cross_aggregate_into, cross_aggregate_propellers_into, global_model, global_model_into,
};
use crate::selection::{mean_pairwise_similarity, SelectionStrategy, SimilarityMeasure};
use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::engine::{canonicalize_updates, FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_nn::params::ParamBlock;
use rayon::prelude::*;

/// Minimum total scalar count (`K·d`) before the fusion step forks to rayon.
const PAR_THRESHOLD_SCALARS: usize = 1 << 16;

/// FedCross hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct FedCrossConfig {
    /// Cross-aggregation weight α ∈ [0.5, 1). The paper recommends 0.99.
    pub alpha: f32,
    /// Collaborative-model selection strategy; the paper recommends
    /// lowest-similarity (or in-order).
    pub strategy: SelectionStrategy,
    /// Model-similarity measure used by the similarity strategies (the paper
    /// uses cosine; Euclidean is its future-work alternative).
    pub measure: SimilarityMeasure,
    /// Optional training acceleration (Section III-D).
    pub acceleration: Acceleration,
}

impl Default for FedCrossConfig {
    fn default() -> Self {
        Self {
            alpha: 0.99,
            strategy: SelectionStrategy::LowestSimilarity,
            measure: SimilarityMeasure::Cosine,
            acceleration: Acceleration::None,
        }
    }
}

/// The FedCross algorithm: `K` middleware models trained in a multi-to-multi
/// scheme and fused by cross-aggregation each round.
///
/// The number of middleware models must equal the number of clients selected
/// per round (`K` in the paper); each selected client trains exactly one
/// middleware model per round.
///
/// The middleware list lives on the shared copy-on-write parameter plane
/// ([`ParamBlock`]): dispatching the `K` models to clients is `K` reference
/// bumps, and cross-aggregation fuses each round's uploads **into** the
/// retired middleware buffers, so a steady-state round performs no full-model
/// clones at all.
pub struct FedCross {
    config: FedCrossConfig,
    middleware: Vec<ParamBlock>,
}

impl FedCross {
    /// Creates FedCross with `k` middleware models, all initialised from the
    /// same parameter vector (the same initialisation every baseline uses, so
    /// comparisons are fair).
    ///
    /// The `k` models initially share one buffer (copy-on-write), so
    /// construction is `O(d)`, not `O(K·d)`.
    pub fn new(config: FedCrossConfig, init_params: Vec<f32>, k: usize) -> Self {
        assert!(k >= 2, "FedCross needs at least two middleware models");
        assert!(
            (0.5..1.0).contains(&config.alpha),
            "alpha must lie in [0.5, 1.0)"
        );
        let shared = ParamBlock::from(init_params);
        let middleware = vec![shared; k];
        Self { config, middleware }
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &FedCrossConfig {
        &self.config
    }

    /// Number of middleware models `K`.
    pub fn num_middleware(&self) -> usize {
        self.middleware.len()
    }

    /// The current middleware model list (for analysis and tests).
    pub fn middleware(&self) -> &[ParamBlock] {
        &self.middleware
    }

    /// Mean pairwise cosine similarity of the middleware models — the paper's
    /// argument is that this converges towards 1 as training proceeds.
    pub fn middleware_similarity(&self) -> f32 {
        mean_pairwise_similarity(&self.middleware)
    }

    /// Selects `count` distinct propeller indices for model `i` among `k`
    /// uploaded models using the in-order schedule (Section III-D).
    fn propeller_indices(&self, round: usize, i: usize, count: usize, k: usize) -> Vec<usize> {
        let base_offset = round % (k - 1) + 1;
        // alloc: bounded — cohort-sized pick list, once per round
        let mut picks = Vec::with_capacity(count);
        let mut step = 0usize;
        while picks.len() < count.min(k - 1) {
            let j = (i + base_offset + step) % k;
            step += 1;
            if j != i && !picks.contains(&j) {
                picks.push(j);
            }
        }
        picks
    }
}

impl FederatedAlgorithm for FedCross {
    fn name(&self) -> String {
        let accel = match self.config.acceleration {
            // alloc: cold — identity string for reporting, built outside the per-round loop
            Acceleration::None => String::new(),
            // alloc: cold — identity string for reporting, built outside the per-round loop
            other => format!(", {}", other.label()),
        };
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!(
            "fedcross(alpha={}, {}{})",
            self.config.alpha, self.config.strategy, accel
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let k = self.middleware.len();
        let selected_k = ctx.clients_per_round();
        assert_eq!(
            selected_k, k,
            "FedCross requires clients_per_round ({selected_k}) to equal the number of middleware models ({k})"
        );

        // Algorithm 1 line 4–5: random selection, then shuffle so every model
        // gets an equal chance of meeting every client.
        let mut selected = ctx.select_clients();
        ctx.rng_mut().shuffle(&mut selected);

        // Step 1–3: dispatch middleware model i to client Lc[i], train,
        // upload. Each job borrows its middleware block (reference bump); the
        // only O(d) copy on the dispatch path is the client loading the
        // parameters into its own model instance.
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .zip(self.middleware.iter())
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|(&client, model)| (client, model.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let mut updates = ctx.local_train_batch(&jobs);
        drop(jobs); // release the dispatch references before fusing in place
        // Loss reporting, partner selection and slot mapping all consume the
        // uploads positionally, so put them in dispatch order first — a
        // bitwise no-op on an unshuffled round, and what makes FedCross
        // invariant to upload arrival order under the sanitizer's shuffle.
        canonicalize_updates(&mut updates, &selected);
        let report = RoundReport::from_updates(&updates);

        // Map every upload back to the middleware slot whose model it trained,
        // taking ownership of the uploaded parameters (no clone). Under client
        // dropout some slots receive no upload this round; their middleware
        // models simply skip the round (they are re-dispatched next round),
        // which is the natural partial-participation behaviour of the
        // multi-to-multi scheme.
        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        let mut returned_slots = Vec::with_capacity(updates.len());
        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        let mut uploaded: Vec<ParamBlock> = Vec::with_capacity(updates.len());
        for update in updates {
            let slot = selected
                .iter()
                .position(|&client| client == update.client)
                .expect("every update comes from a selected client");
            returned_slots.push(slot);
            uploaded.push(update.params);
        }

        // Step 4: multi-model cross-aggregation over the uploads that arrived,
        // fused directly into the retired middleware buffers (double-buffer
        // swap between last round's middleware and this round's uploads).
        let alpha = self.config.acceleration.alpha_at(round, self.config.alpha);
        let propellers = self.config.acceleration.propellers_at(round);
        let returned = uploaded.len();
        if returned >= 2 {
            // Per-upload collaborator set, computed before borrowing the
            // middleware list mutably.
            let partners: Vec<Vec<usize>> = if propellers <= 1 {
                self.config
                    .strategy
                    .select_all_with(round, &uploaded, self.config.measure)
                    .into_iter()
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    .map(|co| vec![co])
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    .collect()
            } else {
                (0..returned)
                    .map(|i| self.propeller_indices(round, i, propellers, returned))
                    // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                    .collect()
            };

            // Gather the output slot for every upload. The retired middleware
            // blocks are unique again now that the dispatch jobs are dropped,
            // so `make_mut` reuses their buffers without copying.
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            let mut upload_of_slot = vec![usize::MAX; k];
            for (upload, &slot) in returned_slots.iter().enumerate() {
                upload_of_slot[slot] = upload;
            }
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            let mut targets: Vec<(usize, &mut ParamBlock)> = Vec::with_capacity(returned);
            for (slot, block) in self.middleware.iter_mut().enumerate() {
                let upload = upload_of_slot[slot];
                if upload != usize::MAX {
                    targets.push((upload, block));
                }
            }

            let dim = uploaded[0].len();
            let fuse = |(upload, block): (usize, &mut ParamBlock)| {
                let out = block.make_mut();
                let partner_ids = &partners[upload];
                if partner_ids.len() == 1 {
                    cross_aggregate_into(
                        out,
                        uploaded[upload].as_slice(),
                        uploaded[partner_ids[0]].as_slice(),
                        alpha,
                    );
                } else {
                    let refs: Vec<&[f32]> =
                        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
                        partner_ids.iter().map(|&j| uploaded[j].as_slice()).collect();
                    cross_aggregate_propellers_into(
                        out,
                        uploaded[upload].as_slice(),
                        &refs,
                        alpha,
                    );
                }
            };
            if returned * dim >= PAR_THRESHOLD_SCALARS {
                targets.into_par_iter().for_each(fuse);
            } else {
                targets.into_iter().for_each(fuse);
            }
        } else if returned == 1 {
            // A lone survivor has no collaborative model; keep its training.
            // Copy into the retired middleware buffer (unique again now that
            // the dispatch jobs are dropped) rather than adopting the upload
            // block: the upload shares its buffer with the client worker's
            // reusable slot, and retaining it would force that worker to
            // re-allocate its upload next round.
            let out = self.middleware[returned_slots[0]].make_mut();
            out.copy_from_slice(uploaded[0].as_slice());
        }

        report
    }

    fn global_params(&self) -> Vec<f32> {
        global_model(&self.middleware)
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free `GlobalModelGen` for the per-round evaluation path:
        // reuse the caller's buffer (the simulation keeps one for the whole
        // run). Bitwise identical to `global_params` — `global_model_into`
        // is the kernel backing both, and it zero-fills `out` itself, so a
        // plain length adjustment suffices here.
        out.resize(self.middleware[0].len(), 0.0);
        global_model_into(out, &self.middleware);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        // The middleware list in slot order *is* the training state (the
        // global model is derived from it on demand). Snapshotting stays on
        // the copy-on-write plane: K reference bumps, no O(K·d) clone storm.
        Ok(AlgorithmState::multi_model(self.middleware.clone()))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let k = self.middleware.len();
        let dim = self.middleware[0].len();
        let models = state.expect_models(k, dim)?;
        // Reference bumps again; the first post-restore round's fusion pays
        // one copy-on-write duplication per block, exactly like any server
        // that retains a reader of its middleware.
        self.middleware = models.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
    use fedcross_data::Heterogeneity;
    use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
    use fedcross_nn::models::{cnn, CnnConfig};
    use fedcross_nn::Model;
    use fedcross_tensor::SeededRng;

    fn tiny_setup(seed: u64, clients: usize) -> (FederatedDataset, Box<dyn Model>) {
        let mut rng = SeededRng::new(seed);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: clients,
                samples_per_client: 25,
                test_samples: 60,
                ..Default::default()
            },
            Heterogeneity::Dirichlet(0.5),
            &mut rng,
        );
        let template = cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (4, 8),
                fc_hidden: 16,
                kernel: 3,
            },
            &mut rng,
        );
        (data, template)
    }

    fn quick_sim_config(rounds: usize, k: usize) -> SimulationConfig {
        SimulationConfig {
            rounds,
            clients_per_round: k,
            eval_every: rounds.max(1),
            eval_batch_size: 64,
            local: LocalTrainConfig {
                epochs: 1,
                batch_size: 10,
                lr: 0.05,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            seed: 7,
        }
    }

    #[test]
    fn construction_replicates_the_initial_model() {
        let init = vec![1.0, 2.0, 3.0];
        let algo = FedCross::new(FedCrossConfig::default(), init.clone(), 4);
        assert_eq!(algo.num_middleware(), 4);
        assert!(algo.middleware().iter().all(|m| m == &init));
        assert_eq!(algo.global_params(), init);
        assert!((algo.middleware_similarity() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn fewer_than_two_middleware_models_is_rejected() {
        let _ = FedCross::new(FedCrossConfig::default(), vec![0.0], 1);
    }

    #[test]
    #[should_panic]
    fn invalid_alpha_is_rejected() {
        let config = FedCrossConfig {
            alpha: 1.5,
            ..Default::default()
        };
        let _ = FedCross::new(config, vec![0.0], 3);
    }

    #[test]
    fn name_reflects_configuration() {
        let algo = FedCross::new(FedCrossConfig::default(), vec![0.0; 4], 3);
        let name = algo.name();
        assert!(name.contains("fedcross"));
        assert!(name.contains("0.99"));
        assert!(name.contains("lowest-similarity"));

        let accel = FedCross::new(
            FedCrossConfig {
                acceleration: Acceleration::paper_da(),
                ..Default::default()
            },
            vec![0.0; 4],
            3,
        );
        assert!(accel.name().contains("w/ DA"));
    }

    #[test]
    fn propeller_indices_are_distinct_and_exclude_self() {
        let algo = FedCross::new(FedCrossConfig::default(), vec![0.0; 2], 5);
        for round in 0..6 {
            for i in 0..5 {
                let picks = algo.propeller_indices(round, i, 3, 5);
                assert_eq!(picks.len(), 3);
                assert!(!picks.contains(&i));
                let mut sorted = picks.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 3);
            }
        }
        // Requesting more propellers than peers caps at K-1.
        assert_eq!(algo.propeller_indices(0, 0, 10, 5).len(), 4);
    }

    #[test]
    fn fedcross_survives_client_dropout() {
        use fedcross_flsim::AvailabilityModel;
        let (data, template) = tiny_setup(9, 6);
        let init = template.params_flat();
        let mut algo = FedCross::new(
            FedCrossConfig {
                alpha: 0.9,
                ..Default::default()
            },
            init.clone(),
            4,
        );
        let mut config = quick_sim_config(10, 4);
        config.local.epochs = 2;
        config.local.lr = 0.1;
        config.eval_every = 2;
        let sim = Simulation::new(config, &data, template)
            .with_availability(AvailabilityModel::RandomDropout { prob: 0.3 });
        let result = sim.run(&mut algo);
        // The middleware list keeps its size, stays finite, and the run still
        // makes progress despite ~30% of uploads never arriving.
        assert_eq!(algo.num_middleware(), 4);
        assert!(algo.global_params().iter().all(|p| p.is_finite()));
        assert!(result.history.best_accuracy() > 0.15);
        // Fewer uploads than dispatch slots means fewer client contacts than
        // the no-dropout run would record.
        assert!(result.comm.client_contacts < (10 * 4) as u64);
    }

    #[test]
    fn fedcross_keeps_untrained_middleware_when_all_but_one_client_drop() {
        use fedcross_flsim::AvailabilityModel;
        let (data, template) = tiny_setup(10, 5);
        let init = template.params_flat();
        let mut algo = FedCross::new(FedCrossConfig::default(), init.clone(), 4);
        let sim = Simulation::new(quick_sim_config(2, 4), &data, template)
            .with_availability(AvailabilityModel::RandomDropout { prob: 0.95 });
        let _ = sim.run(&mut algo);
        // With near-total dropout most middleware models never trained and are
        // still the shared initialisation.
        let unchanged = algo.middleware().iter().filter(|m| **m == init).count();
        assert!(unchanged >= 2, "only {unchanged} middleware models untouched");
        assert_eq!(algo.num_middleware(), 4);
    }

    #[test]
    fn one_round_diversifies_then_training_reunifies_middleware() {
        let (data, template) = tiny_setup(1, 4);
        let mut algo = FedCross::new(FedCrossConfig::default(), template.params_flat(), 4);
        let sim = Simulation::new(quick_sim_config(6, 4), &data, template);
        let _ = sim.run(&mut algo);
        // After training the middleware models are distinct (clients differ) but
        // still highly similar thanks to cross-aggregation.
        let sim_score = algo.middleware_similarity();
        assert!(sim_score > 0.7, "middleware similarity {sim_score}");
        let first = &algo.middleware()[0];
        assert!(algo.middleware().iter().skip(1).any(|m| m != first));
    }

    #[test]
    fn fedcross_learns_on_a_tiny_task() {
        let (data, template) = tiny_setup(2, 4);
        let init_acc = {
            let mut m = template.clone_model();
            fedcross_flsim::eval::evaluate(m.as_mut(), data.test_set(), 64).accuracy
        };
        // A moderate alpha keeps the unit test fast; the full alpha = 0.99 setting
        // is exercised by the integration tests and the benchmark harness.
        let fed_config = FedCrossConfig {
            alpha: 0.9,
            ..Default::default()
        };
        let mut algo = FedCross::new(fed_config, template.params_flat(), 4);
        let mut config = quick_sim_config(14, 4);
        config.local.epochs = 2;
        config.local.lr = 0.1;
        config.eval_every = 2;
        let sim = Simulation::new(config, &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1
                && result.history.best_accuracy() > 0.2,
            "FedCross should learn: best {} vs init {}",
            result.history.best_accuracy(),
            init_acc
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_k_and_clients_per_round_panics() {
        let (data, template) = tiny_setup(3, 5);
        let mut algo = FedCross::new(FedCrossConfig::default(), template.params_flat(), 3);
        // clients_per_round = 4 but only 3 middleware models.
        let sim = Simulation::new(quick_sim_config(1, 4), &data, template);
        let _ = sim.run(&mut algo);
    }

    #[test]
    fn acceleration_variants_run_and_keep_learning() {
        let (data, template) = tiny_setup(4, 4);
        for acceleration in [
            Acceleration::PropellerModels {
                propellers: 2,
                until_round: 3,
            },
            Acceleration::DynamicAlpha {
                start_alpha: 0.5,
                until_round: 3,
            },
            Acceleration::PropellerThenDynamic {
                propellers: 2,
                switch_round: 2,
                until_round: 4,
            },
        ] {
            let config = FedCrossConfig {
                acceleration,
                ..Default::default()
            };
            let mut algo = FedCross::new(config, template.params_flat(), 4);
            let sim = Simulation::new(quick_sim_config(5, 4), &data, template.clone_model());
            let result = sim.run(&mut algo);
            assert!(result.history.final_accuracy() >= 0.0);
            assert!(!algo.global_params().iter().any(|p| !p.is_finite()));
        }
    }

    #[test]
    fn comm_overhead_is_low_like_fedavg() {
        // Table I: FedCross exchanges only models, no auxiliary payload.
        let (data, template) = tiny_setup(5, 4);
        let mut algo = FedCross::new(FedCrossConfig::default(), template.params_flat(), 4);
        let params = template.param_count();
        let sim = Simulation::new(quick_sim_config(2, 4), &data, template);
        let result = sim.run(&mut algo);
        assert_eq!(
            result.comm.overhead_class(params),
            fedcross_flsim::CommOverheadClass::Low
        );
        // 2 rounds × 4 clients = 8 model round trips.
        assert_eq!(result.comm.client_contacts, 8);
    }
}
