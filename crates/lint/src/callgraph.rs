//! Intra-workspace function index and conservative call graph.
//!
//! Nodes are every non-test `fn` item the parser recovers from the scanned
//! files. Edges are *name-resolved*: a call site `helper(…)`, `self.helper(…)`
//! or `Type::helper(…)` produces an edge to **every** workspace function
//! named `helper`. That over-approximates real dispatch (two unrelated
//! `get` methods alias), which is the safe direction for a reachability
//! lint: a path that might be hot is treated as hot.
//!
//! Two deliberate holes keep the over-approximation from swallowing the
//! whole workspace (documented in docs/LINTS.md under "conservatism"):
//!
//! * **Constructor boundary** — edges whose callee is named `new`,
//!   `default` or `with_capacity` are not traversed. Construction is the
//!   warm-up path by this repo's conventions (steady-state rounds build
//!   nothing — pinned at runtime by `round_alloc.rs`), and traversing every
//!   `new` would alias all constructors together.
//! * **Allocation sinks** — edges into `clone`/`to_vec`/`collect`-style
//!   callees are not traversed because those *call sites* are themselves
//!   what rule A001 flags; their bodies add nothing.
//! * **Fallback-twin edges** — an edge from `x_into` to a callee named `x`
//!   is the pooled form falling back to its allocating twin (rule D006
//!   *mandates* that twin exist; trait defaults delegate to it on the
//!   cold/unpooled path). Traversing it would flag the documented
//!   allocating API from its own zero-alloc counterpart.
//!
//! The runtime half of the plane (`fedcross_tensor::alloc_guard` under the
//! `sanitize-alloc` feature) backstops whatever slips through these holes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parser::{callees, parse, ParsedFile};
use crate::strip::{strip, Stripped};

/// Callee names that terminate traversal (see module docs).
pub const BOUNDARY_CALLEES: [&str; 14] = [
    // Constructor boundary.
    "new", "default", "with_capacity",
    // Allocation sinks — the call site is the finding, not the body.
    "clone", "cloned", "to_vec", "to_string", "to_owned", "collect", "boxed", "clone_model",
    "clone_layer", "params_flat", "from",
];

/// One scanned source file, pre-stripped and parsed.
pub struct IndexedFile {
    /// Workspace crate the file belongs to (`"core"`, `"tensor"`, …).
    pub crate_name: String,
    /// Bare file name (`"aggregation.rs"`).
    pub file_name: String,
    /// Path reported in findings.
    pub display_path: String,
    /// Code/comment split.
    pub stripped: Stripped,
    /// Item structure.
    pub parsed: ParsedFile,
}

/// A function node in the workspace call graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    /// Index into the file list.
    pub file: usize,
    /// Index into that file's `ParsedFile::fns`.
    pub item: usize,
}

/// The workspace-wide function index + call graph + hot-path reachability.
pub struct CallGraph {
    /// All nodes, in (file, declaration) order.
    pub nodes: Vec<FnRef>,
    /// Function name → node indices bearing that name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per node: callee names referenced from its body.
    pub calls: Vec<Vec<String>>,
    /// Per node: whether it is a hot-path root, and why.
    pub root_kind: Vec<Option<&'static str>>,
    /// Per node: reachable from some root?
    pub reachable: Vec<bool>,
    /// Per node: BFS predecessor (for explaining reachability paths).
    pub parent: Vec<Option<usize>>,
}

/// Whether a file is a kernel file for root selection — mirrors the D004
/// scope: the whole `tensor` crate plus the named kernel files.
fn is_kernel_file(crate_name: &str, file_name: &str) -> bool {
    crate_name == crate::KERNEL_CRATE || crate::KERNEL_FILES.contains(&file_name)
}

/// Classifies a function as a hot-path root.
///
/// The root set is the repo's zero-alloc steady-state surface:
/// * every `pub fn *_into` kernel in a kernel file (the fused aggregation /
///   robust / buffered kernels and the whole tensor crate),
/// * the pooled training forms `forward_into` / `backward_into` /
///   `backward_into_discard` wherever they are implemented,
/// * the in-place optimizer (`Sgd::step` and its raw/with variants),
/// * the engine round loop (`run_segment_with_observer`), which pulls in
///   every algorithm's `run_round`, dispatch, upload and eval path.
fn root_kind_for(crate_name: &str, file_name: &str, name: &str, is_pub: bool) -> Option<&'static str> {
    if is_pub && name.ends_with("_into") && is_kernel_file(crate_name, file_name) {
        return Some("kernel *_into");
    }
    if matches!(name, "forward_into" | "backward_into" | "backward_into_discard") {
        return Some("pooled training form");
    }
    if file_name == "optim.rs" && matches!(name, "step" | "step_with" | "step_raw") {
        return Some("in-place optimizer step");
    }
    if file_name == "engine.rs" && name == "run_segment_with_observer" {
        return Some("engine round loop");
    }
    None
}

impl CallGraph {
    /// Strips + parses raw sources into indexed files. Exposed separately so
    /// the rule engine can reuse the per-file structures.
    pub fn index_files(
        files: &[(String, String, String, String)], // (crate, file, display, source)
    ) -> Vec<IndexedFile> {
        files
            .iter()
            .map(|(crate_name, file_name, display_path, source)| {
                let stripped = strip(source);
                let parsed = parse(&stripped);
                IndexedFile {
                    crate_name: crate_name.clone(),
                    file_name: file_name.clone(),
                    display_path: display_path.clone(),
                    stripped,
                    parsed,
                }
            })
            .collect()
    }

    /// Builds the graph and computes hot-path reachability.
    pub fn build(files: &[IndexedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.parsed.fns.iter().enumerate() {
                if item.in_test {
                    continue;
                }
                let node = nodes.len();
                nodes.push(FnRef { file: fi, item: ii });
                by_name.entry(item.name.clone()).or_default().push(node);
            }
        }
        let mut calls = Vec::with_capacity(nodes.len());
        let mut root_kind = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let file = &files[node.file];
            let item = &file.parsed.fns[node.item];
            calls.push(callees(&file.stripped, &file.parsed, node.item));
            root_kind.push(root_kind_for(
                &file.crate_name,
                &file.file_name,
                &item.name,
                item.is_pub,
            ));
        }

        // BFS from every root over name-resolved edges, skipping the
        // boundary callees.
        let boundary: BTreeSet<&str> = BOUNDARY_CALLEES.iter().copied().collect();
        let mut reachable = vec![false; nodes.len()];
        let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
        let mut queue = VecDeque::new();
        for (idx, kind) in root_kind.iter().enumerate() {
            if kind.is_some() {
                reachable[idx] = true;
                queue.push_back(idx);
            }
        }
        while let Some(idx) = queue.pop_front() {
            let caller_name = &files[nodes[idx].file].parsed.fns[nodes[idx].item].name;
            for callee in &calls[idx] {
                if boundary.contains(callee.as_str()) {
                    continue;
                }
                // Fallback-twin edge: `x_into` delegating to its allocating
                // counterpart `x` (see module docs).
                if caller_name.strip_suffix("_into") == Some(callee.as_str()) {
                    continue;
                }
                if let Some(targets) = by_name.get(callee) {
                    for &t in targets {
                        if !reachable[t] {
                            reachable[t] = true;
                            parent[t] = Some(idx);
                            queue.push_back(t);
                        }
                    }
                }
            }
        }

        CallGraph {
            nodes,
            by_name,
            calls,
            root_kind,
            reachable,
            parent,
        }
    }

    /// Human-readable label `crate/file.rs::name` for a node.
    pub fn label(&self, files: &[IndexedFile], node: usize) -> String {
        let r = self.nodes[node];
        let file = &files[r.file];
        format!("{}::{}", file.display_path, file.parsed.fns[r.item].name)
    }

    /// The call chain from a hot-path root to `node` (inclusive), shortest
    /// in BFS hops, as node indices. Empty if the node is unreachable.
    pub fn chain_to(&self, mut node: usize) -> Vec<usize> {
        if !self.reachable[node] {
            return Vec::new();
        }
        let mut chain = vec![node];
        while let Some(p) = self.parent[node] {
            chain.push(p);
            node = p;
        }
        chain.reverse();
        chain
    }

    /// A compact rendering of the root-to-node chain for finding messages:
    /// `root_name -> … -> fn_name`, elided in the middle when long.
    pub fn chain_label(&self, files: &[IndexedFile], node: usize) -> String {
        let chain = self.chain_to(node);
        let names: Vec<String> = chain
            .iter()
            .map(|&n| {
                let r = self.nodes[n];
                files[r.file].parsed.fns[r.item].name.clone()
            })
            .collect();
        if names.len() <= 5 {
            names.join(" -> ")
        } else {
            format!(
                "{} -> {} -> … -> {} -> {}",
                names[0],
                names[1],
                names[names.len() - 2],
                names[names.len() - 1]
            )
        }
    }

    /// Looks up nodes by bare function name (for `--reach`).
    pub fn nodes_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str, &str)]) -> (Vec<IndexedFile>, CallGraph) {
        let raw: Vec<(String, String, String, String)> = files
            .iter()
            .map(|(c, f, src)| (c.to_string(), f.to_string(), format!("{c}/{f}"), src.to_string()))
            .collect();
        let indexed = CallGraph::index_files(&raw);
        let g = CallGraph::build(&indexed);
        (indexed, g)
    }

    #[test]
    fn kernel_into_fns_are_roots_and_reach_their_helpers() {
        let (files, g) = graph(&[(
            "tensor",
            "ops.rs",
            "pub fn axpy_into(d: &mut [f32]) {\n    helper(d);\n}\npub fn axpy(d: &[f32]) -> Vec<f32> { vec![] }\nfn helper(d: &mut [f32]) {\n    leaf(d);\n}\nfn leaf(_d: &mut [f32]) {}\nfn island() {}\n",
        )]);
        let by = |name: &str| g.nodes_named(name)[0];
        assert_eq!(g.root_kind[by("axpy_into")], Some("kernel *_into"));
        assert!(g.reachable[by("helper")]);
        assert!(g.reachable[by("leaf")], "multi-hop reachability");
        assert!(!g.reachable[by("island")]);
        assert!(!g.reachable[by("axpy")], "allocating twins are not roots");
        let chain = g.chain_label(&files, by("leaf"));
        assert_eq!(chain, "axpy_into -> helper -> leaf");
    }

    #[test]
    fn name_resolution_is_conservative_across_files() {
        let (_, g) = graph(&[
            (
                "nn",
                "layers.rs",
                "pub fn forward_into(x: u32) {\n    shared_name(x);\n}\n",
            ),
            (
                "flsim",
                "other.rs",
                "pub fn shared_name(x: u32) {\n    deep(x);\n}\nfn deep(_x: u32) {}\n",
            ),
        ]);
        // The call resolves into the other file's same-named fn.
        assert!(g.reachable[g.nodes_named("shared_name")[0]]);
        assert!(g.reachable[g.nodes_named("deep")[0]]);
    }

    #[test]
    fn constructor_boundary_stops_traversal() {
        let (_, g) = graph(&[(
            "tensor",
            "ops.rs",
            "pub fn fuse_into(d: &mut [f32]) {\n    let s = Scratch::new();\n}\nimpl Scratch {\n    pub fn new() -> Self {\n        builds_everything()\n    }\n}\nfn builds_everything() -> Scratch { Scratch }\n",
        )]);
        assert!(!g.reachable[g.nodes_named("new")[0]]);
        assert!(!g.reachable[g.nodes_named("builds_everything")[0]]);
    }

    #[test]
    fn fallback_twin_edge_is_not_traversed() {
        let (_, g) = graph(&[(
            "nn",
            "layers.rs",
            "pub fn forward_into(d: &mut [f32]) {\n    let cold = forward(d);\n}\npub fn forward(d: &[f32]) -> Vec<f32> {\n    deep_alloc(d)\n}\nfn deep_alloc(d: &[f32]) -> Vec<f32> { d.to_vec() }\n",
        )]);
        assert!(!g.reachable[g.nodes_named("forward")[0]], "allocating twin stays cold");
        assert!(!g.reachable[g.nodes_named("deep_alloc")[0]]);
        // …but an unrelated callee of the same pooled form is still traversed.
        let (_, g) = graph(&[(
            "nn",
            "layers.rs",
            "pub fn forward_into(d: &mut [f32]) {\n    stage(d);\n}\nfn stage(_d: &mut [f32]) {}\n",
        )]);
        assert!(g.reachable[g.nodes_named("stage")[0]]);
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let (_, g) = graph(&[(
            "core",
            "aggregation.rs",
            "pub fn average_into(d: &mut [f32]) {}\n#[cfg(test)]\nmod tests {\n    fn probe() { average_into(&mut []); }\n}\n",
        )]);
        assert!(g.nodes_named("probe").is_empty());
    }

    #[test]
    fn optimizer_and_engine_roots_apply_by_file() {
        let (_, g) = graph(&[
            ("nn", "optim.rs", "pub fn step(m: u32) {\n    apply(m);\n}\nfn apply(_m: u32) {}\n"),
            ("core", "selection.rs", "pub fn step(m: u32) {}\n"),
        ]);
        let nodes = g.nodes_named("step");
        // Both `step`s exist; only the optim.rs one is a root…
        let kinds: Vec<_> = nodes.iter().map(|&n| g.root_kind[n]).collect();
        assert!(kinds.contains(&Some("in-place optimizer step")));
        assert!(kinds.contains(&None));
        // …but conservative name resolution still reaches the other when
        // something calls `step` — here nothing does, so it stays a root-only
        // property.
        assert!(g.reachable[g.nodes_named("apply")[0]]);
    }
}
