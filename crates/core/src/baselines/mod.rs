//! The five baseline FL methods the paper compares FedCross against
//! (Table I / Section IV-A2).
//!
//! | Method | Category | Comm. overhead | Module |
//! |---|---|---|---|
//! | FedAvg | classic one-to-multi | Low | [`fedavg`] |
//! | FedProx | global control variable (proximal term μ) | Low | [`fedprox`] |
//! | SCAFFOLD | global control variable (control variates) | High | [`scaffold`] |
//! | FedGen | knowledge distillation (built-in generator) | Medium | [`fedgen`] |
//! | CluSamp | client grouping (gradient-similarity clusters) | Low | [`clusamp`] |
//!
//! All of them implement [`fedcross_flsim::FederatedAlgorithm`], so the same
//! simulation engine and the same benchmark harness drive every method.

pub mod clusamp;
pub mod fedavg;
pub mod fedgen;
pub mod fedprox;
pub mod scaffold;

#[cfg(test)]
pub(crate) mod test_support;

pub use clusamp::CluSamp;
pub use fedavg::FedAvg;
pub use fedgen::FedGen;
pub use fedprox::FedProx;
pub use scaffold::Scaffold;
