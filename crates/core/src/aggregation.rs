//! Cross-aggregation (`CrossAggr`) and global-model generation
//! (Sections III-B2 and III-B3).
//!
//! Every kernel comes in two forms: an allocating convenience version and a
//! destination-passing `*_into` version that writes into a caller-provided
//! buffer. The `*_into` forms are the hot path — `FedCross::run_round` fuses
//! each round's uploads directly into the retired middleware buffers, so the
//! steady-state server loop performs **zero** full-model allocations — and the
//! allocating forms are thin wrappers over them, so both are numerically
//! identical element-for-element.
//!
//! [`cross_aggregate_all_into`] parallelises over the `K` middleware models
//! with rayon once the total work is large enough to amortise the fork/join.

use fedcross_nn::params::{average, average_into, interpolate_into, squared_distance, ParamVec};
use rayon::prelude::*;

/// Minimum total scalar count (`K·d`) before the whole-round kernels switch
/// to rayon; below this the fork/join overhead dominates.
const PAR_THRESHOLD_SCALARS: usize = 1 << 16;

fn assert_alpha(alpha: f32) {
    assert!(
        (0.5..1.0).contains(&alpha),
        "alpha must lie in [0.5, 1.0), got {alpha}"
    );
}

/// Fuses one uploaded middleware model with its collaborative model:
/// `CrossAggr(v_i, v_co) = α·v_i + (1-α)·v_co`.
///
/// # Panics
/// Panics if `alpha` is outside `[0.5, 1.0)` (the paper's admissible range)
/// or the vectors differ in length.
pub fn cross_aggregate(uploaded: &[f32], collaborative: &[f32], alpha: f32) -> ParamVec {
    let mut out = vec![0f32; uploaded.len()];
    cross_aggregate_into(&mut out, uploaded, collaborative, alpha);
    out
}

/// Destination-passing [`cross_aggregate`]: writes the fused model into
/// `out`, reusing its allocation.
///
/// # Panics
/// Panics if `alpha` is outside `[0.5, 1.0)` or any length differs.
pub fn cross_aggregate_into(out: &mut [f32], uploaded: &[f32], collaborative: &[f32], alpha: f32) {
    assert_alpha(alpha);
    interpolate_into(out, uploaded, collaborative, alpha);
}

/// Fuses one uploaded model with multiple *propeller* models (the
/// propeller-model acceleration of Section III-D): the collaborative share
/// `(1-α)` is split evenly across the propellers.
///
/// With a single propeller this reduces exactly to [`cross_aggregate`].
pub fn cross_aggregate_propellers(
    uploaded: &[f32],
    propellers: &[&[f32]],
    alpha: f32,
) -> ParamVec {
    let mut out = vec![0f32; uploaded.len()];
    cross_aggregate_propellers_into(&mut out, uploaded, propellers, alpha);
    out
}

/// Destination-passing [`cross_aggregate_propellers`]: writes the fused model
/// into `out`, reusing its allocation.
///
/// # Panics
/// Panics if `alpha` is out of range, no propeller is given, or lengths
/// differ.
pub fn cross_aggregate_propellers_into(
    out: &mut [f32],
    uploaded: &[f32],
    propellers: &[&[f32]],
    alpha: f32,
) {
    assert_alpha(alpha);
    assert!(!propellers.is_empty(), "at least one propeller is required");
    assert_eq!(out.len(), uploaded.len(), "output length must match");
    let share = (1.0 - alpha) / propellers.len() as f32;
    for (o, &v) in out.iter_mut().zip(uploaded) {
        *o = alpha * v;
    }
    for propeller in propellers {
        assert_eq!(
            propeller.len(),
            uploaded.len(),
            "propeller length must match the uploaded model"
        );
        fedcross_nn::params::add_scaled(out, propeller, share);
    }
}

/// Applies cross-aggregation to the whole uploaded model list given each
/// model's collaborative index (Algorithm 1 lines 11–14), producing the next
/// round's middleware models.
///
/// # Panics
/// Panics if a collaborative index is out of range or equals its own model.
pub fn cross_aggregate_all<V: AsRef<[f32]> + Sync>(
    uploaded: &[V],
    collaborators: &[usize],
    alpha: f32,
) -> Vec<ParamVec> {
    let dim = uploaded.first().map_or(0, |v| v.as_ref().len());
    // alloc: bounded — K middleware output vectors, once per round
    let mut out: Vec<ParamVec> = uploaded.iter().map(|_| vec![0f32; dim]).collect();
    {
        // alloc: bounded — K middleware output vectors, once per round
        let mut targets: Vec<&mut [f32]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
        cross_aggregate_all_into(&mut targets, uploaded, collaborators, alpha);
    }
    out
}

/// Destination-passing [`cross_aggregate_all`]: fuses every upload into its
/// caller-provided output buffer (`out[i] = α·uploaded[i] +
/// (1-α)·uploaded[collaborators[i]]`), rayon-parallel over the `K` models
/// when `K·d` crosses [`PAR_THRESHOLD_SCALARS`].
///
/// The output buffers are typically last round's retired middleware models,
/// making the whole cross-aggregation step allocation-free.
///
/// # Panics
/// Panics if the lengths are inconsistent, `alpha` is out of range, a
/// collaborative index is out of range or a model collaborates with itself.
pub fn cross_aggregate_all_into<V: AsRef<[f32]> + Sync>(
    out: &mut [&mut [f32]],
    uploaded: &[V],
    collaborators: &[usize],
    alpha: f32,
) {
    assert_eq!(
        uploaded.len(),
        collaborators.len(),
        "one collaborator index per uploaded model"
    );
    assert_eq!(
        out.len(),
        uploaded.len(),
        "one output buffer per uploaded model"
    );
    assert_alpha(alpha);
    for (i, &co) in collaborators.iter().enumerate() {
        assert!(co < uploaded.len(), "collaborator index out of range");
        assert_ne!(co, i, "a model cannot collaborate with itself");
    }
    let dim = uploaded.first().map_or(0, |v| v.as_ref().len());
    let fuse = |(i, target): (usize, &mut &mut [f32])| {
        interpolate_into(
            target,
            uploaded[i].as_ref(),
            uploaded[collaborators[i]].as_ref(),
            alpha,
        );
    };
    if uploaded.len() * dim >= PAR_THRESHOLD_SCALARS {
        out.par_iter_mut().enumerate().for_each(fuse);
    } else {
        out.iter_mut().enumerate().for_each(fuse);
    }
}

/// Generates the deployable global model: the plain average of the middleware
/// models (Section III-B3). The global model never participates in training.
pub fn global_model<V: AsRef<[f32]>>(middleware: &[V]) -> ParamVec {
    average(middleware)
}

/// Destination-passing [`global_model`]: writes the middleware average into
/// `out`, reusing its allocation.
pub fn global_model_into<V: AsRef<[f32]>>(out: &mut [f32], middleware: &[V]) {
    average_into(out, middleware);
}

// ---------------------------------------------------------------------------
// Byzantine-robust aggregation rules.
//
// Cross-aggregation trusts every upload; one scaled Byzantine update poisons
// all K middleware at once. The kernels below are the classical robust
// estimators (coordinate-wise median, trimmed mean, Krum / multi-Krum, norm
// bounding), each in the same allocating + destination-passing `*_into` pair
// as the kernels above. Two determinism contracts hold throughout
// (docs/ROBUSTNESS.md, pinned by tests/tests/robust_kernels.rs):
//
// * **Canonical order** — callers pass uploads in canonical client/slot
//   order; within a kernel, any order sensitivity is removed by per-coordinate
//   ascending sorts (`f32::total_cmp`) or ascending-index tie-breaks.
// * **Permutation invariance** — median and trimmed mean are *bitwise*
//   invariant under upload permutation (sorted columns erase arrival order);
//   Krum's selected *set* is permutation-invariant whenever scores are
//   distinct (exact score ties break by the lowest index, which is why
//   algorithms sort uploads canonically before selecting).

/// How many coordinate scalars one parallel work item covers in the
/// column-sorting kernels; chosen so a chunk's scratch column stays small
/// while each rayon task still amortises its dispatch.
const COLUMN_CHUNK: usize = 1024;

/// Shared core of the column-sorting robust estimators: for every coordinate,
/// gather the uploads' values into a scratch column, sort ascending with the
/// total order on floats, and reduce the sorted column to one output scalar.
/// Parallel over coordinate chunks once `n·d` crosses
/// [`PAR_THRESHOLD_SCALARS`] — bitwise identical to the serial path because
/// every coordinate is computed independently.
fn sorted_column_reduce_into<V: AsRef<[f32]> + Sync>(
    out: &mut [f32],
    uploads: &[V],
    reduce: impl Fn(&[f32]) -> f32 + Sync,
) {
    assert!(!uploads.is_empty(), "at least one upload is required");
    // alloc: bounded — cohort-sized column views; values reduce in place
    let views: Vec<&[f32]> = uploads.iter().map(|v| v.as_ref()).collect();
    for view in &views {
        assert_eq!(view.len(), out.len(), "upload length must match the output");
    }
    let n = views.len();
    let fill = |(chunk_index, chunk): (usize, &mut [f32])| {
        // alloc: bounded — cohort-sized column views; values reduce in place
        let mut column = vec![0f32; n];
        for (j, slot) in chunk.iter_mut().enumerate() {
            let coord = chunk_index * COLUMN_CHUNK + j;
            for (cell, view) in column.iter_mut().zip(&views) {
                *cell = view[coord];
            }
            column.sort_unstable_by(f32::total_cmp);
            *slot = reduce(&column);
        }
    };
    if n * out.len() >= PAR_THRESHOLD_SCALARS {
        out.par_chunks_mut(COLUMN_CHUNK).enumerate().for_each(fill);
    } else {
        out.chunks_mut(COLUMN_CHUNK).enumerate().for_each(fill);
    }
}

/// Coordinate-wise median of the uploads (breakdown point ⌊(n-1)/2⌋: a
/// strict minority of Byzantine uploads cannot move any coordinate outside
/// the honest value range).
///
/// Bitwise invariant under upload permutation: every coordinate is reduced
/// from its ascending-sorted column, erasing arrival order. An even column
/// takes the mean of the two middle values.
pub fn coordinate_median<V: AsRef<[f32]> + Sync>(uploads: &[V]) -> ParamVec {
    let dim = uploads.first().map_or(0, |v| v.as_ref().len());
    let mut out = vec![0f32; dim];
    coordinate_median_into(&mut out, uploads);
    out
}

/// Destination-passing [`coordinate_median`]: writes the median model into
/// `out`, reusing its allocation.
///
/// # Panics
/// Panics if `uploads` is empty or any length differs from `out`.
pub fn coordinate_median_into<V: AsRef<[f32]> + Sync>(out: &mut [f32], uploads: &[V]) {
    sorted_column_reduce_into(out, uploads, |sorted| {
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        }
    });
}

/// Number of uploads the trimmed mean drops **per end** for a given trim
/// fraction: `⌊trim · n⌋` (computed in f64 so fractions like 0.2 of 5 do not
/// fall victim to f32 representation error).
pub fn trim_count(n: usize, trim: f32) -> usize {
    (f64::from(trim) * n as f64).floor() as usize
}

/// Coordinate-wise trimmed mean: drops the `⌊trim·n⌋` smallest and largest
/// values of every coordinate column and averages the rest (breakdown point
/// ⌊trim·n⌋). `trim = 0` degenerates to the plain coordinate mean.
///
/// Bitwise invariant under upload permutation: the kept values are summed in
/// ascending sorted order, not arrival order.
pub fn trimmed_mean<V: AsRef<[f32]> + Sync>(uploads: &[V], trim: f32) -> ParamVec {
    let dim = uploads.first().map_or(0, |v| v.as_ref().len());
    let mut out = vec![0f32; dim];
    trimmed_mean_into(&mut out, uploads, trim);
    out
}

/// Destination-passing [`trimmed_mean`]: writes the trimmed-mean model into
/// `out`, reusing its allocation.
///
/// # Panics
/// Panics if `uploads` is empty, lengths differ, `trim` lies outside
/// `[0, 0.5)`, or trimming would drop every upload.
pub fn trimmed_mean_into<V: AsRef<[f32]> + Sync>(out: &mut [f32], uploads: &[V], trim: f32) {
    assert!(
        trim.is_finite() && (0.0..0.5).contains(&trim),
        "trim fraction must lie in [0, 0.5), got {trim}"
    );
    let cut = trim_count(uploads.len(), trim);
    assert!(
        2 * cut < uploads.len(),
        "trimming {cut} per end would drop all {} uploads",
        uploads.len()
    );
    sorted_column_reduce_into(out, uploads, |sorted| {
        let kept = &sorted[cut..sorted.len() - cut];
        kept.iter().sum::<f32>() / kept.len() as f32
    });
}

/// Krum selection: the index of the single upload with the smallest sum of
/// squared distances to its `n - f - 2` nearest neighbours — the upload most
/// corroborated by the others, assuming at most `f` Byzantine uploads.
///
/// Equivalent to [`multi_krum_select`] with `m = 1`.
pub fn krum_select<V: AsRef<[f32]> + Sync>(uploads: &[V], f: usize) -> usize {
    multi_krum_select(uploads, f, 1)[0]
}

/// Multi-Krum selection: the `m` uploads with the smallest Krum scores, in
/// ascending **canonical index** order (the caller's canonical upload order
/// doubles as the deterministic tie-break: exact score ties prefer the lower
/// index).
///
/// Each upload's score sums its `max(1, n - f - 2)` smallest squared
/// distances to the other uploads, with the distances summed in ascending
/// sorted order so the score is a pure function of the distance multiset —
/// permuting the uploads permutes the scores but cannot change their values,
/// hence the selected *set* is permutation-invariant whenever no two scores
/// tie exactly.
///
/// # Panics
/// Panics if `uploads` has fewer than two entries, `m` is zero or exceeds the
/// upload count, or lengths differ.
pub fn multi_krum_select<V: AsRef<[f32]> + Sync>(uploads: &[V], f: usize, m: usize) -> Vec<usize> {
    let n = uploads.len();
    assert!(n >= 2, "Krum needs at least two uploads, got {n}");
    assert!(m >= 1 && m <= n, "must select between 1 and {n} uploads, got {m}");
    // alloc: bounded — cohort-sized robust-selection scratch, once per round
    let views: Vec<&[f32]> = uploads.iter().map(|v| v.as_ref()).collect();
    let dim = views[0].len();
    for view in &views {
        assert_eq!(view.len(), dim, "upload lengths must match");
    }
    let neighbours = n.saturating_sub(f + 2).clamp(1, n - 1);
    let score = |i: usize| -> f32 {
        let mut distances: Vec<f32> = (0..n)
            .filter(|&j| j != i)
            .map(|j| squared_distance(views[i], views[j]))
            // alloc: bounded — cohort-sized robust-selection scratch, once per round
            .collect();
        distances.sort_unstable_by(f32::total_cmp);
        distances[..neighbours].iter().sum()
    };
    let scores: Vec<f32> = if n * n * dim >= PAR_THRESHOLD_SCALARS {
        // alloc: bounded — cohort-sized robust-selection scratch, once per round
        let mut scores = vec![0f32; n];
        scores
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, s)| *s = score(i));
        scores
    } else {
        // alloc: bounded — cohort-sized robust-selection scratch, once per round
        (0..n).map(score).collect()
    };
    // alloc: bounded — cohort-sized robust-selection scratch, once per round
    let mut order: Vec<usize> = (0..n).collect();
    // Deterministic tie-break: equal scores prefer the lower canonical index.
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    // alloc: bounded — cohort-sized robust-selection scratch, once per round
    let mut selected = order[..m].to_vec();
    selected.sort_unstable();
    selected
}

/// Norm-bounded mean around an `anchor` (the model the server dispatched):
/// every upload's delta `uᵢ - anchor` is scaled by `min(1, max_norm / ‖δᵢ‖)` —
/// the same clip-factor semantics as the differential-privacy plane's
/// `clip_to_norm` — and the clipped deltas are averaged back onto the anchor.
/// No upload is excluded, but none can contribute a step longer than
/// `max_norm`, which bounds the damage of a scaled Byzantine update by
/// `max_norm / n`.
pub fn norm_bounded_mean<V: AsRef<[f32]> + Sync>(
    anchor: &[f32],
    uploads: &[V],
    max_norm: f32,
) -> ParamVec {
    let mut out = vec![0f32; anchor.len()];
    norm_bounded_mean_into(&mut out, anchor, uploads, max_norm);
    out
}

/// Destination-passing [`norm_bounded_mean`]: writes the clipped aggregate
/// into `out`, reusing its allocation. `out` must not alias `anchor` (the
/// anchor is read throughout the accumulation).
///
/// # Panics
/// Panics if `uploads` is empty, lengths differ, or `max_norm` is not a
/// positive finite number.
pub fn norm_bounded_mean_into<V: AsRef<[f32]> + Sync>(
    out: &mut [f32],
    anchor: &[f32],
    uploads: &[V],
    max_norm: f32,
) {
    assert!(
        max_norm.is_finite() && max_norm > 0.0,
        "norm bound must be positive and finite, got {max_norm}"
    );
    assert!(!uploads.is_empty(), "at least one upload is required");
    assert_eq!(out.len(), anchor.len(), "output length must match the anchor");
    out.fill(0.0);
    // Accumulate clipped deltas in the caller's canonical upload order; the
    // per-upload clip factor depends only on that upload's own norm, so the
    // sum is order-sensitive only through f32 associativity — which is why
    // the algorithms sort uploads canonically before calling any rule.
    for upload in uploads {
        let upload = upload.as_ref();
        assert_eq!(upload.len(), anchor.len(), "upload length must match");
        let norm = upload
            .iter()
            .zip(anchor)
            .map(|(u, a)| {
                let d = u - a;
                d * d
            })
            .sum::<f32>()
            .sqrt();
        let scale = if norm > max_norm { max_norm / norm } else { 1.0 };
        for ((o, u), a) in out.iter_mut().zip(upload).zip(anchor) {
            *o += scale * (u - a);
        }
    }
    let inv = 1.0 / uploads.len() as f32;
    for (o, a) in out.iter_mut().zip(anchor) {
        *o = a + *o * inv;
    }
}

/// A Byzantine-robust replacement for the plain upload average: the server
/// half both [`RobustFedAvg`](crate::robust::RobustFedAvg) and
/// [`RobustFedCross`](crate::robust::RobustFedCross) dispatch on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RobustRule {
    /// Coordinate-wise median ([`coordinate_median_into`]).
    Median,
    /// Coordinate-wise trimmed mean ([`trimmed_mean_into`]).
    TrimmedMean {
        /// Fraction of uploads dropped per end of every coordinate column.
        trim: f32,
    },
    /// Multi-Krum selection followed by the mean of the selected uploads
    /// ([`multi_krum_select`]). `m = 1` is classical Krum.
    Krum {
        /// Assumed upper bound on Byzantine uploads per round.
        f: usize,
        /// Number of selected uploads averaged into the aggregate.
        m: usize,
    },
    /// Norm-bounded mean around the dispatched anchor
    /// ([`norm_bounded_mean_into`]).
    NormBound {
        /// Maximum L2 norm an upload's delta may contribute.
        max_norm: f32,
    },
}

impl RobustRule {
    /// Validates the rule's parameters, panicking on nonsense values (real
    /// `assert!`s in every build profile, like the simulation models).
    ///
    /// # Panics
    /// Panics on a trim fraction outside `[0, 0.5)`, `m = 0`, or a
    /// non-positive norm bound.
    pub fn validate(&self) {
        match *self {
            RobustRule::Median => {}
            RobustRule::TrimmedMean { trim } => assert!(
                trim.is_finite() && (0.0..0.5).contains(&trim),
                "trim fraction must lie in [0, 0.5), got {trim}"
            ),
            RobustRule::Krum { f: _, m } => {
                assert!(m >= 1, "multi-Krum must select at least one upload")
            }
            RobustRule::NormBound { max_norm } => assert!(
                max_norm.is_finite() && max_norm > 0.0,
                "norm bound must be positive and finite, got {max_norm}"
            ),
        }
    }

    /// Short label used in algorithm names and report tables.
    pub fn label(&self) -> String {
        match *self {
            // alloc: cold — reporting label, not on the round path
            RobustRule::Median => "median".to_string(),
            // alloc: cold — reporting label, not on the round path
            RobustRule::TrimmedMean { trim } => format!("trimmed-mean({trim})"),
            // alloc: cold — reporting label, not on the round path
            RobustRule::Krum { f, m } => format!("krum(f={f},m={m})"),
            // alloc: cold — reporting label, not on the round path
            RobustRule::NormBound { max_norm } => format!("norm-bound(c={max_norm})"),
        }
    }

    /// The largest number of Byzantine uploads (out of `n`) this rule is
    /// designed to withstand — its breakdown point in absolute terms. Norm
    /// bounding excludes nobody, so it reports 0: it bounds damage per round
    /// instead of rejecting outliers.
    pub fn max_byzantine(&self, n: usize) -> usize {
        match *self {
            RobustRule::Median => n.saturating_sub(1) / 2,
            RobustRule::TrimmedMean { trim } => trim_count(n, trim),
            RobustRule::Krum { f, .. } => f,
            RobustRule::NormBound { .. } => 0,
        }
    }

    /// Applies the rule to `uploads` (already in canonical order), writing
    /// the robust aggregate into `out`. `anchor` is the parameter vector the
    /// server dispatched this round — only the norm-bounding rule reads it
    /// (the clipping reference); it must not alias `out`.
    ///
    /// # Panics
    /// Panics if `uploads` is empty or shapes/parameters are invalid (see the
    /// individual kernels).
    pub fn aggregate_into<V: AsRef<[f32]> + Sync>(
        &self,
        out: &mut [f32],
        anchor: &[f32],
        uploads: &[V],
    ) {
        match *self {
            RobustRule::Median => coordinate_median_into(out, uploads),
            RobustRule::TrimmedMean { trim } => trimmed_mean_into(out, uploads, trim),
            RobustRule::Krum { f, m } => {
                // A lone upload (e.g. a heavy-dropout round) has no peers to
                // score against; it is trivially its own consensus.
                if uploads.len() == 1 {
                    out.copy_from_slice(uploads[0].as_ref());
                    return;
                }
                let selected = multi_krum_select(uploads, f, m.min(uploads.len()));
                let chosen: Vec<&[f32]> =
                    // alloc: bounded — cohort-sized view list for the selected uploads
                    selected.iter().map(|&i| uploads[i].as_ref()).collect();
                average_into(out, &chosen);
            }
            RobustRule::NormBound { max_norm } => {
                norm_bounded_mean_into(out, anchor, uploads, max_norm)
            }
        }
    }

    /// Allocating form of [`RobustRule::aggregate_into`].
    pub fn aggregate<V: AsRef<[f32]> + Sync>(&self, anchor: &[f32], uploads: &[V]) -> ParamVec {
        let mut out = vec![0f32; anchor.len()];
        self.aggregate_into(&mut out, anchor, uploads);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_nn::params::l2_norm;

    #[test]
    fn cross_aggregate_is_a_convex_combination() {
        let v = vec![1.0, 2.0, 3.0];
        let co = vec![3.0, 2.0, 1.0];
        let fused = cross_aggregate(&v, &co, 0.75);
        assert_eq!(fused, vec![1.5, 2.0, 2.5]);
    }

    #[test]
    fn alpha_near_one_barely_moves_the_model() {
        let v = vec![1.0, -1.0];
        let co = vec![100.0, 100.0];
        let fused = cross_aggregate(&v, &co, 0.99);
        assert!((fused[0] - (0.99 + 1.0)).abs() < 1e-5);
        assert!(squared_distance(&fused, &v) < squared_distance(&fused, &co));
    }

    #[test]
    #[should_panic]
    fn alpha_below_half_is_rejected() {
        let _ = cross_aggregate(&[1.0], &[2.0], 0.4);
    }

    #[test]
    #[should_panic]
    fn alpha_of_one_is_rejected() {
        let _ = cross_aggregate(&[1.0], &[2.0], 1.0);
    }

    #[test]
    #[should_panic]
    fn in_place_alpha_below_half_is_rejected() {
        let mut out = vec![0.0];
        cross_aggregate_into(&mut out, &[1.0], &[2.0], 0.4);
    }

    #[test]
    #[should_panic]
    fn in_place_length_mismatch_is_rejected() {
        let mut out = vec![0.0; 2];
        cross_aggregate_into(&mut out, &[1.0], &[2.0], 0.9);
    }

    #[test]
    fn single_propeller_matches_plain_cross_aggregation() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let p = vec![0.0, 1.0, 0.0, 1.0];
        let a = cross_aggregate(&v, &p, 0.9);
        let b = cross_aggregate_propellers(&v, &[&p], 0.9);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn propellers_share_the_collaborative_weight_evenly() {
        let v = vec![0.0, 0.0];
        let p1 = vec![1.0, 0.0];
        let p2 = vec![0.0, 1.0];
        let fused = cross_aggregate_propellers(&v, &[&p1, &p2], 0.8);
        // (1 - 0.8) / 2 = 0.1 of each propeller.
        assert!((fused[0] - 0.1).abs() < 1e-6);
        assert!((fused[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn in_order_cross_aggregation_preserves_the_parameter_sum() {
        // Equation 2 of the paper: when every model is selected as a
        // collaborator exactly once, Σ w_i = Σ v_i.
        let uploaded = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        // A cyclic permutation: each model is a collaborator exactly once.
        let collaborators = vec![1, 2, 3, 0];
        let fused = cross_aggregate_all(&uploaded, &collaborators, 0.9);
        for dim in 0..2 {
            let before: f32 = uploaded.iter().map(|v| v[dim]).sum();
            let after: f32 = fused.iter().map(|v| v[dim]).sum();
            assert!(
                (before - after).abs() < 1e-4,
                "dim {dim}: sum changed from {before} to {after}"
            );
        }
    }

    #[test]
    fn lemma_3_4_distance_inequality_holds() {
        // ||w_i - w*||^2 = ||v_i - w*||^2 - α(1-α)||v_i - v_co||^2 ≤ ||v_i - w*||^2,
        // so the average squared distance to any reference point cannot grow.
        let uploaded = vec![
            vec![1.0, 0.0, 2.0],
            vec![-1.0, 3.0, 0.5],
            vec![0.0, -2.0, 1.0],
        ];
        let collaborators = vec![1, 2, 0];
        let reference = vec![0.25, 0.5, 1.0];
        for &alpha in &[0.5f32, 0.75, 0.9, 0.99] {
            let fused = cross_aggregate_all(&uploaded, &collaborators, alpha);
            let before: f32 = uploaded
                .iter()
                .map(|v| squared_distance(v, &reference))
                .sum::<f32>()
                / uploaded.len() as f32;
            let after: f32 = fused
                .iter()
                .map(|v| squared_distance(v, &reference))
                .sum::<f32>()
                / fused.len() as f32;
            assert!(
                after <= before + 1e-5,
                "alpha {alpha}: mean squared distance grew from {before} to {after}"
            );
        }
    }

    #[test]
    fn cross_aggregation_shrinks_pairwise_distances() {
        // The rule is designed to "restrict the weight differences between
        // middleware models" — after one application the models are closer.
        let uploaded = vec![vec![5.0, 0.0], vec![-5.0, 2.0]];
        let fused = cross_aggregate_all(&uploaded, &[1, 0], 0.8);
        let before = squared_distance(&uploaded[0], &uploaded[1]);
        let after = squared_distance(&fused[0], &fused[1]);
        assert!(after < before);
    }

    #[test]
    fn global_model_is_the_middleware_average() {
        let middleware = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        assert_eq!(global_model(&middleware), vec![2.0, 4.0]);
        let mut out = vec![0f32; 2];
        global_model_into(&mut out, &middleware);
        assert_eq!(out, vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn self_collaboration_is_rejected() {
        let uploaded = vec![vec![1.0], vec![2.0]];
        let _ = cross_aggregate_all(&uploaded, &[0, 0], 0.9);
    }

    #[test]
    fn identical_models_are_a_fixed_point() {
        let uploaded = vec![vec![1.0, -2.0, 3.0]; 3];
        let fused = cross_aggregate_all(&uploaded, &[1, 2, 0], 0.9);
        for f in &fused {
            assert_eq!(f, &uploaded[0]);
        }
        assert!((l2_norm(&global_model(&fused)) - l2_norm(&uploaded[0])).abs() < 1e-6);
    }

    #[test]
    fn parallel_path_matches_serial_path_bitwise() {
        // K·d above the parallel threshold: 10 models × 10_000 scalars.
        let k = 10usize;
        let dim = 10_000usize;
        let uploaded: Vec<Vec<f32>> = (0..k)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 131 + j * 17) % 97) as f32 * 0.21 - 10.0)
                    .collect()
            })
            .collect();
        let collaborators: Vec<usize> = (0..k).map(|i| (i + 1) % k).collect();
        // Parallel (threshold crossed) vs per-model serial kernel.
        let parallel = cross_aggregate_all(&uploaded, &collaborators, 0.99);
        for (i, fused) in parallel.iter().enumerate() {
            let serial = cross_aggregate(&uploaded[i], &uploaded[collaborators[i]], 0.99);
            assert_eq!(
                fused.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "model {i} differs between parallel and serial paths"
            );
        }
    }

    #[test]
    fn median_ignores_a_minority_outlier() {
        let uploads = vec![
            vec![1.0f32, -2.0, 3.0],
            vec![1.5, -1.0, 2.0],
            vec![1e6, 1e6, -1e6], // one Byzantine upload
        ];
        assert_eq!(coordinate_median(&uploads), vec![1.5, -1.0, 2.0]);
    }

    #[test]
    fn even_median_averages_the_two_middle_values() {
        let uploads = vec![vec![1.0f32], vec![3.0], vec![100.0], vec![-50.0]];
        assert_eq!(coordinate_median(&uploads), vec![2.0]);
    }

    #[test]
    fn trimmed_mean_drops_both_tails() {
        let uploads = vec![
            vec![-1e9f32],
            vec![2.0],
            vec![4.0],
            vec![6.0],
            vec![1e9],
        ];
        // trim 0.2 of 5 drops one per end: mean of {2, 4, 6}.
        assert_eq!(trimmed_mean(&uploads, 0.2), vec![4.0]);
        assert_eq!(trim_count(5, 0.2), 1);
        // trim 0 is the plain coordinate mean of finite values.
        let plain = vec![vec![1.0f32], vec![3.0]];
        assert_eq!(trimmed_mean(&plain, 0.0), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "trim fraction must lie in [0, 0.5)")]
    fn trim_of_one_half_is_rejected() {
        let _ = trimmed_mean(&[vec![1.0f32], vec![2.0]], 0.5);
    }

    #[test]
    fn krum_picks_the_most_corroborated_upload() {
        // Three honest uploads in a tight cluster, one far away: Krum with
        // f = 1 must pick from the cluster.
        let uploads = vec![
            vec![0.0f32, 0.1],
            vec![0.1, 0.0],
            vec![0.05, 0.05],
            vec![50.0, -50.0],
        ];
        let chosen = krum_select(&uploads, 1);
        assert!(chosen < 3, "Krum selected the outlier ({chosen})");
        // Multi-Krum with m = 3 selects exactly the honest cluster, in
        // ascending index order.
        assert_eq!(multi_krum_select(&uploads, 1, 3), vec![0, 1, 2]);
    }

    #[test]
    fn krum_breaks_exact_score_ties_by_lowest_index() {
        // Two identical pairs: all scores tie pairwise, so selection must
        // fall back to canonical index order.
        let uploads = vec![vec![1.0f32], vec![1.0], vec![1.0], vec![1.0]];
        assert_eq!(krum_select(&uploads, 1), 0);
        assert_eq!(multi_krum_select(&uploads, 1, 2), vec![0, 1]);
    }

    #[test]
    fn norm_bounding_clips_exactly_at_the_threshold() {
        let anchor = vec![0.0f32, 0.0];
        // Upload 1: delta (3, 4), norm 5 — clipped by exactly 2/5.
        // Upload 2: delta (0.6, 0.8), norm 1 — inside the bound, untouched.
        let uploads = vec![vec![3.0f32, 4.0], vec![0.6, 0.8]];
        let out = norm_bounded_mean(&anchor, &uploads, 2.0);
        // Clipped deltas: (1.2, 1.6) and (0.6, 0.8); mean (0.9, 1.2).
        assert!((out[0] - 0.9).abs() < 1e-6 && (out[1] - 1.2).abs() < 1e-6);
        let step = l2_norm(&out);
        assert!(step <= 2.0 + 1e-6, "aggregate step {step} exceeds the bound");
    }

    #[test]
    fn robust_rules_agree_with_their_kernels_and_report_breakdowns() {
        let anchor = vec![0.0f32; 3];
        let uploads = vec![
            vec![1.0f32, 2.0, 3.0],
            vec![2.0, 3.0, 4.0],
            vec![9.0, -9.0, 9.0],
        ];
        assert_eq!(
            RobustRule::Median.aggregate(&anchor, &uploads),
            coordinate_median(&uploads)
        );
        assert_eq!(
            RobustRule::TrimmedMean { trim: 0.34 }.aggregate(&anchor, &uploads),
            trimmed_mean(&uploads, 0.34)
        );
        let krum = RobustRule::Krum { f: 1, m: 2 }.aggregate(&anchor, &uploads);
        let selected = multi_krum_select(&uploads, 1, 2);
        let views: Vec<&[f32]> = selected.iter().map(|&i| uploads[i].as_slice()).collect();
        assert_eq!(krum, average(&views));
        assert_eq!(
            RobustRule::NormBound { max_norm: 1.5 }.aggregate(&anchor, &uploads),
            norm_bounded_mean(&anchor, &uploads, 1.5)
        );
        assert_eq!(RobustRule::Median.max_byzantine(7), 3);
        assert_eq!(RobustRule::TrimmedMean { trim: 0.3 }.max_byzantine(10), 3);
        assert_eq!(RobustRule::Krum { f: 2, m: 1 }.max_byzantine(10), 2);
        assert_eq!(RobustRule::NormBound { max_norm: 1.0 }.max_byzantine(10), 0);
        assert_eq!(RobustRule::Median.label(), "median");
    }

    #[test]
    fn robust_parallel_paths_match_serial_bitwise() {
        // n·d above the parallel threshold: 8 uploads × 16k scalars.
        let n = 8usize;
        let dim = 16_384usize;
        let uploads: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 37 + j * 13) % 101) as f32 * 0.37 - 18.0)
                    .collect()
            })
            .collect();
        // Serial references computed over a below-threshold prefix dimension
        // would not exercise the same columns, so compute them per-coordinate
        // by hand instead.
        let median = coordinate_median(&uploads);
        let trimmed = trimmed_mean(&uploads, 0.25);
        for coord in [0usize, 1, 511, 1023, 1024, dim - 1] {
            let mut column: Vec<f32> = uploads.iter().map(|u| u[coord]).collect();
            column.sort_unstable_by(f32::total_cmp);
            let expect_median = 0.5 * (column[n / 2 - 1] + column[n / 2]);
            assert_eq!(median[coord].to_bits(), expect_median.to_bits());
            let cut = trim_count(n, 0.25);
            let kept = &column[cut..n - cut];
            let expect_trim = kept.iter().sum::<f32>() / kept.len() as f32;
            assert_eq!(trimmed[coord].to_bits(), expect_trim.to_bits());
        }
    }

    #[test]
    fn into_variants_reuse_the_given_buffers() {
        let uploaded = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let mut buffers = [vec![9.0f32, 9.0], vec![9.0, 9.0]];
        let pointers: Vec<*const f32> = buffers.iter().map(|b| b.as_ptr()).collect();
        {
            let mut targets: Vec<&mut [f32]> =
                buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
            cross_aggregate_all_into(&mut targets, &uploaded, &[1, 0], 0.75);
        }
        for (buffer, ptr) in buffers.iter().zip(pointers) {
            assert_eq!(buffer.as_ptr(), ptr, "buffer was reallocated");
        }
        assert_eq!(buffers[0], cross_aggregate(&uploaded[0], &uploaded[1], 0.75));
        assert_eq!(buffers[1], cross_aggregate(&uploaded[1], &uploaded[0], 0.75));
    }
}
