//! 2-D convolution layer implemented with `im2col`.

use crate::layer::{Layer, Param};
use fedcross_tensor::conv::{col2im, col2im_into, im2col, im2col_into, im2col_shape, Conv2dGeom};
use fedcross_tensor::linalg::transpose_into;
use fedcross_tensor::{init, SeededRng, Tensor, TensorPool};

/// A 2-D convolution with square kernels.
///
/// * input: `[N, in_channels, H, W]`
/// * weight: `[out_channels, in_channels * k * k]` (each row is one filter)
/// * bias: `[out_channels]`
/// * output: `[N, out_channels, OH, OW]`
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    geom: Conv2dGeom,
    in_channels: usize,
    out_channels: usize,
    cached_cols: Option<Tensor>,
    cached_input_dims: Option<Vec<usize>>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform filters and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeededRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = init::kaiming_uniform(&[out_channels, fan_in], fan_in, rng);
        let bias = Tensor::zeros(&[out_channels]);
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            geom: Conv2dGeom::new(kernel, stride, padding),
            in_channels,
            out_channels,
            cached_cols: None,
            cached_input_dims: None,
        }
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Convolution geometry (kernel, stride, padding).
    pub fn geometry(&self) -> Conv2dGeom {
        self.geom
    }

    /// Converts the column-major matmul output `[N*OH*OW, OC]` into the image
    /// layout `[N, OC, OH, OW]`: one tiled `[OH*OW, OC] -> [OC, OH*OW]`
    /// transpose per image (pure data movement, cache-blocked on both sides
    /// instead of the seed's strided scatter).
    fn cols_to_images(mat: &Tensor, n: usize, oc: usize, oh: usize, ow: usize) -> Tensor {
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        Self::cols_to_images_into(mat, n, oc, oh, ow, &mut out);
        out
    }

    fn cols_to_images_into(
        mat: &Tensor,
        n: usize,
        oc: usize,
        oh: usize,
        ow: usize,
        out: &mut Tensor,
    ) {
        assert_eq!(out.numel(), n * oc * oh * ow, "wrong image buffer size");
        out.reshape_in_place(&[n, oc, oh, ow]);
        let spatial = oh * ow;
        let data = mat.data();
        let od = out.data_mut();
        for ni in 0..n {
            transpose_into(
                &data[ni * spatial * oc..(ni + 1) * spatial * oc],
                spatial,
                oc,
                &mut od[ni * oc * spatial..(ni + 1) * oc * spatial],
            );
        }
    }

    /// Converts an image-layout gradient `[N, OC, OH, OW]` back into the
    /// column-major layout `[N*OH*OW, OC]` (the inverse tiled transpose).
    fn images_to_cols(img: &Tensor) -> Tensor {
        let dims = img.dims();
        let (n, oc, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        let mut out = Tensor::zeros(&[n * oh * ow, oc]);
        Self::images_to_cols_into(img, &mut out);
        out
    }

    fn images_to_cols_into(img: &Tensor, out: &mut Tensor) {
        let dims = img.dims();
        let (n, oc, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        let spatial = oh * ow;
        assert_eq!(out.numel(), n * spatial * oc, "wrong col buffer size");
        out.reshape_in_place(&[n * spatial, oc]);
        let data = img.data();
        let od = out.data_mut();
        for ni in 0..n {
            transpose_into(
                &data[ni * oc * spatial..(ni + 1) * oc * spatial],
                oc,
                spatial,
                &mut od[ni * spatial * oc..(ni + 1) * spatial * oc],
            );
        }
    }

    /// Accumulates dW and db from `grad_output`, returning the pooled
    /// column-layout gradient `[N*OH*OW, OC]` for the caller's input-gradient
    /// step (shared by the pooled backward forms; bitwise identical to the
    /// allocating backward).
    fn accumulate_param_grads(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let cols = self
            .cached_cols
            .as_ref()
            .expect("backward called before forward");

        let mut grad_mat =
            pool.take_uninit(&[grad_output.numel() / self.out_channels, self.out_channels]);
        Self::images_to_cols_into(grad_output, &mut grad_mat); // [N*OH*OW, OC]

        // dW = dY^T · cols  -> [OC, CKK]
        let mut grad_w = pool.take_uninit(&[self.out_channels, cols.dims()[1]]);
        grad_mat.matmul_at_b_into(cols, &mut grad_w);
        self.weight.grad.add_assign(&grad_w);
        pool.recycle(grad_w);

        // db = column sums of dY, via a zeroed scratch to keep the summation
        // order of the allocating form.
        let oc = self.out_channels;
        let mut grad_b = pool.take_zeroed(&[oc]);
        for row in grad_mat.data().chunks(oc) {
            for (g, &v) in grad_b.data_mut().iter_mut().zip(row) {
                *g += v;
            }
        }
        self.bias.grad.add_assign(&grad_b);
        pool.recycle(grad_b);
        grad_mat
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "Conv2d expects [N, C, H, W] input");
        assert_eq!(
            input.dims()[1],
            self.in_channels,
            "Conv2d input channel mismatch"
        );
        let dims = input.dims().to_vec();
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let oh = self.geom.out_size(h);
        let ow = self.geom.out_size(w);

        let cols = im2col(input, self.geom);
        // [N*OH*OW, CKK] x [OC, CKK]^T -> [N*OH*OW, OC]
        let mut mat = cols.matmul_a_bt(&self.weight.value);
        mat = mat.add_row_broadcast(&self.bias.value);

        self.cached_cols = Some(cols);
        self.cached_input_dims = Some(dims);
        Self::cols_to_images(&mat, n, self.out_channels, oh, ow)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cols = self
            .cached_cols
            .as_ref()
            .expect("backward called before forward");
        let input_dims = self
            .cached_input_dims
            .as_ref()
            .expect("backward called before forward");

        let grad_mat = Self::images_to_cols(grad_output); // [N*OH*OW, OC]

        // dW = dY^T · cols  -> [OC, CKK]
        let grad_w = grad_mat.matmul_at_b(cols);
        self.weight.grad.add_assign(&grad_w);

        // db = column sums of dY
        let oc = self.out_channels;
        let mut grad_b = vec![0f32; oc];
        for row in grad_mat.data().chunks(oc) {
            for (g, &v) in grad_b.iter_mut().zip(row) {
                *g += v;
            }
        }
        self.bias.grad.add_assign(&Tensor::from_vec(grad_b, &[oc]));

        // dCols = dY · W  -> [N*OH*OW, CKK], then fold back to image space.
        let grad_cols = grad_mat.matmul(&self.weight.value);
        col2im(&grad_cols, input_dims, self.geom)
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        assert_eq!(input.rank(), 4, "Conv2d expects [N, C, H, W] input");
        assert_eq!(
            input.dims()[1],
            self.in_channels,
            "Conv2d input channel mismatch"
        );
        let (n, h, w) = (input.dims()[0], input.dims()[2], input.dims()[3]);
        let oh = self.geom.out_size(h);
        let ow = self.geom.out_size(w);

        if let Some(old) = self.cached_cols.take() {
            pool.recycle(old);
        }
        let (col_rows, col_len) = im2col_shape(input, self.geom);
        let mut cols = pool.take_uninit(&[col_rows, col_len]);
        im2col_into(input, self.geom, &mut cols);
        // [N*OH*OW, CKK] x [OC, CKK]^T -> [N*OH*OW, OC]
        let mut mat = pool.take_uninit(&[col_rows, self.out_channels]);
        cols.matmul_a_bt_into(&self.weight.value, &mut mat);
        mat.add_row_broadcast_assign(&self.bias.value);

        self.cached_cols = Some(cols);
        match &mut self.cached_input_dims {
            Some(cached) => {
                cached.clear();
                cached.extend_from_slice(input.dims());
            }
            // alloc: pooled — dims cached on first call; steady rounds take the Some branch
            None => self.cached_input_dims = Some(input.dims().to_vec()),
        }
        let mut out = pool.take_uninit(&[n, self.out_channels, oh, ow]);
        Self::cols_to_images_into(&mat, n, self.out_channels, oh, ow, &mut out);
        pool.recycle(mat);
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let grad_mat = self.accumulate_param_grads(grad_output, pool);

        // dCols = dY · W  -> [N*OH*OW, CKK], then fold back to image space.
        let input_dims = self
            .cached_input_dims
            .as_deref()
            .expect("backward called before forward");
        let mut grad_cols = pool.take_uninit(&[grad_mat.dims()[0], self.weight.value.dims()[1]]);
        grad_mat.matmul_into(&self.weight.value, &mut grad_cols);
        pool.recycle(grad_mat);
        let mut grad_in = pool.take_uninit(input_dims);
        col2im_into(&grad_cols, input_dims, self.geom, &mut grad_in);
        pool.recycle(grad_cols);
        grad_in
    }

    fn backward_into_discard(&mut self, grad_output: &Tensor, pool: &mut TensorPool) {
        // First-layer form: dCols / col2im (the input gradient) are skipped.
        let grad_mat = self.accumulate_param_grads(grad_output, pool);
        pool.recycle(grad_mat);
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic: only parameters and forward caches.
    }

    fn config_hash(&self, hash: u64) -> u64 {
        // The whole geometry: the weight is stored im2col-style as
        // [OC, IC·K²], so even full tensor dims cannot separate a
        // kernel/channel trade-off (4ch·k=2 and 16ch·k=1 share [4, 64]) —
        // the kernel size must be mixed explicitly, alongside stride and
        // padding which live in no tensor at all.
        let hash = crate::fnv1a_mix(hash, &self.geom.kernel.to_le_bytes());
        let hash = crate::fnv1a_mix(hash, &self.geom.stride.to_le_bytes());
        crate::fnv1a_mix(hash, &self.geom.padding.to_le_bytes())
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_follows_geometry() {
        let mut rng = SeededRng::new(0);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, true);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);

        let mut strided = Conv2d::new(3, 4, 3, 2, 1, &mut rng);
        let y2 = strided.forward(&x, true);
        assert_eq!(y2.dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn all_ones_filter_computes_patch_sums() {
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        conv.weight.value = Tensor::ones(&[1, 9]);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let y = conv.forward(&x, true);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[45.0, 54.0, 81.0, 90.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut rng = SeededRng::new(2);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(vec![1.0, 0.0], &[2, 1]);
        conv.bias.value = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = conv.forward(&x, true);
        // Channel 0 = identity + 10, channel 1 = 0 + 20.
        assert_eq!(y.data()[0..4], [11.0, 12.0, 13.0, 14.0]);
        assert_eq!(y.data()[4..8], [20.0, 20.0, 20.0, 20.0]);
    }

    #[test]
    fn weight_gradients_match_finite_differences() {
        let mut rng = SeededRng::new(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = init::normal(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
        let out = conv.forward(&x, true);
        conv.zero_grads();
        conv.backward(&Tensor::ones(out.dims()));

        let eps = 1e-2;
        for &(i, j) in &[(0usize, 0usize), (1, 5), (2, 17)] {
            let orig = conv.weight.value.get(&[i, j]);
            conv.weight.value.set(&[i, j], orig + eps);
            let plus = conv.forward(&x, true).sum();
            conv.weight.value.set(&[i, j], orig - eps);
            let minus = conv.forward(&x, true).sum();
            conv.weight.value.set(&[i, j], orig);
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = conv.weight.grad.get(&[i, j]);
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "weight ({i},{j}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = SeededRng::new(4);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = init::normal(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
        let out = conv.forward(&x, true);
        conv.zero_grads();
        let grad_in = conv.backward(&Tensor::ones(out.dims()));

        let eps = 1e-2;
        for &idx in &[0usize, 5, 10, 15] {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let fp = conv.forward(&plus, true).sum();
            let fm = conv.forward(&minus, true).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data()[idx]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "input {idx}: numeric {numeric} vs analytic {}",
                grad_in.data()[idx]
            );
        }
    }

    #[test]
    fn bias_gradient_counts_every_output_pixel() {
        let mut rng = SeededRng::new(5);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let out = conv.forward(&x, true);
        conv.zero_grads();
        conv.backward(&Tensor::ones(out.dims()));
        // Each of the two filters sees 4x4 = 16 output pixels with dY = 1.
        assert_eq!(conv.bias.grad.data(), &[16.0, 16.0]);
    }

    #[test]
    fn param_count_matches_filter_bank() {
        let mut rng = SeededRng::new(6);
        let conv = Conv2d::new(3, 16, 3, 1, 1, &mut rng);
        assert_eq!(conv.param_count(), 16 * 27 + 16);
        assert_eq!(conv.out_channels(), 16);
        assert_eq!(conv.name(), "conv2d");
    }
}
