//! Reasoned-marker parsing for the allocation-discipline (A) and
//! panic-hygiene (P) rules.
//!
//! Markers are the audit-trail counterpart of waivers: where a
//! `lint: allow(...)` waiver *exempts* a site, a marker *classifies* it —
//! an allocation is `pooled` (arena cache miss), `cold` (off the
//! steady-state path) or `bounded` (small, O(K)-ish bookkeeping), and a
//! panic site documents why it cannot fire or why dying is correct.
//!
//! To keep prose that merely *mentions* marker syntax from registering as
//! a marker (and then tripping the stale-marker rule W002), a marker must
//! **lead** its comment: after stripping the `//` / `/*` sigils and
//! whitespace, the comment text must start with `alloc:` or `panic:`.

use crate::strip::Stripped;

/// How many comment lines above a site are searched for markers — the same
/// window the waiver lookup uses.
pub const LOOKBACK_LINES: usize = 3;

/// The three allocation classifications accepted by rule A001.
pub const ALLOC_KINDS: [&str; 3] = ["pooled", "cold", "bounded"];

/// One `alloc:` marker found in the comment channel.
#[derive(Debug, Clone)]
pub struct AllocMarker {
    /// 0-based line the marker sits on.
    pub line: usize,
    /// The classification word as written (validated against
    /// [`ALLOC_KINDS`] by the rule).
    pub kind: String,
    /// The reason text after the separator, if any.
    pub reason: Option<String>,
}

/// One `panic:` marker found in the comment channel.
#[derive(Debug, Clone)]
pub struct PanicMarker {
    /// 0-based line the marker sits on.
    pub line: usize,
    /// The reason text, if any.
    pub reason: Option<String>,
}

/// Strips comment sigils and leading whitespace: `// x`, `/// x`, `//! x`,
/// `/* x` all yield `x …`.
fn comment_text(comment: &str) -> &str {
    comment.trim_start_matches(['/', '*', '!', ' ', '\t'])
}

/// Splits `pooled — reason` / `cold - reason` / `bounded: reason` into the
/// leading word and the reason after the separator.
fn split_reason(rest: &str) -> (String, Option<String>) {
    let rest = rest.trim_start();
    let word_end = rest
        .find(|c: char| !c.is_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    let word = rest[..word_end].to_string();
    let after = rest[word_end..]
        .trim_start()
        .trim_start_matches(['\u{2014}', '\u{2013}', '-', ':'])
        .trim();
    let reason = if after.is_empty() {
        None
    } else {
        Some(after.to_string())
    };
    (word, reason)
}

/// All `alloc:` markers in a file's comment channel.
pub fn alloc_markers(s: &Stripped) -> Vec<AllocMarker> {
    let mut out = Vec::new();
    for (line, comment) in s.comments.iter().enumerate() {
        let text = comment_text(comment);
        if let Some(rest) = text.strip_prefix("alloc:") {
            let (kind, reason) = split_reason(rest);
            out.push(AllocMarker { line, kind, reason });
        }
    }
    out
}

/// All `panic:` markers in a file's comment channel.
pub fn panic_markers(s: &Stripped) -> Vec<PanicMarker> {
    let mut out = Vec::new();
    for (line, comment) in s.comments.iter().enumerate() {
        let text = comment_text(comment);
        if let Some(rest) = text.strip_prefix("panic:") {
            let reason = {
                let r = rest.trim_start_matches(['\u{2014}', '\u{2013}', '-', ':']).trim();
                if r.is_empty() {
                    None
                } else {
                    Some(r.to_string())
                }
            };
            out.push(PanicMarker { line, reason });
        }
    }
    out
}

/// The nearest alloc marker covering `line` (same line or up to
/// [`LOOKBACK_LINES`] above), if any.
pub fn alloc_marker_for(markers: &[AllocMarker], line: usize) -> Option<&AllocMarker> {
    let lo = line.saturating_sub(LOOKBACK_LINES);
    markers
        .iter()
        .rev()
        .find(|m| m.line >= lo && m.line <= line)
}

/// The nearest panic marker covering `line`, if any.
pub fn panic_marker_for(markers: &[PanicMarker], line: usize) -> Option<&PanicMarker> {
    let lo = line.saturating_sub(LOOKBACK_LINES);
    markers
        .iter()
        .rev()
        .find(|m| m.line >= lo && m.line <= line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::strip;

    #[test]
    fn alloc_marker_parses_kind_and_reason() {
        let s = strip("// alloc: pooled \u{2014} arena cache miss, first step only\nlet v = vec![0f32; n];\n");
        let m = alloc_markers(&s);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].kind, "pooled");
        assert_eq!(m[0].reason.as_deref(), Some("arena cache miss, first step only"));
    }

    #[test]
    fn alloc_marker_without_reason_is_kept_but_reasonless() {
        let s = strip("// alloc: cold\nlet v = Vec::new();\n");
        let m = alloc_markers(&s);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].kind, "cold");
        assert!(m[0].reason.is_none());
    }

    #[test]
    fn prose_mentions_do_not_register() {
        let s = strip(
            "// the site carries an `alloc: pooled` marker as documented\n// see panic: discussion in the docs? no: this line DOES start with a word\nlet x = 1;\n",
        );
        assert!(alloc_markers(&s).is_empty());
        assert!(panic_markers(&s).is_empty());
    }

    #[test]
    fn inline_trailing_markers_register() {
        let s = strip("let v = data.to_vec(); // alloc: bounded - K-sized partner list\nx.unwrap(); // panic: checked non-empty above\n");
        let a = alloc_markers(&s);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, "bounded");
        let p = panic_markers(&s);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].reason.as_deref(), Some("checked non-empty above"));
    }

    #[test]
    fn lookback_window_is_three_lines() {
        let s = strip("// alloc: cold — setup\nlet a = 1;\nlet b = 2;\nlet c = 3;\nlet v = Vec::new();\n");
        let m = alloc_markers(&s);
        assert!(alloc_marker_for(&m, 3).is_some());
        assert!(alloc_marker_for(&m, 4).is_none(), "line 4 is beyond the window");
    }
}
