//! Checkpoint and resume: stop a FedCross run half-way, persist its state
//! (middleware models + learning curve) to JSON, reload it and finish the run.
//!
//! FedCross' training state is the middleware model list — the deployable
//! global model is derived from it — so a production server has to checkpoint
//! the whole list, not one model. This example demonstrates the round trip and
//! verifies the resumed run keeps improving.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin checkpoint_resume
//! ```

use fedcross::{FedCross, FedCrossConfig};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{Checkpoint, FederatedAlgorithm, LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(55);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 12,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );

    let fed_config = FedCrossConfig {
        alpha: 0.9,
        ..Default::default()
    };
    let sim_config = SimulationConfig {
        rounds: 10,
        clients_per_round: 4,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 13,
    };

    // Phase 1: train for 10 rounds and checkpoint.
    let mut algo = FedCross::new(fed_config, template.params_flat(), 4);
    let first = Simulation::new(sim_config, &data, template.clone_model()).run(&mut algo);
    println!(
        "phase 1: {} rounds, final accuracy {:.1}%",
        sim_config.rounds,
        first.final_accuracy_pct()
    );

    let checkpoint_path = std::env::temp_dir().join("fedcross-example-checkpoint.json");
    let checkpoint = Checkpoint::multi_model(
        algo.name(),
        sim_config.rounds,
        algo.global_params(),
        algo.middleware_vecs(),
        first.history.clone(),
    );
    checkpoint.save(&checkpoint_path).expect("checkpoint saves");
    println!(
        "checkpointed {} middleware models ({} parameters each) to {}",
        checkpoint.middleware.as_ref().map_or(0, Vec::len),
        checkpoint.param_count(),
        checkpoint_path.display()
    );

    // Phase 2: pretend the server restarted — reload and continue training.
    let restored = Checkpoint::load(&checkpoint_path).expect("checkpoint loads");
    let mut resumed = FedCross::with_initial_models(
        fed_config,
        restored.middleware.clone().expect("FedCross checkpoints store middleware"),
    );
    let mut resume_config = sim_config;
    resume_config.rounds = 10;
    resume_config.seed = 14; // fresh client-selection stream for the new rounds
    let second = Simulation::new(resume_config, &data, template.clone_model()).run(&mut resumed);
    println!(
        "phase 2 (resumed after restart): {} more rounds, final accuracy {:.1}%",
        resume_config.rounds,
        second.final_accuracy_pct()
    );

    let improved = second.best_accuracy_pct() >= first.final_accuracy_pct() - 1.0;
    println!(
        "resumed run kept (or improved) the checkpointed accuracy: {}",
        if improved { "yes" } else { "no" }
    );
    let _ = std::fs::remove_file(&checkpoint_path);
    println!("\nExpected: phase 2 starts from the checkpointed accuracy level instead of from");
    println!("scratch, demonstrating lossless persistence of the multi-model training state.");
}
