//! Collaborative-model selection playground: watch how the three CoModelSel
//! strategies shape the *similarity* of FedCross' middleware models over
//! training, and how that correlates with global-model accuracy (the
//! mechanism behind the paper's Table III).
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin strategy_playground
//! ```

use fedcross::{FedCross, FedCrossConfig, SelectionStrategy};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(33);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 16,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(1.0),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );

    let sim_config = SimulationConfig {
        rounds: 16,
        clients_per_round: 4,
        eval_every: 4,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 29,
    };

    for strategy in [
        SelectionStrategy::InOrder,
        SelectionStrategy::HighestSimilarity,
        SelectionStrategy::LowestSimilarity,
    ] {
        println!("\nstrategy: {strategy} (alpha = 0.9)");
        let config = FedCrossConfig {
            alpha: 0.9,
            strategy,
            measure: Default::default(),
            acceleration: Default::default(),
        };
        let mut algo = FedCross::new(config, template.params_flat(), sim_config.clients_per_round);
        // Drive the simulation and report middleware similarity alongside accuracy.
        let result = Simulation::new(sim_config, &data, template.clone_model())
            .run_with_observer(&mut algo, |round, record| {
                println!(
                    "  round {:>3}: global accuracy {:>5.1}%",
                    round,
                    record.accuracy * 100.0
                );
            });
        println!(
            "  final middleware similarity: {:.4}   best accuracy: {:.1}%",
            algo.middleware_similarity(),
            result.best_accuracy_pct()
        );
    }
    println!("\nExpected: every strategy drives the middleware models towards each other;");
    println!("highest-similarity tends to produce the weakest global model (paper Table III).");
}
