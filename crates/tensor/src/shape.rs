//! Shape and stride bookkeeping for row-major dense tensors.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// Maximum tensor rank the inline shape representation supports.
///
/// Nothing in the workspace exceeds rank 4 (`[N, C, H, W]` image batches);
/// 6 leaves headroom. Storing dims inline (instead of a `Vec`) makes shape
/// construction, cloning and reshaping allocation-free — a [`crate::Tensor`]
/// checked out of the [`crate::TensorPool`] arena touches the heap exactly
/// zero times, which is what lets the zero-allocation training plane pin
/// steady-state steps to zero allocations.
pub const MAX_RANK: usize = 6;

/// A tensor shape: an ordered list of dimension extents.
///
/// Shapes are stored in row-major (C) order: the last dimension is contiguous
/// in memory. A rank-0 shape (empty dimension list) denotes a scalar with one
/// element. The extents live in a fixed inline array (see [`MAX_RANK`]), so
/// `Shape` values never allocate; unused trailing slots are kept zeroed so
/// the derived equality/hashing stay correct.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    ///
    /// # Panics
    /// Panics if more than [`MAX_RANK`] dimensions are given.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "tensor rank {} exceeds MAX_RANK {}",
            dims.len(),
            MAX_RANK
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Self {
            dims: inline,
            rank: dims.len(),
        }
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Returns the number of dimensions (the rank).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Returns the total number of elements the shape describes.
    ///
    /// A rank-0 shape has one element (a scalar).
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Returns the extent of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims()[i]
    }

    /// Returns row-major strides (in elements) for this shape.
    ///
    /// `strides()[i]` is the number of elements to skip to advance by one along
    /// dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.rank];
        let mut acc = 1usize;
        for (i, d) in self.dims().iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// Returns `None` if the index has the wrong rank or any component is out
    /// of bounds.
    pub fn flat_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.rank {
            return None;
        }
        // Row-major: walk dimensions left to right, scaling by each extent.
        let mut offset = 0usize;
        for (&i, &d) in index.iter().zip(self.dims()) {
            if i >= d {
                return None;
            }
            offset = offset * d + i;
        }
        Some(offset)
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    ///
    /// Returns `None` if the offset is out of range.
    pub fn unflatten_index(&self, mut offset: usize) -> Option<Vec<usize>> {
        if offset >= self.numel() {
            return None;
        }
        let strides = self.strides();
        let mut index = vec![0usize; self.rank];
        for (i, &s) in strides.iter().enumerate() {
            index[i] = offset / s;
            offset %= s;
        }
        Some(index)
    }

    /// Returns `true` when both shapes describe the same extents.
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

// Manual serde impls preserving the historical `{"dims": [...]}` encoding of
// the old Vec-backed derive, so serialized checkpoints stay compatible.
impl Serialize for Shape {
    fn to_value(&self) -> Value {
        Value::Object(vec![("dims".to_string(), self.dims().to_vec().to_value())])
    }
}

impl Deserialize for Shape {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let dims_value = value
            .get("dims")
            .ok_or_else(|| SerdeError::custom("Shape: missing field `dims`"))?;
        let dims = Vec::<usize>::from_value(dims_value)?;
        if dims.len() > MAX_RANK {
            return Err(SerdeError::custom(format!(
                "Shape: rank {} exceeds MAX_RANK {MAX_RANK}",
                dims.len()
            )));
        }
        Ok(Shape::new(&dims))
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_empty_shape_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn numel_multiplies_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.numel() {
            let idx = s.unflatten_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx), Some(flat));
        }
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert_eq!(s.flat_index(&[2, 0]), None);
        assert_eq!(s.flat_index(&[0, 0, 0]), None);
    }

    #[test]
    fn unflatten_rejects_out_of_range() {
        let s = Shape::new(&[2, 2]);
        assert_eq!(s.unflatten_index(4), None);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn dim_accessor() {
        let s = Shape::new(&[7, 9]);
        assert_eq!(s.dim(0), 7);
        assert_eq!(s.dim(1), 9);
        assert_eq!(s.rank(), 2);
    }

    #[test]
    fn from_vec_and_slice() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert!(a.same_as(&b));
    }

    #[test]
    fn equality_distinguishes_rank_despite_zero_padding() {
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 0]));
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 1]));
        assert_eq!(Shape::new(&[2, 3]), Shape::new(&[2, 3]));
    }

    #[test]
    #[should_panic]
    fn rejects_rank_above_max() {
        let _ = Shape::new(&[1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn serde_roundtrip_keeps_dims_encoding() {
        let s = Shape::new(&[4, 2, 8]);
        let v = s.to_value();
        assert!(v.get("dims").is_some(), "keeps the historical object form");
        let back = Shape::from_value(&v).unwrap();
        assert_eq!(back, s);
    }
}
