//! The [`Layer`] trait and the [`Param`] (value + gradient) pair.

use fedcross_tensor::{SeededRng, Tensor, TensorPool};

/// A trainable parameter: its current value and the gradient accumulated by
/// the most recent backward pass(es).
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter from an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros_like(&value);
        Self { value, grad }
    }

    /// Number of scalar values in the parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A differentiable network layer with explicit forward and backward passes.
///
/// Layers cache whatever they need from the forward pass (inputs, masks,
/// im2col matrices, per-timestep LSTM states) to compute gradients in
/// [`Layer::backward`]. Gradients accumulate into each [`Param::grad`]; the
/// optimizer reads and the caller clears them.
pub trait Layer: Send {
    /// Forward pass. `train` enables training-time behaviour such as dropout.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: receives `dL/d(output)` and returns `dL/d(input)`,
    /// accumulating parameter gradients internally.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Pooled forward pass: like [`Layer::forward`], but every transient
    /// buffer (the returned activation, internal caches, scratch matrices) is
    /// checked out of `pool` and previous caches are recycled into it, so a
    /// steady-state training loop performs zero full-activation allocations.
    ///
    /// Must be **bitwise identical** to [`Layer::forward`] (enforced by the
    /// training-plane equivalence tests). The default implementation falls
    /// back to the allocating form, so external layers keep working without
    /// changes — they just don't benefit from the arena.
    fn forward_into(&mut self, input: &Tensor, train: bool, pool: &mut TensorPool) -> Tensor {
        let _ = pool;
        self.forward(input, train)
    }

    /// Pooled backward pass; see [`Layer::forward_into`]. The returned
    /// gradient is pool-owned and should be recycled by the caller once
    /// consumed.
    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let _ = pool;
        self.backward(grad_output)
    }

    /// Pooled backward pass for a chain's **first** layer: parameter
    /// gradients are accumulated exactly as in [`Layer::backward_into`], but
    /// the caller never reads `dL/d(input)`, so layers whose input gradient
    /// is expensive (matmul + col2im for convolutions, a matmul for linear)
    /// override this to skip computing it entirely. Parameter gradients —
    /// the only observable output — are bit-for-bit those of the full
    /// backward pass.
    fn backward_into_discard(&mut self, grad_output: &Tensor, pool: &mut TensorPool) {
        let grad = self.backward_into(grad_output, pool);
        pool.recycle(grad);
    }

    /// Immutable access to this layer's parameters (possibly empty).
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to this layer's parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Calls `f` on each parameter in [`Layer::params`] order without
    /// building a `Vec` — the allocation-free form the per-step optimizer
    /// path uses. The default delegates to [`Layer::params`]; layers override
    /// it to visit their fields directly.
    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for p in self.params() {
            f(p);
        }
    }

    /// Mutable form of [`Layer::visit_params`].
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for p in self.params_mut() {
            f(p);
        }
    }

    /// Resets all parameter gradients to zero.
    fn zero_grads(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }

    /// Restores the layer's *stochastic* state (anything that evolves as the
    /// layer is used but is not a parameter — e.g. the dropout mask RNG) to
    /// the state a fresh construction-time copy of the layer would have.
    ///
    /// Together with [`crate::Model::set_params_flat`] this makes a cached,
    /// previously trained layer indistinguishable from a freshly cloned one:
    /// the persistent client-worker plane calls it on every dispatch so that
    /// reusing a model across federated rounds is **bitwise identical** to
    /// cloning the template each round. Layers whose reset needs fresh
    /// entropy may draw it (deterministically) from `rng`; [`Dropout`]
    /// deliberately ignores `rng` and rewinds its own forked stream to its
    /// construction seed, because that is exactly the state a clone of a
    /// never-trained template carries.
    ///
    /// The default is a no-op, which is correct for every layer whose only
    /// cross-step state is parameters and forward caches (caches are
    /// overwritten by the next forward pass before they are read).
    ///
    /// [`Dropout`]: crate::layers::Dropout
    fn reset_stochastic_state(&mut self, rng: &mut SeededRng) {
        let _ = rng;
    }

    /// Folds this layer's *value-level* configuration — anything that changes
    /// behaviour but lives in neither a parameter tensor nor the layer name:
    /// a dropout probability and its mask-stream seed, a convolution's
    /// stride/padding, a pooling window — into an FNV-1a hash state and
    /// returns the new state (use `crate::fnv1a_mix`). Together with the
    /// layer-name and parameter-size sequence this makes
    /// [`crate::Model::param_layout_hash`] distinguish templates that would
    /// otherwise collide, which is what the persistent worker pool keys
    /// cached-model compatibility on. The default mixes nothing — correct
    /// for layers whose constructor takes no behaviour-affecting values
    /// beyond their parameter shapes.
    fn config_hash(&self, hash: u64) -> u64 {
        hash
    }

    /// Short layer name for debugging / summaries.
    fn name(&self) -> &'static str;

    /// Total number of scalar parameters in the layer.
    fn param_count(&self) -> usize {
        let mut total = 0;
        self.visit_params(&mut |p| total += p.numel());
        total
    }

    /// Clones the layer behind a box (parameters, buffers and caches).
    fn clone_layer(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_layer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.numel(), 6);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn param_zero_grad_clears_accumulated_values() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
