//! # fedcross-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! FedCross paper's evaluation (Section IV), plus Criterion micro-benchmarks
//! of the computational kernels.
//!
//! Each table/figure has a dedicated binary (see DESIGN.md §6 for the full
//! index); all of them share the experiment plumbing in this library:
//!
//! * [`TaskSpec`] / [`ModelSpec`] — the dataset × model grid of Table II,
//! * [`ExperimentConfig`] — scale knobs (rounds, clients, participation) with
//!   a reduced default scale suitable for CPU-only runs and a `--full` flag
//!   that restores the paper-scale parameters,
//! * [`run_method`] — builds the task, the model template and the algorithm,
//!   runs the simulation and returns the learning curve,
//! * [`Args`] — a tiny dependency-free CLI parser shared by the binaries,
//! * [`report`] — fixed-width table printing and JSON result dumps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod determinism;
pub mod report;

use fedcross::{build_algorithm, AlgorithmSpec, SelectionStrategy};
use fedcross_data::federated::{
    FederatedDataset, SynthCifar100Config, SynthCifar10Config, SynthFemnistConfig,
    SynthSent140Config, SynthShakespeareConfig,
};
use fedcross_data::synth::images::SynthImageConfig;
use fedcross_data::Heterogeneity;
use fedcross_flsim::engine::SimulationResult;
use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{
    cnn, lstm_classifier, resnet, vgg_lite, CnnConfig, LstmConfig, ResNetConfig, VggConfig,
};
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;

/// Which benchmark task (dataset stand-in) to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskSpec {
    /// CIFAR-10 stand-in with the given heterogeneity.
    Cifar10(Heterogeneity),
    /// CIFAR-100 stand-in with the given heterogeneity.
    Cifar100(Heterogeneity),
    /// FEMNIST stand-in (naturally non-IID).
    Femnist,
    /// Shakespeare stand-in (naturally non-IID, next-character prediction).
    Shakespeare,
    /// Sent140 stand-in (naturally non-IID, binary sentiment).
    Sent140,
}

impl TaskSpec {
    /// Table-friendly label, e.g. `"CIFAR-10 (beta=0.1)"`.
    pub fn label(&self) -> String {
        match self {
            TaskSpec::Cifar10(h) => format!("CIFAR-10 ({})", h.label()),
            TaskSpec::Cifar100(h) => format!("CIFAR-100 ({})", h.label()),
            TaskSpec::Femnist => "FEMNIST".to_string(),
            TaskSpec::Shakespeare => "Shakespeare".to_string(),
            TaskSpec::Sent140 => "Sent140".to_string(),
        }
    }

    /// Whether this is one of the naturally non-IID LEAF stand-ins.
    pub fn is_text(&self) -> bool {
        matches!(self, TaskSpec::Shakespeare | TaskSpec::Sent140)
    }
}

/// Which model family to train (the rows of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// The FedAvg two-conv CNN.
    Cnn,
    /// ResNet-20 (CPU-scaled).
    ResNet20,
    /// VGG-16 style network (CPU-scaled).
    Vgg16,
    /// LSTM classifier (text tasks).
    Lstm,
}

impl ModelSpec {
    /// Table-friendly label.
    pub fn label(&self) -> &'static str {
        match self {
            ModelSpec::Cnn => "CNN",
            ModelSpec::ResNet20 => "ResNet-20",
            ModelSpec::Vgg16 => "VGG-16",
            ModelSpec::Lstm => "LSTM",
        }
    }
}

/// Scale knobs of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Total number of clients `|C|`.
    pub num_clients: usize,
    /// Clients participating per round `K`.
    pub clients_per_round: usize,
    /// Training samples generated per client.
    pub samples_per_client: usize,
    /// Held-out test samples.
    pub test_samples: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Evaluate the global model every `eval_every` rounds.
    pub eval_every: usize,
    /// Client-side local training settings.
    pub local: LocalTrainConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        // Reduced repro scale: the orderings of the paper stabilise well before
        // full convergence at synthetic-data scale (see DESIGN.md §3).
        Self {
            num_clients: 20,
            clients_per_round: 4,
            samples_per_client: 40,
            test_samples: 200,
            rounds: 30,
            eval_every: 2,
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 10,
                lr: 0.05,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            seed: 42,
        }
    }
}

impl ExperimentConfig {
    /// The paper-scale configuration (Section IV-A): 100 clients, 10%
    /// participation, batch 50, five local epochs, SGD(0.01, 0.5). Round
    /// counts remain per-figure and are set by each harness binary.
    pub fn paper_scale() -> Self {
        Self {
            num_clients: 100,
            clients_per_round: 10,
            samples_per_client: 500,
            test_samples: 2000,
            rounds: 2000,
            eval_every: 10,
            local: LocalTrainConfig::default(),
            seed: 42,
        }
    }

    /// A very small scale for smoke tests of the harness itself.
    pub fn smoke() -> Self {
        Self {
            num_clients: 6,
            clients_per_round: 3,
            samples_per_client: 15,
            test_samples: 40,
            rounds: 3,
            eval_every: 1,
            local: LocalTrainConfig {
                epochs: 1,
                batch_size: 8,
                lr: 0.05,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            seed: 42,
        }
    }
}

/// Builds the federated dataset for a task at the configured scale.
///
/// The image stand-ins are deliberately *hardened* relative to the library
/// defaults (overlapping class prototypes, heavier pixel noise): at benchmark
/// scale the easy defaults saturate every method at 100% accuracy, which would
/// erase the between-method differences the paper's tables measure.
pub fn build_task(task: TaskSpec, config: &ExperimentConfig, seed: u64) -> FederatedDataset {
    let mut rng = SeededRng::new(seed);
    match task {
        TaskSpec::Cifar10(h) => FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: config.num_clients,
                samples_per_client: config.samples_per_client,
                test_samples: config.test_samples,
                image: SynthImageConfig {
                    noise_std: 1.2,
                    class_distinctness: 0.35,
                    ..SynthImageConfig::cifar10()
                },
            },
            h,
            &mut rng,
        ),
        TaskSpec::Cifar100(h) => FederatedDataset::synth_cifar100(
            &SynthCifar100Config {
                num_clients: config.num_clients,
                samples_per_client: config.samples_per_client,
                test_samples: config.test_samples,
                image: SynthImageConfig {
                    noise_std: 1.0,
                    class_distinctness: 0.35,
                    ..SynthImageConfig::cifar100()
                },
            },
            h,
            &mut rng,
        ),
        TaskSpec::Femnist => FederatedDataset::synth_femnist(
            &SynthFemnistConfig {
                num_clients: config.num_clients,
                samples_per_client: config.samples_per_client,
                test_samples: config.test_samples,
                image: SynthImageConfig {
                    noise_std: 0.9,
                    class_distinctness: 0.45,
                    ..SynthImageConfig::femnist()
                },
                ..Default::default()
            },
            &mut rng,
        ),
        TaskSpec::Shakespeare => FederatedDataset::synth_shakespeare(
            &SynthShakespeareConfig {
                num_clients: config.num_clients,
                samples_per_client: config.samples_per_client,
                test_samples: config.test_samples,
                ..Default::default()
            },
            &mut rng,
        ),
        TaskSpec::Sent140 => FederatedDataset::synth_sent140(
            &SynthSent140Config {
                num_clients: config.num_clients,
                samples_per_client: config.samples_per_client,
                test_samples: config.test_samples,
                ..Default::default()
            },
            &mut rng,
        ),
    }
}

/// Builds the model template matching a task and model family.
///
/// # Panics
/// Panics if the model family does not fit the task (e.g. an image CNN on a
/// text task).
pub fn build_model(
    model: ModelSpec,
    data: &FederatedDataset,
    seed: u64,
) -> Box<dyn Model> {
    let mut rng = SeededRng::new(seed);
    let classes = data.num_classes();
    let dims = data.test_set().sample_dims().to_vec();
    match model {
        ModelSpec::Lstm => {
            assert_eq!(dims.len(), 1, "LSTM expects [seq_len] samples");
            // The vocabulary is the class space for next-char prediction; for
            // sentiment the tokens range over the generator's vocabulary (64).
            let vocab = classes.max(64);
            lstm_classifier(
                LstmConfig {
                    vocab,
                    embed_dim: 16,
                    hidden_dim: 32,
                },
                classes,
                &mut rng,
            )
        }
        image_model => {
            assert_eq!(dims.len(), 3, "image models expect [C, H, W] samples");
            let shape = (dims[0], dims[1], dims[2]);
            match image_model {
                ModelSpec::Cnn => cnn(shape, classes, CnnConfig::default(), &mut rng),
                ModelSpec::ResNet20 => resnet(shape, classes, ResNetConfig::default(), &mut rng),
                ModelSpec::Vgg16 => vgg_lite(shape, classes, VggConfig::default(), &mut rng),
                ModelSpec::Lstm => unreachable!(),
            }
        }
    }
}

/// One completed experiment: which method, on what, and its learning curve.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// Method label ("FedAvg", "FedCross", ...).
    pub method: String,
    /// Task label.
    pub task: String,
    /// Model label.
    pub model: String,
    /// The simulation result (learning curve + communication counters).
    pub result: SimulationResult,
}

impl ExperimentOutcome {
    /// Table II style "mean ± std" accuracy (percent) over the last few
    /// evaluations.
    pub fn accuracy_mean_std(&self) -> (f32, f32) {
        self.result.history.mean_std_last(3)
    }
}

/// Runs one FL method on one task/model combination.
pub fn run_method(
    spec: AlgorithmSpec,
    task: TaskSpec,
    model: ModelSpec,
    config: &ExperimentConfig,
) -> ExperimentOutcome {
    let data = build_task(task, config, config.seed);
    let template = build_model(model, &data, config.seed.wrapping_add(1));
    run_method_on(spec, &data, template, config, &task.label(), model.label())
}

/// Runs one FL method on an already-built dataset and template (used when a
/// harness sweeps methods over the same data).
pub fn run_method_on(
    spec: AlgorithmSpec,
    data: &FederatedDataset,
    template: Box<dyn Model>,
    config: &ExperimentConfig,
    task_label: &str,
    model_label: &str,
) -> ExperimentOutcome {
    let mut algorithm = build_algorithm(
        spec,
        template.params_flat(),
        data.num_clients(),
        config.clients_per_round.min(data.num_clients()),
    );
    let sim_config = SimulationConfig {
        rounds: config.rounds,
        clients_per_round: config.clients_per_round.min(data.num_clients()),
        eval_every: config.eval_every,
        eval_batch_size: 64,
        local: config.local,
        seed: config.seed,
    };
    let result = Simulation::new(sim_config, data, template).run(algorithm.as_mut());
    ExperimentOutcome {
        method: spec.label().to_string(),
        task: task_label.to_string(),
        model: model_label.to_string(),
        result,
    }
}

/// FedCross with a *scale-mapped* α for the reduced round budgets the harness
/// runs by default.
///
/// The paper's recommended α = 0.99 assumes 1000–2000 communication rounds:
/// what matters for middleware unification is the total cross-mixing budget
/// `(1-α) × rounds` (≈ 10–20 at paper scale). At the harness default of ~30
/// rounds the same budget corresponds to α ≈ 0.9 / 0.8, so the between-method
/// comparisons (Table II, Figures 5–7) use this mapped value; the α ablations
/// (Table III, Figure 8) still sweep α explicitly and show the full-range
/// behaviour at this scale. Documented in EXPERIMENTS.md.
pub fn scaled_fedcross() -> AlgorithmSpec {
    AlgorithmSpec::FedCross {
        alpha: 0.9,
        strategy: SelectionStrategy::LowestSimilarity,
        acceleration: fedcross::Acceleration::None,
    }
}

/// The paper's six-method lineup with the scale-mapped FedCross of
/// [`scaled_fedcross`] substituted for the α = 0.99 configuration.
pub fn scaled_lineup() -> Vec<AlgorithmSpec> {
    let mut lineup = AlgorithmSpec::paper_lineup();
    let last = lineup.len() - 1;
    lineup[last] = scaled_fedcross();
    lineup
}

/// A tiny dependency-free CLI argument parser shared by the harness binaries.
///
/// Recognised flags: `--rounds N`, `--clients N`, `--k N`, `--samples N`,
/// `--test-samples N`, `--epochs N`, `--seed N`, `--eval-every N`, `--full`,
/// `--smoke`. Unknown flags are ignored so binaries can add their own.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit vector (used in tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// Whether a boolean flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The value following a `--name` flag, parsed.
    pub fn value<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Applies the standard scale flags to an [`ExperimentConfig`].
    pub fn apply(&self, mut config: ExperimentConfig) -> ExperimentConfig {
        if self.flag("--full") {
            config = ExperimentConfig {
                rounds: config.rounds,
                eval_every: config.eval_every,
                ..ExperimentConfig::paper_scale()
            };
        }
        if self.flag("--smoke") {
            config = ExperimentConfig::smoke();
        }
        if let Some(v) = self.value("--rounds") {
            config.rounds = v;
        }
        if let Some(v) = self.value("--clients") {
            config.num_clients = v;
        }
        if let Some(v) = self.value("--k") {
            config.clients_per_round = v;
        }
        if let Some(v) = self.value("--samples") {
            config.samples_per_client = v;
        }
        if let Some(v) = self.value("--test-samples") {
            config.test_samples = v;
        }
        if let Some(v) = self.value("--epochs") {
            config.local.epochs = v;
        }
        if let Some(v) = self.value("--seed") {
            config.seed = v;
        }
        if let Some(v) = self.value("--eval-every") {
            config.eval_every = v;
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_labels_mention_dataset_and_heterogeneity() {
        assert_eq!(
            TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.1)).label(),
            "CIFAR-10 (beta=0.1)"
        );
        assert_eq!(TaskSpec::Femnist.label(), "FEMNIST");
        assert!(TaskSpec::Shakespeare.is_text());
        assert!(!TaskSpec::Cifar100(Heterogeneity::Iid).is_text());
    }

    #[test]
    fn model_labels_match_the_paper() {
        assert_eq!(ModelSpec::Cnn.label(), "CNN");
        assert_eq!(ModelSpec::ResNet20.label(), "ResNet-20");
        assert_eq!(ModelSpec::Vgg16.label(), "VGG-16");
        assert_eq!(ModelSpec::Lstm.label(), "LSTM");
    }

    #[test]
    fn build_task_produces_matching_class_counts() {
        let config = ExperimentConfig::smoke();
        assert_eq!(
            build_task(TaskSpec::Cifar10(Heterogeneity::Iid), &config, 0).num_classes(),
            10
        );
        assert_eq!(build_task(TaskSpec::Femnist, &config, 0).num_classes(), 62);
        assert_eq!(build_task(TaskSpec::Sent140, &config, 0).num_classes(), 2);
    }

    #[test]
    fn build_model_matches_task_shapes() {
        let config = ExperimentConfig::smoke();
        let image = build_task(TaskSpec::Cifar10(Heterogeneity::Iid), &config, 0);
        let text = build_task(TaskSpec::Shakespeare, &config, 0);
        let cnn_model = build_model(ModelSpec::Cnn, &image, 1);
        let lstm_model = build_model(ModelSpec::Lstm, &text, 1);
        assert!(cnn_model.param_count() > 0);
        assert!(lstm_model.param_count() > 0);
    }

    #[test]
    #[should_panic]
    fn image_model_on_text_task_is_rejected() {
        let config = ExperimentConfig::smoke();
        let text = build_task(TaskSpec::Sent140, &config, 0);
        let _ = build_model(ModelSpec::Cnn, &text, 1);
    }

    #[test]
    fn run_method_produces_a_learning_curve() {
        let config = ExperimentConfig::smoke();
        let outcome = run_method(
            AlgorithmSpec::FedAvg,
            TaskSpec::Cifar10(Heterogeneity::Iid),
            ModelSpec::Cnn,
            &config,
        );
        assert_eq!(outcome.method, "FedAvg");
        assert_eq!(outcome.result.history.len(), config.rounds);
        let (mean, std) = outcome.accuracy_mean_std();
        assert!(mean >= 0.0 && std >= 0.0);
    }

    #[test]
    fn args_parse_flags_and_values() {
        let args = Args::from_vec(vec![
            "--rounds".into(),
            "7".into(),
            "--full".into(),
            "--k".into(),
            "5".into(),
        ]);
        assert!(args.flag("--full"));
        assert!(!args.flag("--smoke"));
        assert_eq!(args.value::<usize>("--rounds"), Some(7));
        assert_eq!(args.value::<usize>("--missing"), None);
        let config = args.apply(ExperimentConfig::default());
        assert_eq!(config.rounds, 7);
        assert_eq!(config.clients_per_round, 5);
        // --full switched to paper scale for the other knobs.
        assert_eq!(config.num_clients, 100);
    }

    #[test]
    fn smoke_flag_overrides_to_tiny_scale() {
        let args = Args::from_vec(vec!["--smoke".into()]);
        let config = args.apply(ExperimentConfig::default());
        assert_eq!(config.num_clients, ExperimentConfig::smoke().num_clients);
    }
}
