//! Property-based tests for the tensor substrate.

use fedcross_tensor::stats::{cosine_similarity, euclidean_distance};
use fedcross_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flatten_roundtrip_preserves_data(data in small_vec(64)) {
        let n = data.len();
        let t = Tensor::from_vec(data.clone(), &[n]);
        let r = t.reshape(&[n, 1]).reshape(&[1, n]).flatten();
        prop_assert_eq!(r.data(), &data[..]);
    }

    #[test]
    fn add_is_commutative(data in small_vec(64)) {
        let n = data.len();
        let a = Tensor::from_vec(data.clone(), &[n]);
        let b = Tensor::from_vec(data.iter().map(|x| x * 0.5 - 1.0).collect(), &[n]);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn sub_then_add_recovers_original(data in small_vec(64)) {
        let n = data.len();
        let a = Tensor::from_vec(data.clone(), &[n]);
        let b = Tensor::from_vec(data.iter().map(|x| x * 0.3 + 2.0).collect(), &[n]);
        let recovered = a.sub(&b).add(&b);
        for (x, y) in recovered.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn axpy_matches_scaled_add(alpha in -5.0f32..5.0, data in small_vec(32)) {
        let n = data.len();
        let a = Tensor::from_vec(data.clone(), &[n]);
        let b = Tensor::from_vec(data.iter().map(|x| x + 1.0).collect(), &[n]);
        let mut fused = a.clone();
        fused.axpy(alpha, &b);
        let reference = a.add(&b.scaled(alpha));
        for (x, y) in fused.data().iter().zip(reference.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn scale_then_unscale_is_identity(data in small_vec(32), factor in 0.1f32..10.0) {
        let n = data.len();
        let t = Tensor::from_vec(data.clone(), &[n]);
        let back = t.scaled(factor).scaled(1.0 / factor);
        for (x, y) in back.data().iter().zip(t.data()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let m = 3 + (seed % 4) as usize;
        let k = 2 + (seed % 3) as usize;
        let n = 2 + (seed % 5) as usize;
        let rand_t = |rng: &mut SeededRng, r: usize, c: usize| {
            Tensor::from_vec((0..r * c).map(|_| rng.uniform_range(-2.0, 2.0)).collect(), &[r, c])
        };
        let a = rand_t(&mut rng, m, k);
        let b = rand_t(&mut rng, k, n);
        let c = rand_t(&mut rng, k, n);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_of_product_is_reversed_product_of_transposes(seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let rand_t = |rng: &mut SeededRng, r: usize, c: usize| {
            Tensor::from_vec((0..r * c).map(|_| rng.uniform_range(-1.0, 1.0)).collect(), &[r, c])
        };
        let a = rand_t(&mut rng, 4, 3);
        let b = rand_t(&mut rng, 3, 5);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_similarity_bounded(a in small_vec(48), scale in -3.0f32..3.0) {
        let b: Vec<f32> = a.iter().map(|x| x * scale + 0.1).collect();
        let sim = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&sim));
    }

    #[test]
    fn cosine_similarity_symmetric(a in small_vec(48)) {
        let b: Vec<f32> = a.iter().rev().copied().collect();
        let s1 = cosine_similarity(&a, &b);
        let s2 = cosine_similarity(&b, &a);
        prop_assert!((s1 - s2).abs() < 1e-6);
    }

    #[test]
    fn euclidean_distance_triangle_inequality(a in small_vec(24)) {
        let b: Vec<f32> = a.iter().map(|x| x + 1.0).collect();
        let c: Vec<f32> = a.iter().map(|x| x * 0.5).collect();
        let ab = euclidean_distance(&a, &b);
        let bc = euclidean_distance(&b, &c);
        let ac = euclidean_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn softmax_rows_always_normalised(rows in 1usize..5, cols in 2usize..8, seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let t = Tensor::from_vec(
            (0..rows * cols).map(|_| rng.uniform_range(-10.0, 10.0)).collect(),
            &[rows, cols],
        );
        let s = t.softmax_rows();
        for r in 0..rows {
            let sum: f32 = s.row(r).data().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).data().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn dirichlet_always_a_distribution(dim in 2usize..20, beta in 0.05f32..5.0, seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let p = rng.dirichlet(dim, beta);
        prop_assert_eq!(p.len(), dim);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn sample_without_replacement_valid(n in 1usize..200, seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let k = 1 + (seed as usize % n.max(1));
        let k = k.min(n);
        let picks = rng.sample_without_replacement(n, k);
        prop_assert_eq!(picks.len(), k);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(picks.iter().all(|&p| p < n));
    }

    #[test]
    fn sparse_sample_without_replacement_valid(n in 1usize..500_000, seed in 0u64..100) {
        let mut rng = SeededRng::new(seed);
        let k = (1 + (seed as usize % 64)).min(n);
        let picks = rng.sample_without_replacement_sparse(n, k);
        prop_assert_eq!(picks.len(), k);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(picks.iter().all(|&p| p < n));
    }

    #[test]
    fn sparse_sample_matches_dense_memory_free_contract(seed in 0u64..200) {
        // The sparse sampler must stay a pure function of the RNG state:
        // two identically seeded generators produce identical cohorts.
        let n = 100_000;
        let k = 1 + (seed as usize % 32);
        let a = SeededRng::new(seed).sample_without_replacement_sparse(n, k);
        let b = SeededRng::new(seed).sample_without_replacement_sparse(n, k);
        prop_assert_eq!(a, b);
    }
}
