//! # fedcross
//!
//! A from-scratch Rust implementation of **FedCross** — "FedCross: Towards
//! Accurate Federated Learning via Multi-Model Cross-Aggregation" (Hu et al.,
//! ICDE 2024) — together with the five baselines the paper compares against.
//!
//! ## What FedCross does
//!
//! Classic FL (FedAvg) dispatches *one* global model to `K` clients and
//! averages their updates, which repeatedly collapses conflicting client
//! knowledge into a single point and tends to get stuck in sharp loss-valley
//! regions. FedCross instead maintains `K` *middleware models*:
//!
//! 1. each round the `K` middleware models are randomly dispatched to `K`
//!    selected clients (one model per client, Algorithm 1 lines 4–10),
//! 2. after local training, every uploaded model is fused with a
//!    *collaborative model* chosen by a [`selection::SelectionStrategy`]
//!    (in-order / highest-similarity / lowest-similarity, cosine similarity),
//! 3. fusion is the [`aggregation::cross_aggregate`] rule
//!    `w_i = α·v_i + (1-α)·v_co` with α ∈ [0.5, 1) (the paper recommends
//!    α = 0.99 with the lowest-similarity strategy),
//! 4. the deployable global model is simply the average of the middleware
//!    models ([`aggregation::global_model`]) and never participates in
//!    training.
//!
//! Two optional training accelerators from Section III-D are provided in
//! [`acceleration`]: propeller models and dynamic α.
//!
//! Beyond the paper, [`robust`] adds Byzantine-robust variants
//! ([`robust::RobustFedAvg`], [`robust::RobustFedCross`]) built on the
//! [`aggregation::RobustRule`] family (coordinate-wise median, trimmed mean,
//! Krum / multi-Krum, norm bounding); see docs/ROBUSTNESS.md. [`buffered`]
//! adds FedBuff-style staleness-aware variants ([`buffered::BufferedFedAvg`],
//! [`buffered::BufferedFedCross`]) for asynchronous buffered rounds; see
//! docs/FAULTS.md.
//!
//! ## Baselines
//!
//! [`baselines`] implements FedAvg, FedProx, SCAFFOLD, FedGen (simplified
//! data-free distillation, see DESIGN.md) and CluSamp behind the same
//! [`fedcross_flsim::FederatedAlgorithm`] interface, so every experiment in
//! the paper's Section IV can be driven by the same simulation engine.
//!
//! ## Quick example
//!
//! ```
//! use fedcross::algorithm::{FedCross, FedCrossConfig};
//! use fedcross::selection::SelectionStrategy;
//! use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
//! use fedcross_data::Heterogeneity;
//! use fedcross_flsim::{Simulation, SimulationConfig, LocalTrainConfig};
//! use fedcross_nn::models::{cnn, CnnConfig};
//! use fedcross_nn::Model;
//! use fedcross_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let data = FederatedDataset::synth_cifar10(
//!     &SynthCifar10Config { num_clients: 6, samples_per_client: 10, test_samples: 20, ..Default::default() },
//!     Heterogeneity::Dirichlet(0.5),
//!     &mut rng,
//! );
//! let template = cnn((3, 16, 16), 10, CnnConfig { conv_channels: (2, 4), fc_hidden: 8, kernel: 3 }, &mut rng);
//! let config = FedCrossConfig {
//!     alpha: 0.99,
//!     strategy: SelectionStrategy::LowestSimilarity,
//!     ..Default::default()
//! };
//! let mut algo = FedCross::new(config, template.params_flat(), 3);
//! let sim_config = SimulationConfig {
//!     rounds: 2, clients_per_round: 3, eval_every: 1,
//!     local: LocalTrainConfig::fast(), ..Default::default()
//! };
//! let result = Simulation::new(sim_config, &data, template).run(&mut algo);
//! assert_eq!(result.history.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod acceleration;
pub mod aggregation;
pub mod algorithm;
pub mod analysis;
pub mod baselines;
pub mod buffered;
pub mod registry;
pub mod robust;
pub mod selection;

pub use acceleration::Acceleration;
pub use aggregation::RobustRule;
pub use algorithm::{FedCross, FedCrossConfig};
pub use buffered::{BufferedFedAvg, BufferedFedCross, BufferedFedCrossConfig, BufferedUpload};
pub use registry::{build_algorithm, AlgorithmSpec};
pub use robust::{RobustFedAvg, RobustFedCross, RobustFedCrossConfig};
pub use selection::{SelectionStrategy, SimilarityMeasure};
