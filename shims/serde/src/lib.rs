//! Offline shim for `serde`.
//!
//! The workspace builds without network access, so instead of the real serde
//! it uses this minimal value-tree design: [`Serialize`] lowers a type into a
//! JSON-shaped [`Value`], [`Deserialize`] lifts it back, and the companion
//! `serde_derive` shim generates both impls for plain structs and enums. The
//! `serde_json` shim prints and parses [`Value`] as standard JSON, so the
//! on-disk artefacts (checkpoints, result dumps) look exactly like real
//! serde_json output.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers are printed without a decimal
    /// point when exactly representable).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl<K: AsRef<str>> std::ops::Index<K> for Value {
    type Output = Value;

    fn index(&self, key: K) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key.as_ref()).unwrap_or(&NULL)
    }
}

impl<K: AsRef<str>> std::ops::IndexMut<K> for Value {
    /// Inserts `Null` under `key` if absent (mirroring `serde_json`), turning
    /// a `Null` value into an empty object first.
    fn index_mut(&mut self, key: K) -> &mut Value {
        let key = key.as_ref();
        if matches!(self, Value::Null) {
            *self = Value::Object(Vec::new());
        }
        let entries = match self {
            Value::Object(entries) => entries,
            other => panic!("cannot index into a JSON {}", other.kind()),
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[pos].1;
        }
        entries.push((key.to_string(), Value::Null));
        &mut entries.last_mut().expect("just pushed").1
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a type into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON-shaped value.
    fn to_value(&self) -> Value;
}

/// Lifts a type back out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON-shaped value.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Serializes any value (including references of any depth).
pub fn to_value<T: Serialize>(value: T) -> Value {
    value.to_value()
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {}", value.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", value.kind())))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Print-and-reparse gives the shortest decimal that round-trips the
        // f32 exactly (e.g. 0.2 rather than 0.20000000298023224), matching
        // what real serde_json emits for f32 values.
        let text = format!("{self}");
        Value::Num(text.parse::<f64>().unwrap_or(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|n| n as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = f64::from_value(value)?;
                if n.fract() != 0.0 {
                    return Err(Error::custom(format!(
                        "expected integer, found {n}"
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected a two-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected a three-element array")),
        }
    }
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// In this shim every `Deserialize` type is owned, so `DeserializeOwned`
    /// is the same trait.
    pub use crate::Deserialize as DeserializeOwned;
}

/// Support functions used by `serde_derive`-generated code.
pub mod derive_support {
    use super::{Deserialize, Error, Value};

    /// Deserializes a named struct field, treating a missing key as `Null`
    /// (so `Option` fields tolerate omission).
    pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v)
                .map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{name}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&0.2f32.to_value()).unwrap(), 0.2f32);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn f32_serialization_is_clean_and_exact() {
        for &x in &[0.1f32, 0.2, 1.0 / 3.0, -7.25, 1e-20, 3.4e38] {
            let v = x.to_value();
            assert_eq!(f32::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        assert_eq!(Vec::<Vec<f32>>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<Vec<usize>> = Some(vec![1, 2, 3]);
        assert_eq!(
            Option::<Vec<usize>>::from_value(&opt.to_value()).unwrap(),
            opt
        );
        let none: Option<Vec<usize>> = None;
        assert_eq!(
            Option::<Vec<usize>>::from_value(&none.to_value()).unwrap(),
            none
        );
        let pair = (3usize, 0.5f32);
        assert_eq!((<(usize, f32)>::from_value(&pair.to_value())).unwrap(), pair);
    }

    #[test]
    fn object_indexing_inserts_like_serde_json() {
        let mut v = Value::Object(Vec::new());
        v["a"] = Value::Num(1.0);
        v["b"] = Value::Str("x".into());
        v["a"] = Value::Num(2.0);
        assert_eq!(v["a"], Value::Num(2.0));
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v.as_object().unwrap().len(), 2);
    }

    #[test]
    fn integer_deserialization_rejects_fractions() {
        assert!(usize::from_value(&Value::Num(1.5)).is_err());
        assert!(usize::from_value(&Value::Num(3.0)).is_ok());
    }
}
