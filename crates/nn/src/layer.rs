//! The [`Layer`] trait and the [`Param`] (value + gradient) pair.

use fedcross_tensor::Tensor;

/// A trainable parameter: its current value and the gradient accumulated by
/// the most recent backward pass(es).
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter from an initial value with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros_like(&value);
        Self { value, grad }
    }

    /// Number of scalar values in the parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A differentiable network layer with explicit forward and backward passes.
///
/// Layers cache whatever they need from the forward pass (inputs, masks,
/// im2col matrices, per-timestep LSTM states) to compute gradients in
/// [`Layer::backward`]. Gradients accumulate into each [`Param::grad`]; the
/// optimizer reads and the caller clears them.
pub trait Layer: Send {
    /// Forward pass. `train` enables training-time behaviour such as dropout.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: receives `dL/d(output)` and returns `dL/d(input)`,
    /// accumulating parameter gradients internally.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Immutable access to this layer's parameters (possibly empty).
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to this layer's parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Resets all parameter gradients to zero.
    fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Short layer name for debugging / summaries.
    fn name(&self) -> &'static str;

    /// Total number of scalar parameters in the layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Clones the layer behind a box (parameters, buffers and caches).
    fn clone_layer(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_layer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.numel(), 6);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn param_zero_grad_clears_accumulated_values() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
