//! Fully-connected (dense) layer.

use crate::layer::{Layer, Param};
use fedcross_tensor::{init, SeededRng, Tensor, TensorPool};

/// A fully-connected layer computing `y = x W + b`.
///
/// * input: `[batch, in_features]`
/// * weight: `[in_features, out_features]`
/// * bias: `[out_features]`
/// * output: `[batch, out_features]`
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a new linear layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        let weight = init::kaiming_uniform(&[in_features, out_features], in_features, rng);
        let bias = Tensor::zeros(&[out_features]);
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
            in_features,
            out_features,
        }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Accumulates dW and db from `grad_output` (shared by the pooled
    /// backward forms; bitwise identical to the allocating backward).
    fn accumulate_param_grads(&mut self, grad_output: &Tensor, pool: &mut TensorPool) {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = x^T · dY
        let mut grad_w = pool.take_uninit(&[self.in_features, self.out_features]);
        input.matmul_at_b_into(grad_output, &mut grad_w);
        self.weight.grad.add_assign(&grad_w);
        pool.recycle(grad_w);
        // db = column sums of dY, accumulated into a zeroed scratch first so
        // the summation order matches the allocating form exactly.
        let cols = grad_output.dims()[1];
        let mut grad_b = pool.take_zeroed(&[cols]);
        for row in grad_output.data().chunks(cols) {
            for (g, &v) in grad_b.data_mut().iter_mut().zip(row) {
                *g += v;
            }
        }
        self.bias.grad.add_assign(&grad_b);
        pool.recycle(grad_b);
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.rank(), 2, "Linear expects [batch, features] input");
        assert_eq!(
            input.dims()[1],
            self.in_features,
            "Linear input feature mismatch"
        );
        self.cached_input = Some(input.clone());
        input.matmul(&self.weight.value).add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = x^T · dY
        let grad_w = input.matmul_at_b(grad_output);
        self.weight.grad.add_assign(&grad_w);
        // db = column sums of dY
        let cols = grad_output.dims()[1];
        let mut grad_b = vec![0f32; cols];
        for row in grad_output.data().chunks(cols) {
            for (g, &v) in grad_b.iter_mut().zip(row) {
                *g += v;
            }
        }
        self.bias.grad.add_assign(&Tensor::from_vec(grad_b, &[cols]));
        // dX = dY · W^T
        grad_output.matmul_a_bt(&self.weight.value)
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        assert_eq!(input.rank(), 2, "Linear expects [batch, features] input");
        assert_eq!(
            input.dims()[1],
            self.in_features,
            "Linear input feature mismatch"
        );
        if let Some(old) = self.cached_input.take() {
            pool.recycle(old);
        }
        self.cached_input = Some(pool.take_copy(input));
        let batch = input.dims()[0];
        let mut out = pool.take_uninit(&[batch, self.out_features]);
        input.matmul_into(&self.weight.value, &mut out);
        out.add_row_broadcast_assign(&self.bias.value);
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        self.accumulate_param_grads(grad_output, pool);
        // dX = dY · W^T
        let batch = grad_output.dims()[0];
        let mut grad_in = pool.take_uninit(&[batch, self.in_features]);
        grad_output.matmul_a_bt_into(&self.weight.value, &mut grad_in);
        grad_in
    }

    fn backward_into_discard(&mut self, grad_output: &Tensor, pool: &mut TensorPool) {
        self.accumulate_param_grads(grad_output, pool);
        // dX = dY · W^T is skipped: a first layer's input gradient is never
        // consumed.
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&mut self.weight, &mut self.bias]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic: only parameters and forward caches.
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(layer: &mut Linear, x: &Tensor) {
        // Loss = sum of outputs; analytic gradients must match finite differences.
        let out = layer.forward(x, true);
        let grad_out = Tensor::ones(out.dims());
        layer.zero_grads();
        let grad_in = layer.backward(&grad_out);

        let eps = 1e-2;
        // Check weight gradient at a few positions.
        let positions = [(0usize, 0usize), (1, 1)];
        for &(i, j) in &positions {
            let orig = layer.weight.value.get(&[i, j]);
            layer.weight.value.set(&[i, j], orig + eps);
            let plus = layer.forward(x, true).sum();
            layer.weight.value.set(&[i, j], orig - eps);
            let minus = layer.forward(x, true).sum();
            layer.weight.value.set(&[i, j], orig);
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = layer.weight.grad.get(&[i, j]);
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "weight ({i},{j}): numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check input gradient at one position.
        let mut x_mod = x.clone();
        let orig = x_mod.get(&[0, 0]);
        x_mod.set(&[0, 0], orig + eps);
        let plus = layer.forward(&x_mod, true).sum();
        x_mod.set(&[0, 0], orig - eps);
        let minus = layer.forward(&x_mod, true).sum();
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((numeric - grad_in.get(&[0, 0])).abs() < 1e-2 * (1.0 + numeric.abs()));
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = SeededRng::new(0);
        let mut layer = Linear::new(2, 3, &mut rng);
        layer.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        layer.bias.value = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = layer.forward(&x, true);
        assert_eq!(y.dims(), &[1, 3]);
        assert!((y.get(&[0, 0]) - 5.1).abs() < 1e-6);
        assert!((y.get(&[0, 1]) - 7.2).abs() < 1e-6);
        assert!((y.get(&[0, 2]) - 9.3).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(3);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x = init::normal(&[5, 4], 0.0, 1.0, &mut rng);
        finite_diff_check(&mut layer, &x);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = SeededRng::new(5);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        layer.forward(&x, true);
        layer.zero_grads();
        let grad_out = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        layer.backward(&grad_out);
        assert_eq!(layer.bias.grad.data(), &[4.0, 6.0]);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = SeededRng::new(7);
        let mut layer = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        layer.forward(&x, true);
        let g = Tensor::ones(&[1, 2]);
        layer.backward(&g);
        let after_one = layer.bias.grad.data().to_vec();
        layer.forward(&x, true);
        layer.backward(&g);
        for (two, one) in layer.bias.grad.data().iter().zip(&after_one) {
            assert!((two - 2.0 * one).abs() < 1e-6);
        }
    }

    #[test]
    fn param_count_is_weights_plus_bias() {
        let mut rng = SeededRng::new(9);
        let layer = Linear::new(10, 7, &mut rng);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
        assert_eq!(layer.name(), "linear");
    }

    #[test]
    fn clone_layer_is_independent() {
        let mut rng = SeededRng::new(11);
        let layer = Linear::new(3, 3, &mut rng);
        let mut cloned = layer.clone_layer();
        let x = Tensor::ones(&[1, 3]);
        let a = cloned.forward(&x, true);
        let mut original = layer.clone();
        let b = original.forward(&x, true);
        assert_eq!(a.data(), b.data());
    }
}
