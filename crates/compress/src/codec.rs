//! The compressor interface and the compressed-update container.

use fedcross_tensor::SeededRng;

/// The encoded form of one client's parameter delta.
///
/// The variants correspond to the compressor families in this crate; the
/// container knows how to decode itself and how many 4-byte words its wire
/// representation occupies, which is what the upload accounting uses.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressedUpdate {
    /// Uncompressed delta (the identity compressor).
    Dense(Vec<f32>),
    /// Uniformly quantized delta: `bits`-bit codes plus the per-vector range.
    Quantized {
        /// Number of original coordinates.
        dim: usize,
        /// Quantization resolution in bits per coordinate (1–8).
        bits: u8,
        /// Minimum of the original values (code 0).
        lo: f32,
        /// Maximum of the original values (the largest code).
        hi: f32,
        /// One code per coordinate, stored one per byte for simplicity; the
        /// payload accounting still charges only `bits` bits per coordinate.
        codes: Vec<u8>,
    },
    /// Sparse delta: explicit (index, value) pairs, everything else is zero.
    Sparse {
        /// Number of original coordinates.
        dim: usize,
        /// Indices of the transmitted coordinates.
        indices: Vec<u32>,
        /// Values of the transmitted coordinates.
        values: Vec<f32>,
    },
}

impl CompressedUpdate {
    /// Number of coordinates of the original delta.
    pub fn dim(&self) -> usize {
        match self {
            CompressedUpdate::Dense(values) => values.len(),
            CompressedUpdate::Quantized { dim, .. } | CompressedUpdate::Sparse { dim, .. } => *dim,
        }
    }

    /// Wire size in 4-byte-word equivalents (the unit the communication
    /// tracker counts model parameters in).
    pub fn payload_scalars(&self) -> usize {
        match self {
            CompressedUpdate::Dense(values) => values.len(),
            CompressedUpdate::Quantized { dim, bits, .. } => {
                // codes packed at `bits` bits each, plus the (lo, hi) range.
                (dim * *bits as usize).div_ceil(32) + 2
            }
            CompressedUpdate::Sparse { indices, values, .. } => indices.len() + values.len(),
        }
    }

    /// Reconstructs the (lossy) dense delta.
    pub fn decode(&self) -> Vec<f32> {
        match self {
            // alloc: bounded — per-upload codec buffer sized by the compressed delta
            CompressedUpdate::Dense(values) => values.clone(),
            CompressedUpdate::Quantized {
                dim,
                bits,
                lo,
                hi,
                codes,
            } => {
                let levels = (1u32 << bits) - 1;
                let span = hi - lo;
                // alloc: bounded — per-upload codec buffer sized by the compressed delta
                let mut out = Vec::with_capacity(*dim);
                for &code in codes {
                    let fraction = if levels == 0 {
                        0.0
                    } else {
                        code as f32 / levels as f32
                    };
                    out.push(lo + fraction * span);
                }
                out
            }
            CompressedUpdate::Sparse {
                dim,
                indices,
                values,
            } => {
                // alloc: bounded — per-upload codec buffer sized by the compressed delta
                let mut out = vec![0f32; *dim];
                for (&index, &value) in indices.iter().zip(values) {
                    out[index as usize] = value;
                }
                out
            }
        }
    }

    /// Compression ratio relative to the dense representation (≥ 1 means the
    /// encoding is at least as small as the raw delta).
    pub fn compression_ratio(&self) -> f32 {
        let dense = self.dim().max(1) as f32;
        dense / self.payload_scalars().max(1) as f32
    }
}

/// A client-side compressor of parameter deltas.
pub trait Compressor: Send + Sync {
    /// Encodes `delta`. `rng` supplies the randomness stochastic schemes need.
    fn compress(&self, delta: &[f32], rng: &mut SeededRng) -> CompressedUpdate;

    /// Human-readable label used in ablation tables.
    fn label(&self) -> String;
}

/// The identity compressor (uploads the raw delta); the "no compression"
/// baseline of the ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Compressor for Identity {
    fn compress(&self, delta: &[f32], _rng: &mut SeededRng) -> CompressedUpdate {
        // alloc: bounded — per-upload codec buffer sized by the compressed delta
        CompressedUpdate::Dense(delta.to_vec())
    }

    fn label(&self) -> String {
        // alloc: cold — reporting label, not on the round path
        "none".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_update_round_trips_exactly() {
        let delta = vec![1.0, -2.0, 0.5];
        let update = Identity.compress(&delta, &mut SeededRng::new(0));
        assert_eq!(update.decode(), delta);
        assert_eq!(update.dim(), 3);
        assert_eq!(update.payload_scalars(), 3);
        assert!((update.compression_ratio() - 1.0).abs() < 1e-6);
        assert_eq!(Identity.label(), "none");
    }

    #[test]
    fn quantized_payload_counts_bits_and_range() {
        let update = CompressedUpdate::Quantized {
            dim: 64,
            bits: 8,
            lo: -1.0,
            hi: 1.0,
            codes: vec![0; 64],
        };
        // 64 coords × 8 bits = 512 bits = 16 words, plus 2 words of range.
        assert_eq!(update.payload_scalars(), 18);
        assert!(update.compression_ratio() > 3.0);
    }

    #[test]
    fn quantized_decode_maps_codes_into_the_range() {
        let update = CompressedUpdate::Quantized {
            dim: 3,
            bits: 2,
            lo: -1.0,
            hi: 1.0,
            codes: vec![0, 1, 3],
        };
        let decoded = update.decode();
        assert!((decoded[0] + 1.0).abs() < 1e-6);
        assert!((decoded[1] + 1.0 / 3.0).abs() < 1e-6);
        assert!((decoded[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_decode_scatters_values() {
        let update = CompressedUpdate::Sparse {
            dim: 5,
            indices: vec![1, 4],
            values: vec![2.0, -3.0],
        };
        assert_eq!(update.decode(), vec![0.0, 2.0, 0.0, 0.0, -3.0]);
        assert_eq!(update.payload_scalars(), 4);
        assert_eq!(update.dim(), 5);
    }

    #[test]
    fn one_bit_quantization_payload_is_about_one_thirtysecond() {
        let update = CompressedUpdate::Quantized {
            dim: 3200,
            bits: 1,
            lo: 0.0,
            hi: 1.0,
            codes: vec![0; 3200],
        };
        assert_eq!(update.payload_scalars(), 100 + 2);
        assert!(update.compression_ratio() > 25.0);
    }
}
