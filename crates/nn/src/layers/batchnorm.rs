//! 2-D batch normalisation.

use crate::layer::{Layer, Param};
use fedcross_tensor::{SeededRng, Tensor, TensorPool};

const EPS: f32 = 1e-5;

/// Batch normalisation over the channel dimension of `[N, C, H, W]` inputs.
///
/// Trainable parameters are the per-channel scale (`gamma`) and shift
/// (`beta`). The running mean/variance buffers are *also* exposed through
/// [`Layer::params`] (with permanently zero gradients) so that federated
/// aggregation averages them across clients exactly like PyTorch-based FL
/// implementations average BN buffers; with the paper's weight decay of zero
/// the optimizer never perturbs them.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Param,
    running_var: Param,
    momentum: f32,
    channels: usize,
    // Caches for backward.
    cached_input: Option<Tensor>,
    cached_mean: Vec<f32>,
    cached_var: Vec<f32>,
    cached_xhat: Option<Tensor>,
    used_batch_stats: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Param::new(Tensor::zeros(&[channels])),
            running_var: Param::new(Tensor::ones(&[channels])),
            momentum: 0.1,
            channels,
            cached_input: None,
            cached_mean: Vec::new(),
            cached_var: Vec::new(),
            cached_xhat: None,
            used_batch_stats: false,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn channel_stats(input: &Tensor, c: usize) -> (f32, f32) {
        let dims = input.dims();
        let (n, channels, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let m = (n * h * w) as f32;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        for ni in 0..n {
            let start = ((ni * channels + c) * h) * w;
            for &v in &input.data()[start..start + h * w] {
                sum += v as f64;
                sum_sq += (v as f64) * (v as f64);
            }
        }
        let mean = (sum / m as f64) as f32;
        let var = ((sum_sq / m as f64) - (sum / m as f64).powi(2)).max(0.0) as f32;
        (mean, var)
    }

    /// Computes the per-channel statistics (updating the running buffers in
    /// train mode) and fills `xhat` / `out`; the one forward body shared by
    /// the allocating and pooled forms.
    fn forward_impl(
        &mut self,
        input: &Tensor,
        train: bool,
        means: &mut Vec<f32>,
        vars: &mut Vec<f32>,
        xhat: &mut Tensor,
        out: &mut Tensor,
    ) {
        let dims = input.dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        means.clear();
        means.resize(c, 0.0);
        vars.clear();
        vars.resize(c, 0.0);
        if train {
            for ci in 0..c {
                let (mean, var) = Self::channel_stats(input, ci);
                means[ci] = mean;
                vars[ci] = var;
                // Update running statistics.
                let rm = self.running_mean.value.data_mut();
                rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean;
                let rv = self.running_var.value.data_mut();
                rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * var;
            }
        } else {
            means.copy_from_slice(self.running_mean.value.data());
            vars.copy_from_slice(self.running_var.value.data());
        }

        assert_eq!(xhat.numel(), input.numel(), "wrong xhat buffer size");
        assert_eq!(out.numel(), input.numel(), "wrong output buffer size");
        xhat.reshape_in_place(dims);
        out.reshape_in_place(dims);
        let xd = input.data();
        let xh = xhat.data_mut();
        let od = out.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let inv_std = 1.0 / (vars[ci] + EPS).sqrt();
                let g = self.gamma.value.data()[ci];
                let b = self.beta.value.data()[ci];
                let start = ((ni * c + ci) * h) * w;
                for i in start..start + h * w {
                    let normalised = (xd[i] - means[ci]) * inv_std;
                    xh[i] = normalised;
                    od[i] = g * normalised + b;
                }
            }
        }
    }

    /// The one backward body shared by the allocating and pooled forms;
    /// `grad_input` is fully overwritten.
    fn backward_impl(&mut self, grad_output: &Tensor, grad_input: &mut Tensor) {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let xhat = self.cached_xhat.as_ref().expect("missing xhat cache");
        let dims = input.dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let m = (n * h * w) as f32;

        assert_eq!(grad_input.numel(), input.numel(), "wrong grad buffer size");
        grad_input.reshape_in_place(&[n, c, h, w]);
        let gi = grad_input.data_mut();
        let dy = grad_output.data();
        let xh = xhat.data();

        for ci in 0..c {
            let inv_std = 1.0 / (self.cached_var[ci] + EPS).sqrt();
            let gamma = self.gamma.value.data()[ci];

            // Accumulate per-channel sums.
            let mut sum_dy = 0f64;
            let mut sum_dy_xhat = 0f64;
            for ni in 0..n {
                let start = ((ni * c + ci) * h) * w;
                for i in start..start + h * w {
                    sum_dy += dy[i] as f64;
                    sum_dy_xhat += (dy[i] * xh[i]) as f64;
                }
            }
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat as f32;
            self.beta.grad.data_mut()[ci] += sum_dy as f32;

            if self.used_batch_stats {
                // Full batch-norm backward (batch statistics participate).
                for ni in 0..n {
                    let start = ((ni * c + ci) * h) * w;
                    for i in start..start + h * w {
                        gi[i] = gamma * inv_std / m
                            * (m * dy[i] - sum_dy as f32 - xh[i] * sum_dy_xhat as f32);
                    }
                }
            } else {
                // Running statistics are constants w.r.t. the input.
                for ni in 0..n {
                    let start = ((ni * c + ci) * h) * w;
                    for i in start..start + h * w {
                        gi[i] = gamma * inv_std * dy[i];
                    }
                }
            }
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects [N, C, H, W] input");
        assert_eq!(input.dims()[1], self.channels, "channel count mismatch");
        let mut means = Vec::new();
        let mut vars = Vec::new();
        let mut xhat = Tensor::zeros_like(input);
        let mut out = Tensor::zeros_like(input);
        self.forward_impl(input, train, &mut means, &mut vars, &mut xhat, &mut out);
        self.cached_input = Some(input.clone());
        self.cached_mean = means;
        self.cached_var = vars;
        self.cached_xhat = Some(xhat);
        self.used_batch_stats = train;
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut grad_input = Tensor::zeros_like(
            self.cached_input
                .as_ref()
                .expect("backward called before forward"),
        );
        self.backward_impl(grad_output, &mut grad_input);
        grad_input
    }

    fn forward_into(&mut self, input: &Tensor, train: bool, pool: &mut TensorPool) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects [N, C, H, W] input");
        assert_eq!(input.dims()[1], self.channels, "channel count mismatch");
        if let Some(old) = self.cached_input.take() {
            pool.recycle(old);
        }
        if let Some(old) = self.cached_xhat.take() {
            pool.recycle(old);
        }
        // Reuse the per-channel stat vectors' capacity across steps.
        let mut means = std::mem::take(&mut self.cached_mean);
        let mut vars = std::mem::take(&mut self.cached_var);
        let mut xhat = pool.take_uninit(input.dims());
        let mut out = pool.take_uninit(input.dims());
        self.forward_impl(input, train, &mut means, &mut vars, &mut xhat, &mut out);
        self.cached_input = Some(pool.take_copy(input));
        self.cached_mean = means;
        self.cached_var = vars;
        self.cached_xhat = Some(xhat);
        self.used_batch_stats = train;
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let mut grad_input = {
            let input = self
                .cached_input
                .as_ref()
                .expect("backward called before forward");
            let d = input.dims();
            pool.take_uninit(&[d[0], d[1], d[2], d[3]])
        };
        self.backward_impl(grad_output, &mut grad_input);
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&self.gamma, &self.beta, &self.running_mean, &self.running_var]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![
            &mut self.gamma,
            &mut self.beta,
            &mut self.running_mean,
            &mut self.running_var,
        ]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
        f(&self.running_mean);
        f(&self.running_var);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic: running statistics are Params (restored by
        // set_params_flat) and the forward caches are overwritten before use.
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_tensor::{init, SeededRng};

    #[test]
    fn training_output_is_normalised_per_channel() {
        let mut rng = SeededRng::new(0);
        let mut bn = BatchNorm2d::new(3);
        let x = init::normal(&[4, 3, 6, 6], 5.0, 2.0, &mut rng);
        let y = bn.forward(&x, true);
        // Each channel of the output should have ~zero mean and ~unit variance.
        let dims = y.dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let start = ((ni * c + ci) * h) * w;
                vals.extend_from_slice(&y.data()[start..start + h * w]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn gamma_beta_shift_and_scale() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.value.fill(2.0);
        bn.beta.value.fill(3.0);
        let x = Tensor::from_vec(vec![-1.0, 1.0, -1.0, 1.0], &[1, 1, 2, 2]);
        let y = bn.forward(&x, true);
        // Normalised values are ±1, so outputs are 3 ± 2.
        assert!((y.max() - 5.0).abs() < 1e-3);
        assert!((y.min() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut rng = SeededRng::new(1);
        let mut bn = BatchNorm2d::new(2);
        // Train on data with mean 4 so the running mean moves towards 4.
        for _ in 0..200 {
            let x = init::normal(&[8, 2, 4, 4], 4.0, 1.0, &mut rng);
            bn.forward(&x, true);
        }
        let running_mean = bn.running_mean.value.data()[0];
        assert!((running_mean - 4.0).abs() < 0.3, "running mean {running_mean}");
        // In eval mode an input equal to the running mean maps close to beta (0).
        let x = Tensor::full(&[1, 2, 2, 2], running_mean);
        let y = bn.forward(&x, false);
        assert!(y.data().iter().all(|&v| v.abs() < 0.3));
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = SeededRng::new(2);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value = init::normal(&[2], 1.0, 0.2, &mut rng);
        let x = init::normal(&[2, 2, 3, 3], 0.0, 1.0, &mut rng);

        // Loss = weighted sum of outputs to give a non-uniform gradient.
        let weights = init::normal(&[2 * 2 * 3 * 3], 0.0, 1.0, &mut rng);
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward(x, true)
                .data()
                .iter()
                .zip(weights.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let _ = loss(&mut bn, &x);
        bn.zero_grads();
        let grad_out = weights.reshape(&[2, 2, 3, 3]);
        let grad_in = bn.backward(&grad_out);

        let eps = 1e-2;
        for &idx in &[0usize, 7, 20, 35] {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (loss(&mut bn, &plus) - loss(&mut bn, &minus)) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data()[idx]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {}",
                grad_in.data()[idx]
            );
        }
    }

    #[test]
    fn gamma_gradient_matches_finite_differences() {
        let mut rng = SeededRng::new(3);
        let mut bn = BatchNorm2d::new(1);
        let x = init::normal(&[2, 1, 3, 3], 1.0, 2.0, &mut rng);
        let weights = init::normal(&[2 * 9], 0.0, 1.0, &mut rng);
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward(x, true)
                .data()
                .iter()
                .zip(weights.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let _ = loss(&mut bn, &x);
        bn.zero_grads();
        bn.backward(&weights.reshape(&[2, 1, 3, 3]));
        let analytic = bn.gamma.grad.data()[0];

        let eps = 1e-3;
        let orig = bn.gamma.value.data()[0];
        bn.gamma.value.data_mut()[0] = orig + eps;
        let plus = loss(&mut bn, &x);
        bn.gamma.value.data_mut()[0] = orig - eps;
        let minus = loss(&mut bn, &x);
        bn.gamma.value.data_mut()[0] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((numeric - analytic).abs() < 1e-1 * (1.0 + numeric.abs()));
    }

    #[test]
    fn params_include_running_buffers_with_zero_grads() {
        let bn = BatchNorm2d::new(4);
        assert_eq!(bn.params().len(), 4);
        assert_eq!(bn.param_count(), 16);
        assert!(bn.running_mean.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(bn.channels(), 4);
    }
}
