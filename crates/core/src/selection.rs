//! Collaborative model selection (`CoModelSel`, Section III-B1).
//!
//! For every uploaded middleware model the cloud server picks one *other*
//! uploaded model to fuse with. The paper defines three strategies serving
//! three criteria:
//!
//! * [`SelectionStrategy::InOrder`] — adequacy-and-diversity of
//!   participation: a rotating schedule in which every model collaborates
//!   with every other model once per `K-1` rounds,
//! * [`SelectionStrategy::HighestSimilarity`] — gradient-divergence
//!   minimisation: fuse with the most similar model (shown in the paper's
//!   Table III to be the *worst* choice, because it clusters the middleware
//!   models into diverging groups),
//! * [`SelectionStrategy::LowestSimilarity`] — knowledge maximisation: fuse
//!   with the least similar model (the paper's recommended default).
//!
//! The paper measures similarity with cosine similarity over the flat
//! parameter vectors and explicitly leaves other measures (e.g. Euclidean
//! distance) as future work; this module implements both behind
//! [`SimilarityMeasure`] so that extension can be evaluated (see the
//! `ablation_similarity_measure` harness binary).

use fedcross_nn::params::{cosine, euclidean};
use fedcross_tensor::stats::{cosine_from_parts, dot_f64, norm_sq};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Minimum total scalar count (`K²·d` pairwise work) before the similarity
/// strategies fan the per-model searches out to rayon.
const PAR_THRESHOLD_SCALARS: usize = 1 << 18;

/// How the similarity between two uploaded models is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimilarityMeasure {
    /// Cosine similarity of the flat parameter vectors (the paper's choice).
    #[default]
    Cosine,
    /// Negated Euclidean distance (closer models are "more similar") — the
    /// alternative measure the paper lists as future work.
    Euclidean,
}

impl SimilarityMeasure {
    /// Similarity score between two parameter vectors; larger means more
    /// similar under either measure.
    pub fn similarity(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            SimilarityMeasure::Cosine => cosine(a, b),
            SimilarityMeasure::Euclidean => -euclidean(a, b),
        }
    }

    /// Short label used in ablation tables.
    pub fn label(&self) -> &'static str {
        match self {
            SimilarityMeasure::Cosine => "cosine",
            SimilarityMeasure::Euclidean => "euclidean",
        }
    }
}

/// The collaborative-model selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Rotating in-order selection: model `i` collaborates with model
    /// `(i + (r % (K-1)) + 1) % K` in round `r`.
    InOrder,
    /// Select the uploaded model with the highest cosine similarity.
    HighestSimilarity,
    /// Select the uploaded model with the lowest cosine similarity
    /// (recommended by the paper).
    LowestSimilarity,
}

impl std::fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SelectionStrategy::InOrder => "in-order",
            SelectionStrategy::HighestSimilarity => "highest-similarity",
            SelectionStrategy::LowestSimilarity => "lowest-similarity",
        };
        write!(f, "{s}")
    }
}

impl SelectionStrategy {
    /// Chooses the collaborative model index for uploaded model `i` among
    /// `models` in training round `round`.
    ///
    /// The returned index is always different from `i`.
    ///
    /// # Panics
    /// Panics if fewer than two models are provided or `i` is out of range.
    pub fn select<V: AsRef<[f32]>>(&self, round: usize, i: usize, models: &[V]) -> usize {
        self.select_with(round, i, models, SimilarityMeasure::Cosine)
    }

    /// Like [`SelectionStrategy::select`] but with an explicit similarity
    /// measure (the paper's future-work extension).
    pub fn select_with<V: AsRef<[f32]>>(
        &self,
        round: usize,
        i: usize,
        models: &[V],
        measure: SimilarityMeasure,
    ) -> usize {
        self.select_cached(round, i, models, measure, None)
    }

    /// Selects the collaborative model for every uploaded model at once.
    pub fn select_all<V: AsRef<[f32]> + Sync>(&self, round: usize, models: &[V]) -> Vec<usize> {
        self.select_all_with(round, models, SimilarityMeasure::Cosine)
    }

    /// Like [`SelectionStrategy::select_all`] with an explicit measure.
    ///
    /// The similarity strategies compare all `K·(K-1)` pairs (`O(K²·d)` —
    /// the dominant server-side cost beyond the fusion kernels), so the
    /// per-model searches run on rayon once the pairwise work is large
    /// enough to amortise the fork/join. Under the cosine measure each
    /// model's L2 norm is computed **once** up front instead of `K-1` times
    /// inside the pairwise loop (the fused pass recomputed both operands'
    /// norms per pair), leaving one dot product per pair — the combined
    /// similarities are bitwise identical to the fused pass, so selection
    /// decisions (and training trajectories) are unchanged.
    pub fn select_all_with<V: AsRef<[f32]> + Sync>(
        &self,
        round: usize,
        models: &[V],
        measure: SimilarityMeasure,
    ) -> Vec<usize> {
        let k = models.len();
        let dim = models.first().map_or(0, |m| m.as_ref().len());
        let uses_similarity = !matches!(self, SelectionStrategy::InOrder);
        let norms: Option<Vec<f64>> = if uses_similarity && measure == SimilarityMeasure::Cosine {
            // alloc: bounded — cohort-sized selection scratch, once per round
            Some(models.iter().map(|m| norm_sq(m.as_ref())).collect())
        } else {
            None
        };
        let norms = norms.as_deref();
        if uses_similarity && k.saturating_mul(k).saturating_mul(dim) >= PAR_THRESHOLD_SCALARS {
            (0..k)
                .into_par_iter()
                .map(|i| self.select_cached(round, i, models, measure, norms))
                // alloc: bounded — cohort-sized selection scratch, once per round
                .collect()
        } else {
            (0..k)
                .map(|i| self.select_cached(round, i, models, measure, norms))
                // alloc: bounded — cohort-sized selection scratch, once per round
                .collect()
        }
    }

    fn select_cached<V: AsRef<[f32]>>(
        &self,
        round: usize,
        i: usize,
        models: &[V],
        measure: SimilarityMeasure,
        norms: Option<&[f64]>,
    ) -> usize {
        let k = models.len();
        assert!(k >= 2, "collaborative selection needs at least two models");
        assert!(i < k, "model index {i} out of range for {k} models");
        match self {
            SelectionStrategy::InOrder => {
                // The paper's schedule: offset cycles through 1..K-1 so that in
                // every window of K-1 rounds each model meets every other model.
                let offset = round % (k - 1) + 1;
                (i + offset) % k
            }
            SelectionStrategy::HighestSimilarity => {
                self.extreme_similarity(i, models, true, measure, norms)
            }
            SelectionStrategy::LowestSimilarity => {
                self.extreme_similarity(i, models, false, measure, norms)
            }
        }
    }

    fn extreme_similarity<V: AsRef<[f32]>>(
        &self,
        i: usize,
        models: &[V],
        highest: bool,
        measure: SimilarityMeasure,
        norms: Option<&[f64]>,
    ) -> usize {
        let mut best_idx = usize::MAX;
        let mut best_sim = if highest { f32::NEG_INFINITY } else { f32::INFINITY };
        for (j, candidate) in models.iter().enumerate() {
            if j == i {
                continue;
            }
            let sim = match norms {
                // Cached cosine path: one dot product per pair, norms
                // precomputed once per model.
                Some(norms) => cosine_from_parts(
                    dot_f64(models[i].as_ref(), candidate.as_ref()),
                    norms[i],
                    norms[j],
                ),
                None => measure.similarity(models[i].as_ref(), candidate.as_ref()),
            };
            let better = if highest { sim > best_sim } else { sim < best_sim };
            if better {
                best_sim = sim;
                best_idx = j;
            }
        }
        if best_idx == usize::MAX {
            // Every candidate similarity was non-finite (possible when
            // uploaded parameters have diverged, e.g. under heavy privacy
            // noise); fall back to the in-order neighbour so aggregation can
            // proceed instead of panicking downstream.
            best_idx = (i + 1) % models.len();
        }
        best_idx
    }
}

/// The full pairwise cosine-similarity matrix of the uploaded models. Used by
/// the analysis harness to show middleware models converging towards each
/// other over training (Section III-A).
pub fn similarity_matrix<V: AsRef<[f32]>>(models: &[V]) -> Vec<Vec<f32>> {
    let k = models.len();
    let mut matrix = vec![vec![0f32; k]; k];
    for i in 0..k {
        // The matrix is symmetric; compute each pair once.
        matrix[i][i] = 1.0;
        for j in (i + 1)..k {
            let sim = cosine(models[i].as_ref(), models[j].as_ref());
            matrix[i][j] = sim;
            matrix[j][i] = sim;
        }
    }
    matrix
}

/// Mean pairwise cosine similarity between distinct uploaded models — a
/// scalar view of how unified the middleware models currently are.
pub fn mean_pairwise_similarity<V: AsRef<[f32]>>(models: &[V]) -> f32 {
    let k = models.len();
    if k < 2 {
        return 1.0;
    }
    let mut total = 0f32;
    let mut count = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            total += cosine(models[i].as_ref(), models[j].as_ref());
            count += 1;
        }
    }
    total / count as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_models() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0, 0.0],  // 0
            vec![0.9, 0.1, 0.0],  // 1: very similar to 0
            vec![0.0, 1.0, 0.0],  // 2: orthogonal to 0
            vec![-1.0, 0.0, 0.0], // 3: opposite of 0
        ]
    }

    #[test]
    fn in_order_matches_paper_formula() {
        let models = vec![vec![0.0]; 5];
        let k = models.len();
        for round in 0..10 {
            for i in 0..k {
                let expected = (i + (round % (k - 1)) + 1) % k;
                assert_eq!(
                    SelectionStrategy::InOrder.select(round, i, &models),
                    expected
                );
            }
        }
    }

    #[test]
    fn in_order_never_selects_self_and_cycles_through_everyone() {
        let models = vec![vec![0.0]; 6];
        let k = models.len();
        for i in 0..k {
            let mut partners = std::collections::HashSet::new();
            for round in 0..(k - 1) {
                let j = SelectionStrategy::InOrder.select(round, i, &models);
                assert_ne!(j, i);
                partners.insert(j);
            }
            // Within K-1 rounds, model i collaborates with all other models once.
            assert_eq!(partners.len(), k - 1);
        }
    }

    #[test]
    fn in_order_covers_every_model_as_a_collaborator_each_round() {
        // "With this strategy, all the uploaded models are chosen as
        // collaborative models in each round."
        let models = vec![vec![0.0]; 7];
        for round in 0..6 {
            let chosen = SelectionStrategy::InOrder.select_all(round, &models);
            let mut sorted = chosen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), models.len(), "round {round}: {chosen:?}");
        }
    }

    #[test]
    fn highest_similarity_picks_the_closest_model() {
        let models = toy_models();
        let j = SelectionStrategy::HighestSimilarity.select(0, 0, &models);
        assert_eq!(j, 1);
    }

    #[test]
    fn lowest_similarity_picks_the_most_distant_model() {
        let models = toy_models();
        let j = SelectionStrategy::LowestSimilarity.select(0, 0, &models);
        assert_eq!(j, 3);
    }

    #[test]
    fn similarity_strategies_never_select_self() {
        let models = toy_models();
        for strategy in [
            SelectionStrategy::HighestSimilarity,
            SelectionStrategy::LowestSimilarity,
        ] {
            for i in 0..models.len() {
                assert_ne!(strategy.select(3, i, &models), i);
            }
        }
    }

    #[test]
    fn two_models_always_select_each_other() {
        let models = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        for strategy in [
            SelectionStrategy::InOrder,
            SelectionStrategy::HighestSimilarity,
            SelectionStrategy::LowestSimilarity,
        ] {
            assert_eq!(strategy.select(0, 0, &models), 1);
            assert_eq!(strategy.select(0, 1, &models), 0);
        }
    }

    #[test]
    #[should_panic]
    fn selection_requires_at_least_two_models() {
        let models = vec![vec![1.0]];
        SelectionStrategy::InOrder.select(0, 0, &models);
    }

    #[test]
    fn similarity_matrix_is_symmetric_with_unit_diagonal() {
        let models = toy_models();
        let m = similarity_matrix(&models);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-6);
            for (j, &value) in row.iter().enumerate() {
                assert!((value - m[j][i]).abs() < 1e-6);
            }
        }
        assert!(m[0][3] < -0.99);
    }

    #[test]
    fn mean_pairwise_similarity_of_identical_models_is_one() {
        let models = vec![vec![1.0, 2.0]; 4];
        assert!((mean_pairwise_similarity(&models) - 1.0).abs() < 1e-6);
        assert_eq!(mean_pairwise_similarity(&models[..1]), 1.0);
    }

    #[test]
    fn euclidean_measure_prefers_geometrically_closer_models() {
        // Model 1 points in almost the same direction as 0 but is far away;
        // model 2 is nearly orthogonal but close in Euclidean distance.
        let models = vec![
            vec![1.0, 0.0],
            vec![10.0, 0.5],
            vec![0.6, 0.9],
        ];
        let cosine_pick =
            SelectionStrategy::HighestSimilarity.select_with(0, 0, &models, SimilarityMeasure::Cosine);
        let euclid_pick = SelectionStrategy::HighestSimilarity.select_with(
            0,
            0,
            &models,
            SimilarityMeasure::Euclidean,
        );
        assert_eq!(cosine_pick, 1, "cosine should pick the co-directional model");
        assert_eq!(euclid_pick, 2, "euclidean should pick the nearby model");
    }

    #[test]
    fn similarity_measure_labels_and_scores() {
        assert_eq!(SimilarityMeasure::Cosine.label(), "cosine");
        assert_eq!(SimilarityMeasure::Euclidean.label(), "euclidean");
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!(SimilarityMeasure::Cosine.similarity(&a, &a) > SimilarityMeasure::Cosine.similarity(&a, &b));
        assert!(
            SimilarityMeasure::Euclidean.similarity(&a, &a)
                > SimilarityMeasure::Euclidean.similarity(&a, &b)
        );
        assert_eq!(SimilarityMeasure::default(), SimilarityMeasure::Cosine);
    }

    #[test]
    fn in_order_ignores_the_similarity_measure() {
        let models = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
        for i in 0..3 {
            assert_eq!(
                SelectionStrategy::InOrder.select_with(2, i, &models, SimilarityMeasure::Cosine),
                SelectionStrategy::InOrder.select_with(2, i, &models, SimilarityMeasure::Euclidean)
            );
        }
    }

    #[test]
    fn cached_norm_selection_matches_per_pair_selection() {
        // select_all_with (norms computed once per model) must agree with
        // select_with (fused per-pair pass) on every model — the cached
        // cosine is bitwise identical, so the argmin/argmax cannot move.
        let mut models = Vec::new();
        for m in 0..9 {
            models.push(
                (0..257)
                    .map(|i| ((i * (m + 3) % 23) as f32) * 0.37 - 3.5)
                    .collect::<Vec<f32>>(),
            );
        }
        for strategy in [
            SelectionStrategy::HighestSimilarity,
            SelectionStrategy::LowestSimilarity,
        ] {
            for round in 0..3 {
                let all = strategy.select_all_with(round, &models, SimilarityMeasure::Cosine);
                for (i, &chosen) in all.iter().enumerate() {
                    assert_eq!(
                        chosen,
                        strategy.select_with(round, i, &models, SimilarityMeasure::Cosine),
                        "strategy {strategy}, model {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SelectionStrategy::InOrder.to_string(), "in-order");
        assert_eq!(
            SelectionStrategy::HighestSimilarity.to_string(),
            "highest-similarity"
        );
        assert_eq!(
            SelectionStrategy::LowestSimilarity.to_string(),
            "lowest-similarity"
        );
    }

    #[test]
    fn non_finite_models_fall_back_to_the_in_order_neighbour() {
        // Diverged uploads (e.g. under heavy privacy noise) make every
        // similarity non-finite; selection must still return a valid peer.
        let models = vec![
            vec![f32::NAN, f32::NAN],
            vec![f32::NAN, 1.0],
            vec![0.5, f32::NAN],
        ];
        for strategy in [
            SelectionStrategy::LowestSimilarity,
            SelectionStrategy::HighestSimilarity,
        ] {
            for i in 0..3 {
                let co = strategy.select(0, i, &models);
                assert!(co < models.len());
                assert_ne!(co, i);
            }
        }
    }
}
