//! # fedcross-flsim
//!
//! The federated-learning simulation engine the FedCross reproduction runs on:
//! the cloud–client substrate that is independent of any particular
//! aggregation rule.
//!
//! * [`client`] — local SGD training on one client's data, with optional
//!   per-parameter gradient corrections (used by FedProx and SCAFFOLD),
//! * [`eval`] — centralised evaluation of a model on the global test set,
//! * [`comm`] — per-round communication accounting, reproducing the paper's
//!   Table I / Section IV-C3 overhead comparison,
//! * [`history`] — learning-curve recording (the data behind Figures 5–9),
//! * [`landscape`] — loss-landscape surfaces and sharpness scores
//!   (Figure 4 / RQ1),
//! * [`availability`] — client dropout / straggler models for robustness
//!   experiments,
//! * [`adversary`] — Byzantine / poisoning client behaviour (label flipping,
//!   scaled and sign-flipped updates, collusion), orthogonal to availability
//!   and drawn from [`streams`] so adversarial runs stay bitwise resumable,
//! * [`device`] — device-speed heterogeneity: per-client speed tiers and
//!   per-round latency jitter, the straggler substrate of the deadline and
//!   buffered round policies,
//! * [`faults`] — transport/server fault injection (mid-round crashes,
//!   stalled and duplicated uploads, transient apply failures) plus the
//!   [`faults::RoundPolicy`] family that decides how rounds close,
//! * [`checkpoint`] — the resume plane: atomic JSON checkpoints of the
//!   complete training state ([`checkpoint::AlgorithmState`]), restored by
//!   [`engine::Simulation::resume`] for bitwise-identical continuation,
//! * [`fairness`] — per-client accuracy distribution of a deployed global
//!   model (the measurement behind the paper's Figure 1 motivation),
//! * [`worker`] — the persistent client-worker plane: warm model + scratch
//!   slots reused across rounds so steady-state rounds construct no models,
//! * [`streams`] — round-derived stochastic streams: per-round, per-consumer
//!   RNGs derived from `(domain, base seed, absolute round, slot)` so
//!   algorithm-side noise (DP, compression dithering, secure-agg masks) is
//!   resumable and independent of upload arrival order,
//! * [`engine`] — the round loop: an implementation of
//!   [`engine::FederatedAlgorithm`] (FedCross and the five baselines live in
//!   the `fedcross` crate) is driven round by round against a
//!   [`fedcross_data::FederatedDataset`], with periodic evaluation.
//!
//! ## Quick example
//!
//! ```
//! use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
//! use fedcross_data::Heterogeneity;
//! use fedcross_flsim::engine::{RoundContext, RoundReport, FederatedAlgorithm, Simulation, SimulationConfig};
//! use fedcross_nn::models::{cnn, CnnConfig};
//! use fedcross_nn::Model;
//! use fedcross_nn::params::average;
//! use fedcross_tensor::SeededRng;
//!
//! // A minimal FedAvg implementation against the engine API.
//! struct TinyFedAvg { global: Vec<f32> }
//! impl FederatedAlgorithm for TinyFedAvg {
//!     fn name(&self) -> String { "tiny-fedavg".to_string() }
//!     fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
//!         let selected = ctx.select_clients();
//!         let jobs: Vec<(usize, Vec<f32>)> =
//!             selected.iter().map(|&c| (c, self.global.clone())).collect();
//!         let updates = ctx.local_train_batch(&jobs);
//!         self.global = average(&updates.iter().map(|u| u.params.clone()).collect::<Vec<_>>());
//!         RoundReport::from_updates(&updates)
//!     }
//!     fn global_params(&self) -> Vec<f32> { self.global.clone() }
//! }
//!
//! let mut rng = SeededRng::new(0);
//! let data = FederatedDataset::synth_cifar10(
//!     &SynthCifar10Config { num_clients: 4, samples_per_client: 8, test_samples: 16, ..Default::default() },
//!     Heterogeneity::Iid,
//!     &mut rng,
//! );
//! let cnn_config = CnnConfig { conv_channels: (2, 4), fc_hidden: 8, kernel: 3 };
//! let template = cnn((3, 16, 16), 10, cnn_config, &mut rng);
//! let mut algo = TinyFedAvg { global: template.params_flat() };
//! let config = SimulationConfig { rounds: 2, clients_per_round: 2, eval_every: 1, ..Default::default() };
//! let result = Simulation::new(config, &data, template).run(&mut algo);
//! assert_eq!(result.history.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod availability;
pub mod checkpoint;
pub mod client;
pub mod comm;
pub mod device;
pub mod engine;
pub mod faults;
pub mod eval;
pub mod fairness;
pub mod history;
pub mod landscape;
pub mod streams;
pub mod worker;

pub use adversary::{AdversaryModel, Attack};
pub use availability::AvailabilityModel;
pub use checkpoint::{AlgorithmState, Checkpoint, StateError, CHECKPOINT_VERSION};
pub use client::{LocalTrainConfig, LocalUpdate};
pub use comm::{CommOverheadClass, CommTracker};
pub use device::DeviceModel;
pub use engine::{
    canonicalize_updates, DataPlane, FederatedAlgorithm, ResumeError, RoundContext, RoundReport,
    ShardRef, Simulation, SimulationConfig, UploadOutcome, SPARSE_SELECTION_THRESHOLD,
};
pub use faults::{FaultPlan, FaultTally, RoundPolicy, UploadFate};
pub use eval::EvalWorker;
pub use fairness::{per_client_fairness, FairnessReport};
pub use history::{RoundRecord, TrainingHistory};
pub use streams::{RoundStream, RoundStreams, StreamDomain};
pub use worker::{ClientWorker, ClientWorkerPool};
