//! Offline shim for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros, benchmark
//! groups, `bench_function` / `bench_with_input` and `Bencher::iter` on top of
//! plain `std::time::Instant` timing: a short calibration pass sizes the
//! per-sample iteration count so each sample runs ≥ ~2 ms, then `sample_size`
//! samples are measured and the mean / median / min are reported.
//!
//! When the `FEDCROSS_BENCH_JSON` environment variable names a file, one JSON
//! line per benchmark is appended to it — the hook the repo's
//! `scripts/bench_snapshot.sh` uses to build `BENCH_PR1.json`.

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly; results are recorded on the bencher.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: size the batch so one sample >= ~2 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Summary statistics of one finished benchmark.
struct Outcome {
    group: String,
    bench: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

fn report(outcome: &Outcome) {
    println!(
        "{:<60} mean {:>12}  median {:>12}  min {:>12}  ({} samples x {} iters)",
        format!("{}/{}", outcome.group, outcome.bench),
        format_ns(outcome.mean_ns),
        format_ns(outcome.median_ns),
        format_ns(outcome.min_ns),
        outcome.samples,
        outcome.iters_per_sample,
    );
    if let Ok(path) = std::env::var("FEDCROSS_BENCH_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}\n",
                outcome.group,
                outcome.bench,
                outcome.mean_ns,
                outcome.median_ns,
                outcome.min_ns,
                outcome.samples,
                outcome.iters_per_sample,
            );
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(err) = result {
                eprintln!("warning: could not append bench result to {path}: {err}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        self.record(id, &bencher);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut bencher, input);
        self.record(id, &bencher);
        self
    }

    fn record(&self, id: BenchmarkId, bencher: &Bencher) {
        let mut sorted = bencher.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        if sorted.is_empty() {
            return;
        }
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        report(&Outcome {
            group: self.name.clone(),
            bench: id.label,
            mean_ns: mean,
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            samples: sorted.len(),
            iters_per_sample: bencher.iters_per_sample,
        });
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(name, f);
        self
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 3);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        let id = BenchmarkId::new("kernel", 4096);
        assert_eq!(id.label, "kernel/4096");
    }

    #[test]
    fn ns_formatting_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
