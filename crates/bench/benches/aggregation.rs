//! Criterion micro-benchmarks of the server-side aggregation kernels:
//! FedAvg weighted averaging vs FedCross cross-aggregation (single
//! collaborator and propeller variants) and global-model generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross::aggregation::{cross_aggregate_all, cross_aggregate_propellers, global_model};
use fedcross_nn::params::weighted_average;
use fedcross_tensor::SeededRng;

fn make_models(k: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    (0..k)
        .map(|_| (0..dim).map(|_| rng.uniform_range(-1.0, 1.0)).collect())
        .collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_aggregation");
    group.sample_size(20);

    for &dim in &[10_000usize, 100_000] {
        let models = make_models(10, dim, 7);
        let weights = vec![1.0f32; models.len()];
        let collaborators: Vec<usize> = (0..models.len())
            .map(|i| (i + 1) % models.len())
            .collect();

        group.bench_with_input(
            BenchmarkId::new("fedavg_weighted_average", dim),
            &dim,
            |b, _| b.iter(|| black_box(weighted_average(&models, &weights))),
        );
        group.bench_with_input(
            BenchmarkId::new("fedcross_cross_aggregate_all", dim),
            &dim,
            |b, _| b.iter(|| black_box(cross_aggregate_all(&models, &collaborators, 0.99))),
        );
        group.bench_with_input(
            BenchmarkId::new("fedcross_propellers_x3", dim),
            &dim,
            |b, _| {
                b.iter(|| {
                    let refs: Vec<&[f32]> = models[1..4].iter().map(|m| m.as_slice()).collect();
                    black_box(cross_aggregate_propellers(&models[0], &refs, 0.99))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("global_model_generation", dim),
            &dim,
            |b, _| b.iter(|| black_box(global_model(&models))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
