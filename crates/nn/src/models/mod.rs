//! Model zoo: the architectures evaluated in the FedCross paper, scaled for
//! CPU-only federated simulation.
//!
//! | Paper model | Constructor | Notes |
//! |---|---|---|
//! | FedAvg CNN (2 conv + 2 FC) | [`fedavg_cnn`] / [`cnn`] | same topology, 3×3 kernels |
//! | ResNet-20 | [`resnet20`] / [`resnet20_lite`] | 3 stages of basic residual blocks with BN and projection shortcuts |
//! | VGG-16 | [`vgg_lite`] | conv-conv-pool blocks + large FC head (width-scaled) |
//! | LSTM (Shakespeare / Sent140) | [`lstm_classifier`] | embedding → LSTM → linear |
//! | MLP (unit tests, quick experiments) | [`mlp`] | |

mod cnn;
mod lstm_model;
mod mlp_model;
mod resnet;
mod vgg;

pub use cnn::{cnn, fedavg_cnn, CnnConfig};
pub use lstm_model::{lstm_classifier, LstmConfig};
pub use mlp_model::mlp;
pub use resnet::{resnet, resnet20, resnet20_lite, ResNetConfig};
pub use vgg::{vgg_lite, VggConfig};

/// Shape of an image input: `(channels, height, width)`.
pub type ImageShape = (usize, usize, usize);
