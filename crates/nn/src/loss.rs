//! Loss functions: softmax cross-entropy and its gradient.

use fedcross_tensor::{Tensor, TensorPool};

/// Softmax cross-entropy over a batch.
///
/// `logits` has shape `[batch, classes]`; `labels[i]` is the target class of
/// sample `i`. Returns the mean loss over the batch and the gradient of that
/// mean loss with respect to the logits (shape `[batch, classes]`), i.e.
/// `(softmax(logits) - onehot(labels)) / batch`.
///
/// # Panics
/// Panics if `logits` is not rank-2, the label count differs from the batch
/// size, or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    let batch = logits.dims()[0];
    let classes = logits.dims()[1];
    assert_eq!(labels.len(), batch, "one label per sample is required");

    let log_probs = logits.log_softmax_rows();
    let mut grad = log_probs.map(f32::exp); // softmax probabilities
    let mut loss = 0f32;
    let inv_batch = 1.0 / batch as f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        loss -= log_probs.get(&[i, label]);
        let current = grad.get(&[i, label]);
        grad.set(&[i, label], current - 1.0);
    }
    grad.scale(inv_batch);
    (loss * inv_batch, grad)
}

/// Pooled form of [`softmax_cross_entropy`]: the returned gradient tensor is
/// checked out of `pool` (recycle it once consumed), so a steady-state
/// training step allocates nothing here. Bitwise identical to the allocating
/// form.
pub fn softmax_cross_entropy_into(
    logits: &Tensor,
    labels: &[usize],
    pool: &mut TensorPool,
) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    let batch = logits.dims()[0];
    let classes = logits.dims()[1];
    assert_eq!(labels.len(), batch, "one label per sample is required");

    // One buffer plays both roles: log-probabilities first (for the loss),
    // then exponentiated into the softmax gradient in place.
    let mut grad = pool.take_copy(logits);
    grad.log_softmax_rows_in_place();
    let mut loss = 0f32;
    let inv_batch = 1.0 / batch as f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range for {classes} classes");
        loss -= grad.get(&[i, label]);
    }
    grad.map_in_place(f32::exp); // softmax probabilities
    for (i, &label) in labels.iter().enumerate() {
        let current = grad.get(&[i, label]);
        grad.set(&[i, label], current - 1.0);
    }
    grad.scale(inv_batch);
    (loss * inv_batch, grad)
}

/// Mean negative log-likelihood of the correct classes given probabilities
/// that already sum to one per row. Used by tests and the knowledge-distillation
/// baseline which works on teacher probability targets.
pub fn nll_from_probs(probs: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(probs.rank(), 2, "probs must be [batch, classes]");
    let batch = probs.dims()[0];
    assert_eq!(labels.len(), batch, "one label per sample is required");
    let mut loss = 0f32;
    for (i, &label) in labels.iter().enumerate() {
        loss -= probs.get(&[i, label]).max(1e-12).ln();
    }
    loss / batch as f32
}

/// Soft-target cross-entropy (knowledge distillation): mean over the batch of
/// `-Σ_c t_c · log softmax(logits)_c`, plus its gradient w.r.t. the logits.
///
/// `targets` are teacher probability rows (each row sums to one).
pub fn soft_cross_entropy(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    assert_eq!(logits.dims(), targets.dims(), "logits/targets shape mismatch");
    let batch = logits.dims()[0] as f32;
    let log_probs = logits.log_softmax_rows();
    let probs = log_probs.map(f32::exp);
    let loss = -log_probs.mul(targets).sum() / batch;
    let mut grad = probs.sub(targets);
    grad.scale(1.0 / batch);
    (loss, grad)
}

/// Classification accuracy of logits against integer labels, in `[0, 1]`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    assert_eq!(logits.dims()[0], labels.len(), "one label per sample");
    if labels.is_empty() {
        return 0.0;
    }
    let predictions = logits.argmax_rows();
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0], &[2, 3]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_classes() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_matches_softmax_minus_onehot() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, -0.5], &[2, 2]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 0]);
        let probs = logits.softmax_rows();
        assert!((grad.get(&[0, 0]) - probs.get(&[0, 0]) / 2.0).abs() < 1e-5);
        assert!((grad.get(&[0, 1]) - (probs.get(&[0, 1]) - 1.0) / 2.0).abs() < 1e-5);
        assert!((grad.get(&[1, 0]) - (probs.get(&[1, 0]) - 1.0) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, -1.0, 2.0, 0.1, 0.2, 0.3], &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let sum: f32 = grad.row(r).data().iter().sum();
            assert!(sum.abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let base = vec![0.5, -0.2, 1.0, 0.3, -0.7, 0.9];
        let labels = [2usize, 0];
        let logits = Tensor::from_vec(base.clone(), &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&Tensor::from_vec(plus, &[2, 3]), &labels);
            let (lm, _) = softmax_cross_entropy(&Tensor::from_vec(minus, &[2, 3]), &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "component {i}: numeric {numeric} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    #[should_panic]
    fn cross_entropy_rejects_out_of_range_label() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = softmax_cross_entropy(&logits, &[3]);
    }

    #[test]
    fn nll_from_probs_matches_manual_value() {
        let probs = Tensor::from_vec(vec![0.5, 0.5, 0.9, 0.1], &[2, 2]);
        let loss = nll_from_probs(&probs, &[0, 0]);
        let expected = -(0.5f32.ln() + 0.9f32.ln()) / 2.0;
        assert!((loss - expected).abs() < 1e-5);
    }

    #[test]
    fn soft_cross_entropy_matches_hard_labels_when_targets_are_onehot() {
        let logits = Tensor::from_vec(vec![0.3, -1.0, 2.0, 0.1, 0.2, 0.3], &[2, 3]);
        let onehot = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0], &[2, 3]);
        let (hard_loss, hard_grad) = softmax_cross_entropy(&logits, &[2, 0]);
        let (soft_loss, soft_grad) = soft_cross_entropy(&logits, &onehot);
        assert!((hard_loss - soft_loss).abs() < 1e-5);
        for (a, b) in hard_grad.data().iter().zip(soft_grad.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn soft_cross_entropy_gradient_matches_finite_differences() {
        let base = vec![0.1, 0.8, -0.4, 1.2];
        let targets = Tensor::from_vec(vec![0.3, 0.7, 0.6, 0.4], &[2, 2]);
        let (_, grad) = soft_cross_entropy(&Tensor::from_vec(base.clone(), &[2, 2]), &targets);
        let eps = 1e-3;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let (lp, _) = soft_cross_entropy(&Tensor::from_vec(plus, &[2, 2]), &targets);
            let (lm, _) = soft_cross_entropy(&Tensor::from_vec(minus, &[2, 2]), &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let logits = Tensor::from_vec(
            vec![2.0, 1.0, 0.0, 0.0, 3.0, 1.0, 1.0, 0.0, 5.0],
            &[3, 3],
        );
        assert!((accuracy(&logits, &[0, 1, 2]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 2]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 3]), &[]), 0.0);
    }
}
